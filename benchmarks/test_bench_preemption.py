"""Ablation: preemption granularity (paper Section 4.3).

The paper notes that "the accuracy of preemption results is limited by
the granularity of task delay models" (the t4 -> t4' switch in Figure
8(b)). This bench quantifies that: a low-priority task executes a fixed
workload split into delay steps of varying granularity; an interrupt
wakes a high-priority handler mid-execution; we measure the handler's
response time under the paper's step-granular model and under the
immediate-preemption extension (which is granularity-independent).
"""

from repro.kernel import Simulator, WaitFor
from repro.rtos import APERIODIC, RTOSModel

WORKLOAD = 100_000
IRQ_TIME = 41_700  # deliberately off any common step boundary
HANDLER_TIME = 5_000


def response_time(granularity, preemption):
    sim = Simulator()
    os_ = RTOSModel(sim, sched="priority", preemption=preemption)
    evt = os_.event_new("irq-evt")
    done = {}

    def handler_body():
        yield from os_.event_wait(evt)
        yield from os_.time_wait(HANDLER_TIME)
        done["t"] = sim.now

    def worker_body():
        remaining = WORKLOAD
        while remaining > 0:
            step = min(granularity, remaining)
            yield from os_.time_wait(step)
            remaining -= step

    handler = os_.task_create("handler", APERIODIC, 0, 0, priority=1)
    worker = os_.task_create("worker", APERIODIC, 0, 0, priority=5)
    sim.spawn(os_.task_body(handler, handler_body()), name="handler")
    sim.spawn(os_.task_body(worker, worker_body()), name="worker")

    def isr():
        yield WaitFor(IRQ_TIME)
        yield from os_.event_notify(evt)
        os_.interrupt_return()

    sim.spawn(isr(), name="isr")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run()
    return done["t"] - IRQ_TIME


GRANULARITIES = [50_000, 20_000, 10_000, 5_000, 1_000, 100]


def sweep():
    rows = []
    for granularity in GRANULARITIES:
        step = response_time(granularity, "step")
        immediate = response_time(granularity, "immediate")
        rows.append((granularity, step, immediate, step - immediate))
    return rows


def test_preemption_granularity_ablation(report, benchmark):
    rows = benchmark.pedantic(sweep, rounds=1)
    lines = [
        "Preemption-granularity ablation (handler response time, ns)",
        f"{'step size':>10} {'step mode':>12} {'immediate':>12} {'error':>10}",
    ]
    for granularity, step, immediate, error in rows:
        lines.append(
            f"{granularity:>10} {step:>12} {immediate:>12} {error:>10}"
        )
    lines.append("")
    lines.append(
        "immediate mode is granularity-independent; step mode's error is "
        "bounded by the remaining delay of the interrupted step"
    )
    report("ablation_preemption", "\n".join(lines))

    immediates = {imm for _, _, imm, _ in rows}
    assert immediates == {HANDLER_TIME}  # exact in immediate mode
    # step-mode error is exactly the distance from the interrupt to the
    # next step boundary (bounded by the granularity, not monotonic)
    for granularity, _, _, error in rows:
        boundary = -(-IRQ_TIME // granularity) * granularity
        assert error == boundary - IRQ_TIME
        assert 0 <= error < granularity or error == 0


def test_bench_step_mode(benchmark):
    benchmark(response_time, 1_000, "step")


def test_bench_immediate_mode(benchmark):
    benchmark(response_time, 1_000, "immediate")
