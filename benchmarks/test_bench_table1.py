"""Table 1: vocoder experimental results at three abstraction levels.

Regenerates the paper's four rows — lines of code, execution (host)
time, context switches, transcoding delay — for the unscheduled,
architecture and implementation models of the vocoder.
"""

import pytest

from repro.apps.vocoder import (
    run_architecture,
    run_implementation,
    run_specification,
)
from repro.apps.vocoder.table1 import format_table1, generate_table1

N_FRAMES = 10


def test_table1_reproduction(report, benchmark):
    rows, runs = benchmark.pedantic(
        generate_table1, kwargs={"n_frames": N_FRAMES}, rounds=1
    )
    text = [
        f"Table 1: vocoder experimental results ({N_FRAMES} frames)",
        format_table1(rows),
        "",
        "paper reference: LoC 13,475 / 15,552 / 79,096; "
        "time 24.0 s / 24.4 s / 5 h;",
        "transcoding delay 9.7 / 12.5 / 11.7 ms",
    ]
    report("table1", "\n".join(text))

    by_name = {r.name: r for r in rows}
    loc = by_name["Lines of Code"]
    assert loc.unscheduled < loc.architecture < loc.implementation

    delay = by_name["Transcoding delay (ms)"]
    assert delay.unscheduled == pytest.approx(9.7)
    assert delay.unscheduled < delay.implementation
    assert delay.unscheduled < delay.architecture
    assert abs(delay.architecture - delay.implementation) < 1.5

    switches = by_name["Context switches"]
    assert switches.unscheduled == 0
    assert 0 < switches.architecture <= switches.implementation

    times = by_name["Execution Time (s)"]
    # the RTOS model's overhead over the unscheduled model is small,
    # the ISS is at least several times slower (paper: 24.0/24.4 s vs 5 h)
    assert times.implementation > 3 * times.architecture


def test_bench_specification_model(benchmark):
    result = benchmark.pedantic(
        run_specification, kwargs={"n_frames": N_FRAMES}, rounds=3,
        warmup_rounds=1,
    )
    assert len(result.delays_ns) == N_FRAMES


def test_bench_architecture_model(benchmark):
    result = benchmark.pedantic(
        run_architecture, kwargs={"n_frames": N_FRAMES}, rounds=3,
        warmup_rounds=1,
    )
    assert len(result.delays_ns) == N_FRAMES


def test_bench_implementation_model(benchmark):
    result = benchmark.pedantic(
        run_implementation, kwargs={"n_frames": 4}, rounds=1, warmup_rounds=0,
    )
    assert len(result.delays_ns) == 4
