#!/usr/bin/env python
"""Reproducible kernel/RTOS performance harness.

Runs the hot-path benchmarks (raw kernel delay loop, event ping-pong,
RTOS-scheduled workload, preemption-heavy workload) and writes a
machine-readable ``BENCH_kernel.json`` with steps/sec, wall time and the
RTOS/raw overhead ratio. Use ``compare_bench.py`` to diff two result
files and fail on regressions.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --out FILE --label tag

The workloads mirror the pytest benches (``test_bench_overhead``,
``test_bench_schedulers``, ``test_bench_preemption``) but are plain
scripts: no pytest, deterministic shapes, best-of-N timing, JSON out.
"""

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.kernel import Event, Notify, Par, Simulator, Wait, WaitFor
from repro.platform import InterruptController, IrqLine
from repro.rtos import APERIODIC, PERIODIC, RTOSModel

DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_kernel.json"


# ----------------------------------------------------------------------
# workloads — each returns (wall_seconds, kernel_steps)
# ----------------------------------------------------------------------

def _assert_uninstrumented(sim, os_=None):
    """The gate measures the *disabled* observability path.

    Disabled tracing must be the instance-level no-op swap (the PR-1
    invariant), the wall-clock profiler must be off, and no metrics
    bundle, fault injector or failure monitor may be attached to the OS
    services — so the numbers compared against the PR-1 baseline are
    the bare hot path.
    """
    from repro.kernel.trace import _noop

    assert sim.trace.record is _noop, "tracing not swapped to no-op"
    assert sim.trace.segment is _noop, "tracing not swapped to no-op"
    assert sim.profiler is None, "profiler unexpectedly enabled"
    if os_ is not None:
        services = (os_._dispatcher, os_._tasks, os_._events, os_._time)
        assert all(s.obs is None for s in services), "metrics attached"
        assert os_.faults is None and os_._time.faults is None \
            and os_._events.faults is None, "fault injector attached"
        assert os_.monitor is None and os_._tasks.monitor is None \
            and os_._dispatcher.monitor is None, "failure monitor attached"


def bench_raw_kernel(n_tasks, steps):
    """N concurrent processes each running a WaitFor delay loop."""
    sim = Simulator()
    sim.trace.enabled = False
    _assert_uninstrumented(sim)

    def worker():
        for _ in range(steps):
            yield WaitFor(1_000)

    def top():
        yield Par(*(worker() for _ in range(n_tasks)))

    sim.spawn(top(), name="top")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]


def bench_event_pingpong(pairs, rounds):
    """Notify/Wait ping-pong pairs — the single-event hot path."""
    sim = Simulator()
    sim.trace.enabled = False
    _assert_uninstrumented(sim)

    def ping(evt_a, evt_b):
        for _ in range(rounds):
            yield Notify(evt_a)
            yield Wait(evt_b)

    def pong(evt_a, evt_b):
        for _ in range(rounds):
            yield Wait(evt_a)
            yield Notify(evt_b)

    for i in range(pairs):
        a, b = Event(f"a{i}"), Event(f"b{i}")
        sim.spawn(ping(a, b), name=f"ping{i}")
        sim.spawn(pong(a, b), name=f"pong{i}")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]


def bench_rtos_model(n_tasks, steps, sched="priority"):
    """The raw-kernel workload under the RTOS model (overhead ratio)."""
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched=sched)
    _assert_uninstrumented(sim, os_)

    def body():
        for _ in range(steps):
            yield from os_.time_wait(1_000)

    for i in range(n_tasks):
        task = os_.task_create(f"t{i}", APERIODIC, 0, 0, priority=i)
        sim.spawn(os_.task_body(task, body()), name=task.name)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]


def bench_rtos_preemption(n_periodic, cycles):
    """Periodic tasks + interrupt-driven preemption (timer churn path)."""
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched="priority", preemption="immediate")
    _assert_uninstrumented(sim, os_)
    irq = IrqLine(sim, "irq0")
    pic = InterruptController(sim, "pic")

    def body(i):
        for _ in range(cycles):
            yield from os_.time_wait(300 + 50 * i)
            yield from os_.task_endcycle()

    for i in range(n_periodic):
        period = 1_000 * (i + 2)
        task = os_.task_create(f"p{i}", PERIODIC, period, 300, priority=i)
        sim.spawn(os_.task_body(task, body(i)), name=task.name)

    def isr():
        yield WaitFor(10)
        os_.interrupt_return()

    pic.register(irq, isr)
    horizon = 1_000 * (n_periodic + 1) * cycles
    for t in range(500, horizon, 1_700):
        sim.schedule_at(t, irq.raise_irq)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run(until=horizon)
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

def _measure(fn, repeats):
    """Best-of-N wall time; steps is identical across repeats."""
    best_wall, steps = None, None
    for _ in range(repeats):
        wall, n = fn()
        if best_wall is None or wall < best_wall:
            best_wall, steps = wall, n
    return {
        "wall_s": round(best_wall, 6),
        "steps": steps,
        "steps_per_sec": round(steps / max(best_wall, 1e-9), 1),
    }


def run_suite(quick=False, repeats=None):
    if repeats is None:
        repeats = 2 if quick else 5
    repeats = max(1, repeats)
    # full-mode shapes are sized so each bench runs for a few hundred ms
    # on a contemporary host — small enough for CI, large enough that
    # best-of-N steps/sec is stable to a few percent
    scale = 1 if quick else 40
    benches = {
        "raw_kernel": lambda: bench_raw_kernel(16, 250 * scale),
        "event_pingpong": lambda: bench_event_pingpong(8, 250 * scale),
        "rtos_priority": lambda: bench_rtos_model(16, 60 * scale),
        "rtos_rr": lambda: bench_rtos_model(16, 60 * scale, sched="rr"),
        "rtos_preemption": lambda: bench_rtos_preemption(6, 40 * scale),
    }
    results = {}
    for name, fn in benches.items():
        fn()  # warmup
        results[name] = _measure(fn, repeats)
        print(
            f"{name:>18}: {results[name]['steps_per_sec']:>12,.0f} steps/s"
            f"  ({results[name]['steps']} steps, "
            f"{results[name]['wall_s']:.4f} s)"
        )
    ratios = {
        "rtos_over_raw_walltime_per_step": round(
            (results["rtos_priority"]["wall_s"]
             / results["rtos_priority"]["steps"])
            / (results["raw_kernel"]["wall_s"]
               / results["raw_kernel"]["steps"]),
            3,
        ),
        "raw_over_rtos_steps_per_sec": round(
            results["raw_kernel"]["steps_per_sec"]
            / results["rtos_priority"]["steps_per_sec"],
            3,
        ),
    }
    return results, ratios


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small shapes + fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per bench (best-of-N)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--label", default="",
                        help="free-form tag recorded in the JSON meta")
    args = parser.parse_args(argv)

    results, ratios = run_suite(quick=args.quick, repeats=args.repeats)
    payload = {
        "meta": {
            "label": args.label,
            "quick": args.quick,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "benches": results,
        "ratios": ratios,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nratios: {ratios}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
