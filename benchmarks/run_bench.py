#!/usr/bin/env python
"""Reproducible kernel/RTOS performance harness.

Runs the hot-path benchmarks (raw kernel delay loop, event ping-pong,
RTOS-scheduled workload, preemption-heavy workload, dense timer churn,
multi-event wait-any) and writes a machine-readable ``BENCH_kernel.json``
with steps/sec, wall time and the RTOS/raw overhead ratio. Use
``compare_bench.py`` to diff two result files and fail on regressions.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --backend fast
    PYTHONPATH=src python benchmarks/run_bench.py --out FILE --label tag

``--backend`` selects the kernel engine (see :mod:`repro.kernel.backend`);
every workload constructs ``Simulator(backend=...)`` and asserts the
requested engine was actually selected before timing anything.
``--repeat N`` controls the timing repeats: ``steps_per_sec`` stays
best-of-N (comparable with all earlier baselines), and the median is
reported alongside (``median_steps_per_sec``) as the noise-robust figure.

The workloads mirror the pytest benches (``test_bench_overhead``,
``test_bench_schedulers``, ``test_bench_preemption``) but are plain
scripts: no pytest, deterministic shapes, best-of-N timing, JSON out.
"""

import argparse
import json
import pathlib
import platform
import statistics
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.kernel import (
    Event,
    Notify,
    Par,
    Simulator,
    Wait,
    WaitFor,
    available_backends,
)
from repro.platform import InterruptController, IrqLine
from repro.rtos import APERIODIC, PERIODIC, RTOSModel

DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_kernel.json"


# ----------------------------------------------------------------------
# workloads — each returns (wall_seconds, kernel_steps)
# ----------------------------------------------------------------------

def _assert_uninstrumented(sim, os_=None, backend=None):
    """The gate measures the *disabled* observability path.

    Disabled tracing must be the instance-level no-op swap (the PR-1
    invariant), the wall-clock profiler must be off, and no metrics
    bundle, fault injector or failure monitor may be attached to the OS
    services — so the numbers compared against the PR-1 baseline are
    the bare hot path. When ``backend`` is given, the simulator must
    actually be running the requested engine (guards against a silent
    fallback mislabeling a result file).
    """
    from repro.kernel.trace import _noop

    if backend is not None:
        assert sim.backend == backend, (
            f"requested backend {backend!r} but got {sim.backend!r}"
        )
    assert sim.trace.record is _noop, "tracing not swapped to no-op"
    assert sim.trace.segment is _noop, "tracing not swapped to no-op"
    assert sim.profiler is None, "profiler unexpectedly enabled"
    # the schedule-oracle seam must be unarmed: oracle is None means
    # every decision point takes its branch-free FIFO default, which is
    # the configuration the PR-1 baseline numbers were measured in
    assert sim.oracle is None, "schedule oracle unexpectedly installed"
    if os_ is not None:
        services = (os_._dispatcher, os_._tasks, os_._events, os_._time)
        assert all(s.obs is None for s in services), "metrics attached"
        assert os_.faults is None and os_._time.faults is None \
            and os_._events.faults is None, "fault injector attached"
        assert os_.monitor is None and os_._tasks.monitor is None \
            and os_._dispatcher.monitor is None, "failure monitor attached"
        assert os_.mc is None and os_._tasks.mc is None, \
            "mode controller unexpectedly armed"
        assert os_._tasks.spans is None and os_._events.spans is None, \
            "span sources unexpectedly armed"


def bench_raw_kernel(n_tasks, steps, backend="reference"):
    """N concurrent processes each running a WaitFor delay loop."""
    sim = Simulator(backend=backend)
    sim.trace.enabled = False
    _assert_uninstrumented(sim, backend=backend)

    def worker():
        for _ in range(steps):
            yield WaitFor(1_000)

    def top():
        yield Par(*(worker() for _ in range(n_tasks)))

    sim.spawn(top(), name="top")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]


def bench_event_pingpong(pairs, rounds, backend="reference"):
    """Notify/Wait ping-pong pairs — the single-event hot path."""
    sim = Simulator(backend=backend)
    sim.trace.enabled = False
    _assert_uninstrumented(sim, backend=backend)

    def ping(evt_a, evt_b):
        for _ in range(rounds):
            yield Notify(evt_a)
            yield Wait(evt_b)

    def pong(evt_a, evt_b):
        for _ in range(rounds):
            yield Wait(evt_a)
            yield Notify(evt_b)

    for i in range(pairs):
        a, b = Event(f"a{i}"), Event(f"b{i}")
        sim.spawn(ping(a, b), name=f"ping{i}")
        sim.spawn(pong(a, b), name=f"pong{i}")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]


def bench_rtos_model(n_tasks, steps, sched="priority", backend="reference"):
    """The raw-kernel workload under the RTOS model (overhead ratio)."""
    sim = Simulator(backend=backend)
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched=sched)
    _assert_uninstrumented(sim, os_, backend=backend)

    def body():
        for _ in range(steps):
            yield from os_.time_wait(1_000)

    for i in range(n_tasks):
        task = os_.task_create(f"t{i}", APERIODIC, 0, 0, priority=i)
        sim.spawn(os_.task_body(task, body()), name=task.name)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]


def bench_rtos_preemption(n_periodic, cycles, backend="reference"):
    """Periodic tasks + interrupt-driven preemption (timer churn path)."""
    sim = Simulator(backend=backend)
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched="priority", preemption="immediate")
    _assert_uninstrumented(sim, os_, backend=backend)
    irq = IrqLine(sim, "irq0")
    pic = InterruptController(sim, "pic")

    def body(i):
        for _ in range(cycles):
            yield from os_.time_wait(300 + 50 * i)
            yield from os_.task_endcycle()

    for i in range(n_periodic):
        period = 1_000 * (i + 2)
        task = os_.task_create(f"p{i}", PERIODIC, period, 300, priority=i)
        sim.spawn(os_.task_body(task, body(i)), name=task.name)

    def isr():
        yield WaitFor(10)
        os_.interrupt_return()

    pic.register(irq, isr)
    horizon = 1_000 * (n_periodic + 1) * cycles
    for t in range(500, horizon, 1_700):
        sim.schedule_at(t, irq.raise_irq)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run(until=horizon)
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]



def bench_timer_heavy(n_tasks, steps, backend="reference"):
    """Dense same-instant timers: the shape periodic tasksets collapse to.

    Every worker re-arms for the *same* deadline each timestep, so all
    ``n_tasks`` timers of an instant land together — one wheel bucket on
    the fast backend versus ``n_tasks`` heap pushes/pops on the
    reference. This is the workload the ISSUE's >=1.5x gate targets.
    """
    sim = Simulator(backend=backend)
    sim.trace.enabled = False
    _assert_uninstrumented(sim, backend=backend)

    def worker():
        for _ in range(steps):
            yield WaitFor(500)

    def top():
        yield Par(*(worker() for _ in range(n_tasks)))

    sim.spawn(top(), name="top")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]


def bench_wait_any(groups, rounds, backend="reference"):
    """Multi-event wait-any churn: enroll in a wait set, wake, re-enroll.

    Each group ping-pongs between a waiter blocked on four events and a
    notifier that fires a rotating member of the set — exercising
    wait-set enrollment, ``select_pending`` over several events, and the
    cross-queue cleanup when one event of a set wakes the task.
    """
    sim = Simulator(backend=backend)
    sim.trace.enabled = False
    _assert_uninstrumented(sim, backend=backend)

    def waiter(events, done):
        for _ in range(rounds):
            yield Wait(*events)
            yield Notify(done)

    def notifier(events, done):
        n = len(events)
        for i in range(rounds):
            yield Notify(events[i % n])
            yield Wait(done)

    for g in range(groups):
        events = tuple(Event(f"g{g}e{j}") for j in range(4))
        done = Event(f"g{g}done")
        sim.spawn(waiter(events, done), name=f"waiter{g}")
        sim.spawn(notifier(events, done), name=f"notifier{g}")
    base = sim.stats_delta()
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats_delta(base)["steps"]


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

def _measure(fn, repeats):
    """Best-of-N wall time plus the median; steps is identical across
    repeats. ``steps_per_sec`` stays best-of-N so results remain
    comparable with every earlier baseline; the median fields are the
    noise-robust companion figure for eyeballing."""
    walls, steps = [], None
    for _ in range(repeats):
        wall, n = fn()
        walls.append(wall)
        steps = n
    best = min(walls)
    median = statistics.median(walls)
    return {
        "wall_s": round(best, 6),
        "steps": steps,
        "steps_per_sec": round(steps / max(best, 1e-9), 1),
        "median_wall_s": round(median, 6),
        "median_steps_per_sec": round(steps / max(median, 1e-9), 1),
    }


def run_suite(quick=False, repeats=None, backend="reference"):
    if repeats is None:
        repeats = 2 if quick else 5
    repeats = max(1, repeats)
    # full-mode shapes are sized so each bench runs for a few hundred ms
    # on a contemporary host — small enough for CI, large enough that
    # best-of-N steps/sec is stable to a few percent
    scale = 1 if quick else 40
    benches = {
        "raw_kernel":
            lambda: bench_raw_kernel(16, 250 * scale, backend=backend),
        "event_pingpong":
            lambda: bench_event_pingpong(8, 250 * scale, backend=backend),
        "rtos_priority":
            lambda: bench_rtos_model(16, 60 * scale, backend=backend),
        "rtos_rr":
            lambda: bench_rtos_model(16, 60 * scale, sched="rr",
                                     backend=backend),
        "rtos_preemption":
            lambda: bench_rtos_preemption(6, 40 * scale, backend=backend),
        "timer_heavy":
            lambda: bench_timer_heavy(64, 100 * scale, backend=backend),
        "wait_any":
            lambda: bench_wait_any(8, 200 * scale, backend=backend),
    }
    results = {}
    for name, fn in benches.items():
        fn()  # warmup
        results[name] = _measure(fn, repeats)
        print(
            f"{name:>18}: {results[name]['steps_per_sec']:>12,.0f} steps/s"
            f"  (median {results[name]['median_steps_per_sec']:>12,.0f}, "
            f"{results[name]['steps']} steps, "
            f"{results[name]['wall_s']:.4f} s)"
        )
    ratios = {
        "rtos_over_raw_walltime_per_step": round(
            (results["rtos_priority"]["wall_s"]
             / results["rtos_priority"]["steps"])
            / (results["raw_kernel"]["wall_s"]
               / results["raw_kernel"]["steps"]),
            3,
        ),
        "raw_over_rtos_steps_per_sec": round(
            results["raw_kernel"]["steps_per_sec"]
            / results["rtos_priority"]["steps_per_sec"],
            3,
        ),
    }
    return results, ratios


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small shapes + fewer repeats (CI smoke)")
    parser.add_argument("--repeats", "--repeat", type=int, default=None,
                        dest="repeats", metavar="N",
                        help="timing repeats per bench (best-of-N in "
                             "steps_per_sec, median reported alongside)")
    parser.add_argument("--backend", default="reference",
                        choices=available_backends(),
                        help="kernel engine to benchmark "
                             "(default: reference)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--label", default="",
                        help="free-form tag recorded in the JSON meta")
    args = parser.parse_args(argv)

    results, ratios = run_suite(quick=args.quick, repeats=args.repeats,
                                backend=args.backend)
    payload = {
        "meta": {
            "label": args.label,
            "backend": args.backend,
            "quick": args.quick,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "benches": results,
        "ratios": ratios,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nratios: {ratios}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
