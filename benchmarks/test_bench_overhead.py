"""Ablation: simulation overhead of the RTOS model.

The paper claims "the simulation overhead introduced by the RTOS model
is negligible" (Table 1: 24.0 s unscheduled vs 24.4 s architecture).
This bench scales the number of concurrent tasks and compares host
execution time of the same workload on the raw SLDL kernel vs under the
RTOS model.
"""

import time

from repro.kernel import Par, Simulator, WaitFor
from repro.rtos import APERIODIC, RTOSModel

STEPS = 200
STEP_NS = 1_000
TASK_COUNTS = (2, 8, 32)


def run_raw(n_tasks):
    sim = Simulator()
    sim.trace.enabled = False

    def worker():
        for _ in range(STEPS):
            yield WaitFor(STEP_NS)

    def top():
        yield Par(*(worker() for _ in range(n_tasks)))

    sim.spawn(top(), name="top")
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats["steps"]


def run_rtos(n_tasks):
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched="priority")

    def body():
        for _ in range(STEPS):
            yield from os_.time_wait(STEP_NS)

    for i in range(n_tasks):
        task = os_.task_create(f"t{i}", APERIODIC, 0, 0, priority=i)
        sim.spawn(os_.task_body(task, body()), name=task.name)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    started = time.perf_counter()
    sim.run()
    return time.perf_counter() - started, sim.stats["steps"]


def sweep():
    rows = []
    for n in TASK_COUNTS:
        raw_time, _ = run_raw(n)
        rtos_time, _ = run_rtos(n)
        rows.append((n, raw_time, rtos_time, rtos_time / max(raw_time, 1e-9)))
    return rows


def test_overhead_scaling(report, benchmark):
    sweep()  # warmup
    rows = benchmark.pedantic(sweep, rounds=1)
    lines = [
        "RTOS-model simulation overhead vs raw SLDL kernel "
        f"({STEPS} delay steps per task)",
        f"{'tasks':>6}{'raw (s)':>12}{'rtos (s)':>12}{'ratio':>8}",
    ]
    for n, raw_t, rtos_t, ratio in rows:
        lines.append(f"{n:>6}{raw_t:>12.4f}{rtos_t:>12.4f}{ratio:>8.2f}")
    lines.append("")
    lines.append(
        "paper: 24.0 s unscheduled vs 24.4 s architecture (~1.02x); the "
        "serialized model does strictly more bookkeeping per step, so a "
        "small constant factor is the expected shape"
    )
    report("ablation_overhead", "\n".join(lines))
    # overhead should be a modest constant factor, not super-linear in
    # the number of tasks; the hot-path rewrite (dispatch table, timer
    # recycling, peek memoization) brought the measured ratio to ~1.7,
    # so 8 leaves headroom for noisy CI hosts while still catching a
    # regression of the scheduling fast paths
    ratios = [ratio for *_, ratio in rows]
    assert all(r < 8 for r in ratios)
    assert max(ratios) / min(ratios) < 6


def test_bench_raw_kernel(benchmark):
    benchmark.pedantic(run_raw, args=(8,), rounds=3, warmup_rounds=1)


def test_bench_rtos_model(benchmark):
    benchmark.pedantic(run_rtos, args=(8,), rounds=3, warmup_rounds=1)
