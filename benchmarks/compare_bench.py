#!/usr/bin/env python
"""Diff two ``BENCH_kernel.json`` files and fail on perf regressions.

Usage::

    python benchmarks/compare_bench.py OLD.json NEW.json [--threshold 0.15]

Compares ``steps_per_sec`` per bench. Exits non-zero if any bench in NEW
is more than ``threshold`` (default 15%) slower than in OLD — the
regression gate every future PR runs against the checked-in baseline.
Benches present in only one file are reported but do not fail the gate.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except FileNotFoundError:
        raise SystemExit(f"{path}: no such file")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: not valid JSON ({exc})")
    if "benches" not in data:
        raise SystemExit(f"{path}: not a run_bench.py result file")
    return data


def compare(old, new, threshold):
    """Return (report_lines, regressions) for two result payloads."""
    lines = [
        f"{'bench':>18}{'old steps/s':>15}{'new steps/s':>15}"
        f"{'speedup':>9}  status"
    ]
    regressions = []
    old_benches = old["benches"]
    new_benches = new["benches"]
    for name in sorted(set(old_benches) | set(new_benches)):
        if name not in old_benches:
            lines.append(f"{name:>18}{'-':>15}"
                         f"{new_benches[name]['steps_per_sec']:>15,.0f}"
                         f"{'':>9}  new bench")
            continue
        if name not in new_benches:
            lines.append(f"{name:>18}{old_benches[name]['steps_per_sec']:>15,.0f}"
                         f"{'-':>15}{'':>9}  removed")
            continue
        old_rate = old_benches[name]["steps_per_sec"]
        new_rate = new_benches[name]["steps_per_sec"]
        speedup = new_rate / max(old_rate, 1e-9)
        regressed = speedup < 1.0 - threshold
        status = "REGRESSION" if regressed else "ok"
        if regressed:
            regressions.append((name, speedup))
        lines.append(
            f"{name:>18}{old_rate:>15,.0f}{new_rate:>15,.0f}"
            f"{speedup:>8.2f}x  {status}"
        )
    return lines, regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline result JSON")
    parser.add_argument("new", help="candidate result JSON")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    args = parser.parse_args(argv)

    old, new = load(args.old), load(args.new)
    lines, regressions = compare(old, new, args.threshold)
    print("\n".join(lines))
    if regressions:
        worst = ", ".join(f"{n} ({s:.2f}x)" for n, s in regressions)
        print(f"\nFAIL: regression beyond {args.threshold:.0%}: {worst}")
        return 1
    print(f"\nOK: no bench regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
