#!/usr/bin/env python
"""Diff two ``BENCH_kernel.json`` files and fail on perf regressions.

Usage::

    python benchmarks/compare_bench.py OLD.json NEW.json [--threshold 0.15]
    python benchmarks/compare_bench.py REF.json FAST.json \
        --tolerance timer_heavy=-0.5

Compares ``steps_per_sec`` per bench. Exits non-zero if any bench in NEW
is more than ``threshold`` (default 15%) slower than in OLD — the
regression gate every future PR runs against the checked-in baseline.
``--tolerance NAME=FRAC`` (repeatable) overrides the threshold for one
bench; a *negative* FRAC turns the gate into a speedup requirement —
``timer_heavy=-0.5`` demands NEW be at least 1.5x OLD there, which is
how CI enforces the fast backend's timer-wheel win against a fresh
reference run. Benches present in only one file are reported but do
not fail the gate.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except FileNotFoundError:
        raise SystemExit(f"{path}: no such file")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: not valid JSON ({exc})")
    if "benches" not in data:
        raise SystemExit(f"{path}: not a run_bench.py result file")
    return data


def parse_tolerances(items):
    """Parse repeated ``NAME=FRAC`` override args into a dict."""
    overrides = {}
    for item in items:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise SystemExit(f"--tolerance {item!r}: expected NAME=FRAC")
        try:
            overrides[name] = float(value)
        except ValueError:
            raise SystemExit(f"--tolerance {item!r}: {value!r} is not a number")
    return overrides


def compare(old, new, threshold, tolerances=None):
    """Return (report_lines, regressions) for two result payloads.

    ``tolerances`` maps bench name -> fractional slowdown allowed for
    that bench, overriding ``threshold``. A bench fails when
    ``speedup < 1.0 - tol``; a negative tolerance therefore *requires* a
    speedup (tol=-0.5 -> NEW must be >=1.5x OLD).
    """
    tolerances = tolerances or {}
    lines = [
        f"{'bench':>18}{'old steps/s':>15}{'new steps/s':>15}"
        f"{'speedup':>9}{'required':>10}  status"
    ]
    regressions = []
    old_benches = old["benches"]
    new_benches = new["benches"]
    for name in sorted(set(old_benches) | set(new_benches)):
        if name not in old_benches:
            lines.append(f"{name:>18}{'-':>15}"
                         f"{new_benches[name]['steps_per_sec']:>15,.0f}"
                         f"{'':>19}  new bench")
            continue
        if name not in new_benches:
            lines.append(f"{name:>18}{old_benches[name]['steps_per_sec']:>15,.0f}"
                         f"{'-':>15}{'':>19}  removed")
            continue
        old_rate = old_benches[name]["steps_per_sec"]
        new_rate = new_benches[name]["steps_per_sec"]
        speedup = new_rate / max(old_rate, 1e-9)
        tol = tolerances.get(name, threshold)
        required = 1.0 - tol
        regressed = speedup < required
        status = "REGRESSION" if regressed else "ok"
        if regressed:
            regressions.append((name, speedup, required))
        lines.append(
            f"{name:>18}{old_rate:>15,.0f}{new_rate:>15,.0f}"
            f"{speedup:>8.2f}x{required:>9.2f}x  {status}"
        )
    return lines, regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline result JSON")
    parser.add_argument("new", help="candidate result JSON")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="NAME=FRAC",
                        help="per-bench override of --threshold "
                             "(repeatable); negative FRAC requires a "
                             "speedup, e.g. timer_heavy=-0.5 demands "
                             ">=1.5x")
    args = parser.parse_args(argv)

    old, new = load(args.old), load(args.new)
    tolerances = parse_tolerances(args.tolerance)
    lines, regressions = compare(old, new, args.threshold, tolerances)
    print("\n".join(lines))
    if regressions:
        worst = ", ".join(
            f"{n} ({s:.2f}x < required {r:.2f}x)" for n, s, r in regressions
        )
        print(f"\nFAIL: below required speedup: {worst}")
        return 1
    print("\nOK: every bench met its required speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())
