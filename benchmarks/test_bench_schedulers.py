"""Ablation: scheduling policies on a synthetic periodic task set.

The RTOS model's ``start(sched_alg)`` selects among fixed-priority,
round-robin, FIFO, EDF and RMS; this bench runs the same periodic
workload under each policy and reports deadline misses, worst response
times and context switches — the design-space exploration the paper's
flow enables.

The workload and the sweep both live in :mod:`repro.farm`: the run
target is :func:`repro.farm.workloads.periodic_taskset_run` and the
fan-out goes through :func:`repro.farm.run_sweep` (in-process serial
here, so pytest-benchmark measures simulation cost, not process
spawning).
"""

from repro.farm import SweepSpec, run_sweep
from repro.farm.workloads import DEFAULT_HORIZON, DEFAULT_TASK_SET
from repro.farm.workloads import periodic_taskset_run as run_policy_config

TASK_SET = DEFAULT_TASK_SET
HORIZON = DEFAULT_HORIZON
POLICIES = ("priority", "priority_np", "rr", "fifo", "edf", "rms")


def run_policy(policy):
    return run_policy_config(policy=policy)


def sweep():
    spec = SweepSpec(
        "repro.farm.workloads:periodic_taskset_run"
    ).axis("policy", list(POLICIES))
    result = run_sweep(spec, parallel=False, cache=None, retries=0)
    assert not result.failed, result.failed
    return result.values()


def test_scheduler_comparison(report, benchmark):
    results = benchmark.pedantic(sweep, rounds=1)
    lines = [
        "Scheduler ablation: periodic set U=0.94 "
        f"(periods {[t[1] for t in TASK_SET]}, horizon {HORIZON})",
        f"{'policy':<12}{'misses':>8}{'switches':>10}{'preempts':>10}"
        f"{'worst t3 resp':>15}{'util':>8}",
    ]
    for r in results:
        worst_t3 = r["worst_response"]["t3"]
        lines.append(
            f"{r['policy']:<12}{r['misses']:>8}{r['switches']:>10}"
            f"{r['preemptions']:>10}{worst_t3 or 0:>15}"
            f"{r['utilization']:>8.3f}"
        )
    report("ablation_schedulers", "\n".join(lines))

    by_policy = {r["policy"]: r for r in results}
    # EDF schedules the U<1 set without misses; RMS misses (U above the
    # Liu-Layland bound); the non-preemptive policies miss as well
    assert by_policy["edf"]["misses"] == 0
    assert by_policy["rms"]["misses"] > 0
    assert by_policy["priority"]["preemptions"] > 0
    assert by_policy["fifo"]["preemptions"] == 0
    # preemptive policies pay more context switches than FIFO
    assert by_policy["priority"]["switches"] >= by_policy["fifo"]["switches"]


def test_bench_edf(benchmark):
    benchmark.pedantic(run_policy, args=("edf",), rounds=2, warmup_rounds=1)


def test_bench_priority(benchmark):
    benchmark.pedantic(
        run_policy, args=("priority",), rounds=2, warmup_rounds=1
    )
