"""Ablation: scheduling policies on a synthetic periodic task set.

The RTOS model's ``start(sched_alg)`` selects among fixed-priority,
round-robin, FIFO, EDF and RMS; this bench runs the same periodic
workload under each policy and reports deadline misses, worst response
times and context switches — the design-space exploration the paper's
flow enables.
"""

from repro.kernel import Simulator, WaitFor
from repro.rtos import PERIODIC, RTOSModel

#: (name, period, exec_time) — U ~ 0.94
TASK_SET = (
    ("t1", 400_000, 100_000),
    ("t2", 500_000, 100_000),
    ("t3", 750_000, 370_000),
)
HORIZON = 6_000_000
GRANULARITY = 10_000
POLICIES = ("priority", "priority_np", "rr", "fifo", "edf", "rms")


def run_policy(policy):
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched=policy)
    tasks = []
    for index, (name, period, exec_time) in enumerate(TASK_SET):
        task = os_.task_create(
            name, PERIODIC, period, exec_time, priority=index + 1
        )
        tasks.append(task)

        def body(task=task, exec_time=exec_time):
            while True:
                remaining = exec_time
                while remaining > 0:
                    step = min(GRANULARITY, remaining)
                    yield from os_.time_wait(step)
                    remaining -= step
                yield from os_.task_endcycle()

        sim.spawn(os_.task_body(task, body()), name=task.name)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run(until=HORIZON)
    return {
        "policy": policy,
        "misses": os_.metrics.deadline_misses,
        "switches": os_.metrics.context_switches,
        "preemptions": os_.metrics.preemptions,
        "worst_response": {
            t.name: t.stats.worst_response for t in tasks
        },
        "utilization": os_.metrics.utilization(sim.now),
    }


def sweep():
    return [run_policy(p) for p in POLICIES]


def test_scheduler_comparison(report, benchmark):
    results = benchmark.pedantic(sweep, rounds=1)
    lines = [
        "Scheduler ablation: periodic set U=0.94 "
        f"(periods {[t[1] for t in TASK_SET]}, horizon {HORIZON})",
        f"{'policy':<12}{'misses':>8}{'switches':>10}{'preempts':>10}"
        f"{'worst t3 resp':>15}{'util':>8}",
    ]
    for r in results:
        worst_t3 = r["worst_response"]["t3"]
        lines.append(
            f"{r['policy']:<12}{r['misses']:>8}{r['switches']:>10}"
            f"{r['preemptions']:>10}{worst_t3 or 0:>15}"
            f"{r['utilization']:>8.3f}"
        )
    report("ablation_schedulers", "\n".join(lines))

    by_policy = {r["policy"]: r for r in results}
    # EDF schedules the U<1 set without misses; RMS misses (U above the
    # Liu-Layland bound); the non-preemptive policies miss as well
    assert by_policy["edf"]["misses"] == 0
    assert by_policy["rms"]["misses"] > 0
    assert by_policy["priority"]["preemptions"] > 0
    assert by_policy["fifo"]["preemptions"] == 0
    # preemptive policies pay more context switches than FIFO
    assert by_policy["priority"]["switches"] >= by_policy["fifo"]["switches"]


def test_bench_edf(benchmark):
    benchmark.pedantic(run_policy, args=("edf",), rounds=2, warmup_rounds=1)


def test_bench_priority(benchmark):
    benchmark.pedantic(
        run_policy, args=("priority",), rounds=2, warmup_rounds=1
    )
