"""Shared helpers for the benchmark harness.

Every bench regenerates one table/figure of the paper (or one ablation
from DESIGN.md), prints it, and archives it under ``benchmarks/out/`` so
the numbers survive the pytest capture.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def report():
    """Print a report block and archive it to benchmarks/out/<name>.txt."""

    def _report(name, text):
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====")
        print(text)

    return _report
