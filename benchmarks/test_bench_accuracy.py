"""Ablation: architecture-model accuracy vs the implementation model.

How well does the abstract RTOS model predict the implementation's
timing? We compare per-frame vocoder transcoding delays between the
architecture model and the ISS-based implementation model, and show how
the architecture model's prediction error relates to the delay
annotation granularity the paper calls out as the accuracy limit.
"""

from repro.apps.vocoder import run_architecture, run_implementation

N_FRAMES = 6


def compare():
    arch = run_architecture(n_frames=N_FRAMES)
    impl = run_implementation(n_frames=N_FRAMES)
    pairs = list(zip(arch.delays_ns, impl.delays_ns))
    errors_ms = [abs(a - i) / 1e6 for a, i in pairs]
    return arch, impl, errors_ms


def test_architecture_predicts_implementation(report, benchmark):
    arch, impl, errors_ms = benchmark.pedantic(compare, rounds=1)
    lines = [
        "Model accuracy: per-frame transcoding delay, architecture vs "
        "implementation (ms)",
        f"{'frame':>6}{'arch':>10}{'impl':>10}{'error':>10}",
    ]
    for k, (a, i) in enumerate(zip(arch.delays_ns, impl.delays_ns)):
        lines.append(
            f"{k:>6}{a / 1e6:>10.2f}{i / 1e6:>10.2f}"
            f"{abs(a - i) / 1e6:>10.2f}"
        )
    mean_err = sum(errors_ms) / len(errors_ms)
    rel = mean_err / arch.mean_delay_ms * 100
    lines.append("")
    lines.append(
        f"mean absolute error {mean_err:.2f} ms ({rel:.1f}% of the "
        "architecture-model delay)"
    )
    lines.append(
        "error sources: RTOS kernel overhead (ticks, syscalls, context "
        "switches) and the tick-quantized phase alignment — effects below "
        "the abstraction level of the architecture model"
    )
    report("ablation_accuracy", "\n".join(lines))
    # the abstract model predicts the implementation within ~10%
    assert rel < 10.0
    assert arch.context_switches <= impl.context_switches


def test_overhead_calibration_mechanism(report, benchmark):
    """The switch-overhead extension: the architecture model can charge
    a calibrated per-switch kernel cost. On workloads whose critical
    path crosses context switches this closes the gap to the
    implementation; in the vocoder the decoder is phase-aligned, so the
    shift is small — both facts are visible here."""

    def run_all():
        impl = run_implementation(n_frames=N_FRAMES)
        plain = run_architecture(n_frames=N_FRAMES)
        # calibrate: ~120 cycles of kernel work per switch at 250 ns
        calibrated = run_architecture(n_frames=N_FRAMES,
                                      switch_overhead=30_000)
        return impl, plain, calibrated

    impl, plain, calibrated = benchmark.pedantic(run_all, rounds=1)
    gap_plain = abs(plain.mean_delay_ms - impl.mean_delay_ms)
    gap_cal = abs(calibrated.mean_delay_ms - impl.mean_delay_ms)
    lines = [
        "Switch-overhead extension (vocoder mean transcoding delay, ms)",
        f"implementation model       : {impl.mean_delay_ms:.3f}",
        f"architecture, free kernel  : {plain.mean_delay_ms:.3f} "
        f"(gap {gap_plain:.3f})",
        f"architecture, 30 us/switch : {calibrated.mean_delay_ms:.3f} "
        f"(gap {gap_cal:.3f})",
        "",
        "the vocoder's decoder is phase-aligned to the output clock, so",
        "kernel cost barely moves its completion; workloads with switches",
        "on the critical path (see tests/rtos/test_overhead_modeling.py)",
        "shift by switches x overhead",
    ]
    report("ablation_overhead_calibration", "\n".join(lines))
    overhead = calibrated.extra["os_metrics"]["overhead_time"]
    assert overhead > 0
    # the charged cost is visible but bounded for this workload
    assert calibrated.mean_delay_ms >= plain.mean_delay_ms
    assert gap_cal < 1.0
