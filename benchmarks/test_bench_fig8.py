"""Figure 8: simulation traces of the example of Figure 3.

Regenerates both panels — the unscheduled model (8(a): B2 and B3 truly
parallel) and the architecture model under priority scheduling (8(b):
interleaved execution, interrupt at t4 with the switch deferred to t4')
— as t1..t7 tables and ASCII Gantt charts.
"""

from repro.analysis import overlap_exists, render_gantt, serialized
from repro.apps.fig3 import run_architecture, run_unscheduled


def _times_row(label, times):
    cells = "".join(f"{times[k]:>8}" for k in sorted(times))
    return f"{label:<12}{cells}"


def _figure8_text():
    unsched = run_unscheduled()
    arch = run_architecture()
    header = f"{'model':<12}" + "".join(
        f"{k:>8}" for k in sorted(unsched.times())
    )
    lines = [
        "Figure 8: simulation trace for the model example (times in ns)",
        header,
        _times_row("unscheduled", unsched.times()),
        _times_row("architecture", arch.times()),
        "",
        "(a) unscheduled model — B2/B3 truly parallel:",
        render_gantt(unsched.trace, actors=["B1", "B3", "B2"], width=65,
                     markers={"t4": unsched.times()["t4"]}),
        "",
        "(b) architecture model — priority scheduling, B3 high:",
        render_gantt(arch.trace, actors=["Task_PE", "B3", "B2"], width=65,
                     markers={"t4": arch.times()["t4"], "t4'": 500}),
        "",
        f"architecture context switches: {arch.context_switches}",
    ]
    return "\n".join(lines), unsched, arch


def test_figure8_reproduction(report, benchmark):
    text, unsched, arch = benchmark.pedantic(_figure8_text, rounds=1)
    report("figure8", text)
    # the properties the figure demonstrates:
    assert overlap_exists(unsched.trace, "B2", "B3")
    assert serialized(arch.trace, ["Task_PE", "B2", "B3"])
    assert arch.times()["t4"] == 450
    b3_resume = [
        s for s in arch.trace.segments("B3") if s[2] > s[1] and s[1] >= 450
    ]
    assert b3_resume[0][1] == 500  # t4' switch


def test_bench_architecture_model(benchmark):
    result = benchmark(run_architecture)
    assert result.end_time == 850


def test_bench_unscheduled_model(benchmark):
    result = benchmark(run_unscheduled)
    assert result.end_time == 650
