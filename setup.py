"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments whose
setuptools predates PEP-660 editable wheels (no ``wheel`` package
available). Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
