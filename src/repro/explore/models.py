"""Explorable models: small simulations with declared invariants.

A :class:`Model` packages one freshly-built simulation with everything
the explorer needs: the horizon to run to, which processes are daemons
(infrastructure that blocks forever by design — ISR dispatchers — and
must not count as deadlocked), the invariants to check after each run,
and the state the fingerprint must capture beyond the kernel's view
(``events``, ``state_extra``).

The builders below are the standard exploration corpus — each returns a
*fresh* model (new simulator, new processes), so the builder itself is
the run factory the explorer re-executes:

* :func:`pingpong` — two kernel processes in a notify/wait rendezvous
  loop; bug-free, exercises ``ready`` decisions.
* :func:`ties3` — three kernel processes on a shared ``waitfor``
  deadline; bug-free but tie-rich (``timer`` + ``ready`` cohorts of
  three), the pruning showcase.
* :func:`lostnotify` — two RTOS tasks around a probabilistic
  ``lost_notify`` fault: the ``fault`` branch where delivery is lost
  deadlocks the waiter (seeded bug, found by exploration).
* :func:`lostirq` — an RTOS task samples on an interrupt whose arrival
  jitters across ``[8, 10]``; the RTOS notify-pending window expires at
  end of timestep, so early arrival slots lose the wakeup and deadlock
  the sampler (seeded missed-wakeup bug across kernel, RTOS *and*
  platform decision kinds).
* :func:`mc3` — a three-task mixed-criticality workload whose HI task
  probabilistically overruns its LO budget; the MC mode switch must
  shield it in *every* branch (bug-free: the ``no_hi_miss`` invariant
  holds exhaustively).
"""

from repro.explore.invariants import expect, no_hi_miss
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultSpec
from repro.kernel import Event, Notify, Simulator, Wait, WaitFor
from repro.platform.interrupt import (
    InterruptController,
    InterruptSource,
    IrqLine,
)
from repro.rtos import APERIODIC, PERIODIC, RTOSModel


class Model:
    """One explorable simulation configuration (fresh per run).

    Attributes beyond the constructor parameters may be attached freely
    by builders (logs, counters, the RTOS model handle); invariants read
    them. ``state_extra`` — when invariants depend on such state — must
    surface it as a stable hashable so fingerprint-equal states really
    do share invariant verdicts (see :mod:`repro.explore.fingerprint`).
    """

    def __init__(self, name, sim, horizon=None, daemons=(), invariants=(),
                 events=(), state_extra=None, include_now=False):
        self.name = name
        self.sim = sim
        self.horizon = horizon
        self.daemons = frozenset(daemons)
        self.invariants = tuple(invariants)
        self.events = tuple(events)
        #: callable(model) -> hashable extra state for the fingerprint
        self.state_extra = state_extra
        self.include_now = include_now

    def fingerprint_extra(self):
        if self.state_extra is None:
            return None
        return self.state_extra(self)

    def __repr__(self):
        return f"Model({self.name!r})"


def pingpong():
    """Two kernel processes exchanging notifications; bug-free."""
    sim = Simulator()
    sim.trace.enabled = False
    ping_evt = Event("ping")
    pong_evt = Event("pong")
    log = []

    def ping():
        for _ in range(2):
            yield WaitFor(5)
            yield Notify(ping_evt)
            yield Wait(pong_evt)

    def pong():
        for i in range(2):
            yield Wait(ping_evt)
            log.append(i)
            yield Notify(pong_evt)

    sim.spawn(ping(), name="ping")
    sim.spawn(pong(), name="pong")
    model = Model(
        "pingpong", sim, horizon=100,
        events=(ping_evt, pong_evt),
        state_extra=lambda m: tuple(m.log),
    )
    model.log = log
    model.invariants = (
        expect(
            lambda m: len(m.log) == 2,
            lambda m: f"pong handled {len(m.log)} of 2 notifications",
        ),
    )
    return model


def ties3(rounds=1):
    """Three processes sharing every ``waitfor`` deadline; bug-free.

    Every timestep wakes a three-timer cohort and then a three-process
    ready set — maximal tie density, so the interleaving count explodes
    under naive DFS while almost all orders converge to the same state.
    """
    sim = Simulator()
    sim.trace.enabled = False
    counts = {"a": 0, "b": 0, "c": 0}

    def worker(key):
        for _ in range(rounds):
            yield WaitFor(10)
            counts[key] += 1

    for key in ("a", "b", "c"):
        sim.spawn(worker(key), name=key)
    model = Model(
        "ties3", sim, horizon=20 * rounds,
        state_extra=lambda m: tuple(sorted(m.counts.items())),
    )
    model.counts = counts
    model.rounds = rounds
    model.invariants = (
        expect(
            lambda m: all(v == m.rounds for v in m.counts.values()),
            lambda m: f"unbalanced rounds: {sorted(m.counts.items())}",
        ),
    )
    return model


def lostnotify():
    """RTOS waiter vs a probabilistic lost-notify fault (seeded bug).

    Under exploration the ``prob=0.5`` fault is a branch, not a coin
    flip: the ``skip`` branch rendezvouses, the ``lost_notify`` branch
    leaves the waiter blocked forever — a deadlock violation whose
    decision path names the fault.
    """
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched="priority", preemption="step")
    evt = os_.event_new("data")
    waiter = os_.task_create("waiter", APERIODIC, 0, 0, priority=1)
    notifier = os_.task_create("notifier", APERIODIC, 0, 0, priority=2)

    def waiter_body():
        yield from os_.event_wait(evt)

    def notifier_body():
        yield from os_.time_wait(5)
        yield from os_.event_notify(evt)

    sim.spawn(os_.task_body(waiter, waiter_body()), name="waiter")
    sim.spawn(os_.task_body(notifier, notifier_body()), name="notifier")
    FaultInjector(
        sim, [FaultSpec("lost_notify", event="data", prob=0.5)]
    ).arm(model=os_)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    model = Model("lostnotify", sim, horizon=100, events=(evt,))
    model.os = os_
    return model


def lostirq():
    """Jittered interrupt vs an RTOS wait window (seeded missed wakeup).

    The sampler task sleeps until ``t=10`` and then waits for the ADC
    event; the interrupt is programmed at ``t=8`` with jitter 2, so its
    arrival slot is a decision point over ``{8, 9, 10}``. An RTOS
    notification pends only for the remainder of its timestep: slots 8
    and 9 notify before anyone waits and the wakeup is lost — the
    sampler blocks forever. Slot 10 rendezvouses. Exhaustive
    exploration must find the two violating schedules.
    """
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched="priority", preemption="step")
    evt = os_.event_new("sample")
    line = IrqLine(sim, "adc")
    pic = InterruptController(sim, "pic")
    handled = []

    def isr():
        yield from os_.event_notify(evt)

    pic.register(line, isr)
    InterruptSource(sim, line, times=(8,), jitter=2)
    sampler = os_.task_create("sampler", APERIODIC, 0, 0, priority=1)

    def body():
        yield from os_.time_wait(10)
        yield from os_.event_wait(evt)
        handled.append(sim.now)

    sim.spawn(os_.task_body(sampler, body()), name="sampler")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    model = Model(
        "lostirq", sim, horizon=100,
        daemons=("pic.isr.adc",),
        events=(evt,),
        state_extra=lambda m: tuple(m.handled),
    )
    model.os = os_
    model.handled = handled
    return model


def mc3():
    """Three-task MC workload under probabilistic overrun (bug-free).

    Two LO tasks (period 20, wcet 4) outrank one HI task (period 40,
    ``wcet=[10, 20]``) — the classic mixed-criticality shape where the
    HI task only survives its pessimistic budget because the mode
    switch sheds LO load. An ``exec_jitter`` fault doubles the HI
    execution with ``prob=0.5``, so every HI cycle branches into a
    within-budget and an overrunning schedule. The ``no_hi_miss``
    invariant must hold on *every* branch: overrun ⇒ budget watchdog ⇒
    mode raise ⇒ LO releases dropped ⇒ the HI job still meets its
    deadline — the runtime half of the AMC certificate, checked
    exhaustively.
    """
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched="priority", preemption="immediate")
    os_.mc_configure(degrade="drop")
    specs = (
        ("lo1", 20, 4, 1, None),
        ("lo2", 20, 4, 2, None),
        ("hi", 40, (10, 20), 3, "HI"),
    )
    for name, period, wcet, priority, criticality in specs:
        task = os_.task_create(
            name, PERIODIC, period, wcet,
            priority=priority, criticality=criticality,
        )
        exec_time = wcet[0] if isinstance(wcet, tuple) else wcet

        def body(exec_time=exec_time):
            while True:
                yield from os_.time_wait(exec_time)
                yield from os_.task_endcycle()

        sim.spawn(os_.task_body(task, body()), name=name)
    FaultInjector(
        sim, [FaultSpec("exec_jitter", task="hi", scale=2.0, prob=0.5)]
    ).arm(model=os_)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    model = Model(
        "mc3", sim, horizon=80,
        # the mode index shapes continuations (release suppression) and
        # the monitor counters decide the invariant — both are invisible
        # to the kernel fingerprint, so surface them explicitly
        state_extra=lambda m: (
            m.os.mc.mode_index,
            tuple(sorted(m.os.monitor.miss_counts.items())),
            tuple(sorted(m.os.monitor.overrun_counts.items())),
            tuple(sorted(m.os.monitor.budgets.items())),
            tuple(sorted(m.os.monitor.budget_used.items())),
        ),
    )
    model.os = os_
    model.invariants = (no_hi_miss,)
    return model


#: name -> zero-argument fresh-model factory (the exploration corpus)
MODELS = {
    "pingpong": pingpong,
    "ties3": ties3,
    "lostnotify": lostnotify,
    "lostirq": lostirq,
    "mc3": mc3,
}


def build(name):
    """Build a fresh instance of the named corpus model."""
    try:
        factory = MODELS[name]
    except KeyError:
        known = ", ".join(sorted(MODELS))
        raise KeyError(f"unknown model {name!r} (known: {known})") from None
    return factory()
