"""Canonical state fingerprints for exploration pruning.

A fingerprint is a stable hash of everything scheduling-relevant in a
simulator at a decision point: every live process (name, state, waited
events, relative timer deadline, unfinished par children), the run
queues in order, the pending timer set as ``(time - now, label)`` pairs,
and — when the model declares them — the pending/notified state of its
events plus any model-level extra state.

Two design choices matter for pruning power and soundness:

* **Time-shift invariance** (the default): timer deadlines are recorded
  relative to ``now`` and ``now`` itself is excluded, so states that
  differ only by a time offset merge — kernel behavior is relative to
  the current instant. Models whose behavior depends on *absolute* time
  (hierarchical server windows are ``now // period`` aligned) must set
  ``include_now=True``.
* **Declared extra state**: the kernel cannot see model-level state
  (logs, counters) or enumerate events that currently pend with no
  waiter. Pruning assumes two states with equal fingerprints have
  identical continuations *and* identical invariant verdicts, so a
  model whose invariants read such state must surface it through
  ``events=`` / ``state_extra`` — see :class:`repro.explore.models.Model`.
"""

import hashlib

from repro.kernel.process import ProcessState
from repro.kernel.waitcore import timer_label

_TERMINATED = ProcessState.TERMINATED


def event_pending(sim, event):
    """Whether ``event`` currently pends (kernel or RTOS semantics).

    Kernel events pend for the current delta (stamp identity); RTOS
    events pend for the remainder of the current timestep.
    """
    stamp = getattr(event, "_pending_stamp", _MISSING)
    if stamp is not _MISSING:
        return stamp is sim._stamp
    return event.pending_time == sim.now


_MISSING = object()


def _timer_entries(sim):
    """Pending live timers as ``(time - now, label)`` in fire order.

    Works on both timer engines: the reference heap stores
    ``(time, seq, Timer)`` tuples (sorting them yields fire order), the
    fast backend's wheel stores per-instant buckets in insertion order.
    """
    timers = sim._timers
    now = sim.now
    entries = []
    heap = getattr(timers, "heap", None)
    if heap is not None:
        for time, _seq, timer in sorted(heap):
            if not timer.cancelled:
                entries.append((time - now, timer_label(timer)))
    else:
        buckets = timers.buckets
        for time in sorted(buckets):
            for timer in buckets[time].timers:
                if not timer.cancelled:
                    entries.append((time - now, timer_label(timer)))
    return tuple(entries)


def kernel_fingerprint(sim, include_now=False, events=(), extra=None):
    """Canonical digest of ``sim``'s scheduling-relevant state.

    ``events`` are event objects (kernel or RTOS) whose pending state
    the model's behavior depends on; ``extra`` is an opaque hashable of
    model-level state (pass ``repr``-stable values only). Returns a hex
    digest string.
    """
    now = sim.now
    parts = []
    if include_now:
        parts.append(("now", now))
    for process in sorted(sim._live, key=lambda p: (p.name, p.uid)):
        timer = process.timer
        due = (
            timer.time - now
            if timer is not None and not timer.cancelled
            else None
        )
        parts.append((
            process.name,
            process.state.value,
            tuple(sorted(e.name for e in process.waiting_events)),
            due,
            process.pending_children,
        ))
    parts.append((
        "run",
        tuple(p.name for p in sim._run_queue if p.state is not _TERMINATED),
    ))
    parts.append(("next", tuple(p.name for p in sim._next_delta)))
    parts.append(("timers", _timer_entries(sim)))
    if events:
        parts.append((
            "events",
            tuple((e.name, event_pending(sim, e)) for e in events),
        ))
    if extra is not None:
        parts.append(("extra", extra))
    blob = repr(parts).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()
