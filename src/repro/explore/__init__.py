"""Systematic exploration of scheduling nondeterminism.

Built on the kernel's decision-point seam (:mod:`repro.kernel.oracle`):
an :class:`~repro.explore.explorer.Explorer` re-executes a model once
per schedule, forcing decision prefixes and pruning re-visited states
via canonical fingerprints, and every violation it finds carries a
replayable schedule. See DESIGN.md §12 and ``python -m repro.explore``.
"""

from repro.explore.explorer import (
    ExploreResult,
    Explorer,
    Violation,
    explore,
    replay_run,
)
from repro.explore.fingerprint import event_pending, kernel_fingerprint
from repro.explore.invariants import all_terminated, expect
from repro.explore.models import MODELS, Model, build
from repro.explore.schedule import (
    SCHEDULE_VERSION,
    load_schedule,
    save_schedule,
)

__all__ = [
    "MODELS",
    "SCHEDULE_VERSION",
    "ExploreResult",
    "Explorer",
    "Model",
    "Violation",
    "all_terminated",
    "build",
    "event_pending",
    "expect",
    "explore",
    "kernel_fingerprint",
    "load_schedule",
    "replay_run",
    "save_schedule",
]
