"""CLI for systematic exploration: ``python -m repro.explore``.

Examples::

    python -m repro.explore --list
    python -m repro.explore --model lostirq
    python -m repro.explore --model ties3 --prune none --json
    python -m repro.explore --model lostirq --schedule-out bug.json
    python -m repro.explore --model lostirq --replay bug.json

Exit codes: 0 on success; with ``--expect-violation``, 0 when a
violation was found (or reproduced by ``--replay``) and 2 when none
was; with ``--expect-clean``, the inverse — 2 when any violation was
found and additionally 3 when the exploration did not complete (so an
exhaustiveness claim cannot be made). The CI smoke jobs assert on
both contracts.
"""

import argparse
import json
import sys

from repro.explore.explorer import Explorer, replay_run
from repro.explore.models import MODELS
from repro.explore.schedule import load_schedule, save_schedule


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="systematically explore a model's interleavings",
    )
    parser.add_argument("--model", help="corpus model to explore")
    parser.add_argument(
        "--list", action="store_true", help="list the model corpus"
    )
    parser.add_argument(
        "--prune", default="sleep", choices=("none", "visited", "sleep"),
        help="pruning level (default: sleep)",
    )
    parser.add_argument("--max-runs", type=int, default=10_000)
    parser.add_argument("--max-depth", type=int, default=200)
    parser.add_argument(
        "--stop-on-first", action="store_true",
        help="stop at the first violation",
    )
    parser.add_argument(
        "--schedule-out", metavar="PATH",
        help="write the first violating schedule to PATH",
    )
    parser.add_argument(
        "--replay", metavar="PATH",
        help="replay a saved schedule instead of exploring",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full result as JSON (deterministic)",
    )
    parser.add_argument(
        "--expect-violation", action="store_true",
        help="exit 2 unless a violation was found/reproduced",
    )
    parser.add_argument(
        "--expect-clean", action="store_true",
        help="exit 2 if any violation was found, 3 if the exploration "
        "did not complete (certification gate)",
    )
    return parser


def _do_list():
    for name in sorted(MODELS):
        doc = (MODELS[name].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:12s} {summary}")
    return 0


def _do_replay(factory, args):
    document = load_schedule(args.replay)
    model, violation, trail = replay_run(factory, document["steps"])
    outcome = {
        "model": model.name,
        "replayed_steps": len(document["steps"]),
        "violation": (
            {"kind": violation[0], "message": violation[1]}
            if violation is not None else None
        ),
        "path": trail,
    }
    if args.json:
        print(json.dumps(outcome, indent=2, sort_keys=True))
    elif violation is not None:
        print(f"replay reproduced {violation[0]}: {violation[1]}")
    else:
        print("replay completed without violation")
    if args.expect_violation and violation is None:
        return 2
    if args.expect_clean and violation is not None:
        return 2
    return 0


def main(argv=None):
    args = _parser().parse_args(argv)
    if args.list:
        return _do_list()
    if args.expect_violation and args.expect_clean:
        _parser().error(
            "--expect-violation and --expect-clean are mutually exclusive"
        )
    if not args.model:
        _parser().error("--model is required (or use --list)")
    try:
        factory = MODELS[args.model]
    except KeyError:
        _parser().error(
            f"unknown model {args.model!r} "
            f"(known: {', '.join(sorted(MODELS))})"
        )
    if args.replay:
        return _do_replay(factory, args)
    explorer = Explorer(
        factory, prune=args.prune, max_runs=args.max_runs,
        max_depth=args.max_depth, stop_on_first=args.stop_on_first,
    )
    result = explorer.run()
    if args.schedule_out and result.violations:
        first = result.violations[0]
        save_schedule(
            args.schedule_out, first.schedule,
            model=result.model, violation=first.message,
        )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"{result.model}: {result.runs} runs, {result.decisions} "
            f"decisions, {result.states} states "
            f"(prune={result.prune}, aborted={result.aborted}, "
            f"skipped={result.skipped}, "
            f"complete={'yes' if result.complete else 'no'})"
        )
        for violation in result.violations:
            print(f"  {violation.kind}: {violation.message}")
        if args.schedule_out and result.violations:
            print(f"  first violating schedule -> {args.schedule_out}")
    if args.expect_violation and not result.violations:
        return 2
    if args.expect_clean:
        if result.violations:
            return 2
        if not result.complete:
            return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
