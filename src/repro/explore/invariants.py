"""Invariant checkers for exploration.

An invariant is a callable ``inv(model) -> None | str``: it inspects
the finished run's model and returns ``None`` when the invariant holds
or a human-readable violation message when it does not. The explorer
runs every invariant after each non-pruned execution (deadlock-freedom
is checked by the explorer itself — every blocked non-daemon process
with no pending timer is a violation, no invariant needed).

Invariants must read only state the model's fingerprint captures (see
:mod:`repro.explore.fingerprint`): pruned continuations are assumed to
reach the same verdict as the first visit of an equal-fingerprint state.
"""


def all_terminated(model):
    """Every non-daemon process ran to completion by the horizon."""
    lingering = sorted(
        p.name for p in model.sim._live if p.name not in model.daemons
    )
    if lingering:
        return (
            f"processes still alive at the horizon: {', '.join(lingering)}"
        )
    return None


def expect(predicate, message):
    """Wrap a boolean predicate into an invariant.

    ``predicate(model)`` truthy means the invariant holds; otherwise
    ``message`` (a string, or a callable of the model for dynamic
    detail) is the violation.
    """

    def invariant(model):
        if predicate(model):
            return None
        return message(model) if callable(message) else message

    return invariant
