"""Invariant checkers for exploration.

An invariant is a callable ``inv(model) -> None | str``: it inspects
the finished run's model and returns ``None`` when the invariant holds
or a human-readable violation message when it does not. The explorer
runs every invariant after each non-pruned execution (deadlock-freedom
is checked by the explorer itself — every blocked non-daemon process
with no pending timer is a violation, no invariant needed).

Invariants must read only state the model's fingerprint captures (see
:mod:`repro.explore.fingerprint`): pruned continuations are assumed to
reach the same verdict as the first visit of an equal-fingerprint state.
"""


def all_terminated(model):
    """Every non-daemon process ran to completion by the horizon."""
    lingering = sorted(
        p.name for p in model.sim._live if p.name not in model.daemons
    )
    if lingering:
        return (
            f"processes still alive at the horizon: {', '.join(lingering)}"
        )
    return None


def no_hi_miss(model):
    """No above-base-criticality task ever missed a deadline.

    Reads the MC registry and the FailureMonitor's eager miss counters
    of ``model.os`` — the runtime half of the mixed-criticality
    contract: an AMC-certified HI task protected by mode switching must
    never miss, whatever the interleaving or overrun pattern. Models
    using this invariant must surface the miss counters (and the mode
    index, which shapes continuations) through ``state_extra``.
    """
    os_ = model.os
    if os_.mc is None or os_.monitor is None:
        return None
    missed = []
    for info in sorted(os_.mc._by_uid.values(), key=lambda i: i.task.uid):
        if info.index == 0:
            continue
        count = os_.monitor.miss_counts.get(info.task.uid, 0)
        if count:
            missed.append(f"{info.task.name} ({count})")
    if missed:
        return (
            "criticality breach: HI task(s) missed deadlines under MC "
            f"protection: {', '.join(missed)}"
        )
    return None


def expect(predicate, message):
    """Wrap a boolean predicate into an invariant.

    ``predicate(model)`` truthy means the invariant holds; otherwise
    ``message`` (a string, or a callable of the model for dynamic
    detail) is the violation.
    """

    def invariant(model):
        if predicate(model):
            return None
        return message(model) if callable(message) else message

    return invariant
