"""Systematic interleaving exploration over decision points.

The :class:`Explorer` enumerates the schedules a model can take by
driving every :class:`~repro.kernel.oracle.DecisionPoint` of a run and
re-executing the model from scratch per schedule (stateless DFS — the
kernel has no snapshot/restore, and fresh re-execution is cheap at the
scale of the exploration corpus). Each run forces a *prefix* of
decision indices and extends it FIFO (choice 0); after the run, every
decision depth that offered alternatives enqueues sibling prefixes.

Pruning levels (``prune=``):

* ``"none"`` — naive DFS: every reachable schedule executes in full.
* ``"visited"`` — state-hash pruning: each decision records the
  canonical fingerprint of the pre-decision state; once a state has
  been expanded, later runs that reach it stop enqueueing alternates
  (the first visitor already enqueued that subtree).
* ``"sleep"`` — DPOR-lite on top of ``"visited"``: runs *abort* as soon
  as they re-enter a visited state beyond their forced prefix (the
  continuation from an equal state is deterministic and was already
  executed), and queued prefixes whose outcome is provable from the
  learned transition relation ``(state, pick) -> state`` are skipped
  without executing at all. Explores strictly fewer decisions than
  naive DFS on any model with converging interleavings.

Soundness rests on the fingerprint capturing all behavior- and
invariant-relevant state — see :mod:`repro.explore.fingerprint` for the
contract and its knobs (``events``, ``state_extra``, ``include_now``).
``prune="none"`` is the assumption-free baseline.

After every completed (non-aborted) run the explorer checks for
deadlock — blocked non-daemon processes with no pending timer — and
runs the model's invariants. A violation captures the full replayable
schedule (:class:`~repro.kernel.oracle.RecordingOracle`-shaped steps)
plus the human-readable decision path; :func:`replay_run` re-executes
such a schedule deterministically under a strict
:class:`~repro.kernel.oracle.ReplayOracle`.
"""

from repro.explore.fingerprint import kernel_fingerprint
from repro.kernel.errors import (
    DeadlockError,
    KernelError,
    SimulationError,
)
from repro.kernel.oracle import (
    ReplayOracle,
    ScheduleDivergence,
    ScheduleOracle,
)

PRUNE_MODES = ("none", "visited", "sleep")


class _PruneRun(SimulationError):
    """Internal control flow: abort a run whose continuation is covered.

    Subclasses :class:`SimulationError` because the kernel's step loop
    re-raises that type unwrapped (any other exception from inside a
    process step would be wrapped and misread as a model error).
    """

    def __init__(self):
        Exception.__init__(self, "run pruned: re-entered a visited state")


class _ExploreOracle(ScheduleOracle):
    """Drives one run: forced prefix, FIFO tail, per-decision capture."""

    def __init__(self, explorer, model, prefix):
        super().__init__()
        self.explorer = explorer
        self.model = model
        self.prefix = prefix
        #: RecordingOracle-shaped replayable steps
        self.steps = []
        #: canonical state hash before each decision
        self.pre_hashes = []
        #: alternative count of each decision
        self.n_choices = []

    def choose(self, point):
        depth = len(self.steps)
        state = self.explorer._hash(self.model)
        self.pre_hashes.append(state)
        if depth < len(self.prefix):
            return self.prefix[depth]
        if (
            self.explorer.prune == "sleep"
            and state in self.explorer._visited
        ):
            raise _PruneRun()
        return 0

    def pick(self, point):
        index = super().pick(point)
        self.steps.append({
            "kind": point.kind,
            "actor": point.actor,
            "time": point.time,
            "choices": list(point.choices),
            "pick": index,
        })
        self.n_choices.append(len(point.choices))
        return index


class Violation:
    """One schedule that broke an invariant (or deadlocked/errored)."""

    __slots__ = ("kind", "message", "schedule", "path", "run_index")

    def __init__(self, kind, message, schedule, path, run_index):
        #: "deadlock" | "invariant" | "error"
        self.kind = kind
        self.message = message
        #: replayable steps (feed to ReplayOracle / save_schedule)
        self.schedule = schedule
        #: human-readable "kind:label" decision trail
        self.path = path
        self.run_index = run_index

    def to_dict(self):
        return {
            "kind": self.kind,
            "message": self.message,
            "path": list(self.path),
            "run_index": self.run_index,
            "schedule": [dict(step) for step in self.schedule],
        }

    def __repr__(self):
        return f"Violation({self.kind!r}, {self.message!r})"


class ExploreResult:
    """Deterministic summary of one exploration."""

    __slots__ = (
        "model", "prune", "runs", "aborted", "skipped", "decisions",
        "states", "violations", "complete", "max_runs", "max_depth",
    )

    def __init__(self, model, prune, max_runs, max_depth):
        self.model = model
        self.prune = prune
        #: executions started (including aborted ones)
        self.runs = 0
        #: runs aborted mid-flight on re-entering a visited state
        self.aborted = 0
        #: queued prefixes skipped without executing (transition cache)
        self.skipped = 0
        #: decision points actually executed, across all runs
        self.decisions = 0
        #: distinct state fingerprints encountered
        self.states = 0
        self.violations = []
        #: frontier drained without hitting max_runs/max_depth
        self.complete = False
        self.max_runs = max_runs
        self.max_depth = max_depth

    def to_dict(self):
        return {
            "model": self.model,
            "prune": self.prune,
            "runs": self.runs,
            "aborted": self.aborted,
            "skipped": self.skipped,
            "decisions": self.decisions,
            "states": self.states,
            "complete": self.complete,
            "max_runs": self.max_runs,
            "max_depth": self.max_depth,
            "violations": [v.to_dict() for v in self.violations],
        }


class Explorer:
    """Enumerate the schedules of ``factory()``-built models.

    ``factory`` is a zero-argument callable returning a fresh
    :class:`~repro.explore.models.Model` (the corpus builders qualify).
    """

    def __init__(self, factory, prune="sleep", max_runs=10_000,
                 max_depth=200, stop_on_first=False):
        if prune not in PRUNE_MODES:
            raise ValueError(
                f"unknown prune mode {prune!r} (known: {PRUNE_MODES})"
            )
        self.factory = factory
        self.prune = prune
        self.max_runs = max_runs
        self.max_depth = max_depth
        self.stop_on_first = stop_on_first
        self._visited = set()
        #: learned deterministic transitions: (state, pick) -> state
        self._trans = {}
        self._root_hash = None

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def run(self):
        """Explore; returns an :class:`ExploreResult`."""
        self._visited = set()
        self._trans = {}
        self._root_hash = None
        all_states = set()
        probe = self.factory()
        result = ExploreResult(
            probe.name, self.prune, self.max_runs, self.max_depth
        )
        stack = [()]
        truncated = False
        while stack:
            if result.runs >= self.max_runs:
                truncated = True
                break
            prefix = stack.pop()
            if self.prune == "sleep" and self._provably_covered(prefix):
                result.skipped += 1
                continue
            oracle, violation, pruned = self._execute(prefix)
            result.runs += 1
            result.decisions += len(oracle.steps)
            all_states.update(oracle.pre_hashes)
            if pruned:
                result.aborted += 1
            if self._root_hash is None and oracle.pre_hashes:
                self._root_hash = oracle.pre_hashes[0]
            if violation is not None:
                kind, message = violation
                result.violations.append(Violation(
                    kind, message, list(oracle.steps),
                    list(oracle.trail), result.runs - 1,
                ))
                if self.stop_on_first:
                    # the run's own alternates were never enqueued, so
                    # the frontier is not drained — don't claim it was
                    truncated = True
                    break
            truncated |= self._enqueue_alternates(stack, prefix, oracle)
        result.states = len(
            self._visited if self.prune != "none" else all_states
        )
        result.complete = not stack and not truncated
        return result

    def _execute(self, prefix):
        """One run under a forced prefix; returns (oracle, violation,
        pruned)."""
        model = self.factory()
        oracle = _ExploreOracle(self, model, prefix)
        model.sim.install_oracle(oracle)
        try:
            model.sim.run(until=model.horizon)
        except _PruneRun:
            return oracle, None, True
        except (SimulationError, KernelError) as exc:
            return oracle, ("error", str(exc)), False
        violation = self._check(model, oracle)
        return oracle, violation, False

    def _check(self, model, oracle):
        sim = model.sim
        blocked = [
            p for p in sim.blocked_processes()
            if p.name not in model.daemons
        ]
        if blocked and sim._timers.next_time() is None:
            error = DeadlockError(blocked, decision_path=oracle.trail)
            return ("deadlock", str(error))
        for invariant in model.invariants:
            message = invariant(model)
            if message:
                return ("invariant", message)
        return None

    def _enqueue_alternates(self, stack, prefix, oracle):
        """Enqueue sibling prefixes for the run's new decision depths.

        Depths below ``len(prefix)`` were branched by ancestor runs;
        scanning starts at the first fresh state. Under state pruning
        the scan stops at the first already-visited state — the first
        visitor expanded that subtree. Returns True when ``max_depth``
        suppressed alternates (the exploration is then incomplete).
        """
        picks = [step["pick"] for step in oracle.steps]
        hashes = oracle.pre_hashes
        if self.prune == "sleep":
            trans = self._trans
            for depth in range(len(picks) - 1):
                trans[(hashes[depth], picks[depth])] = hashes[depth + 1]
        truncated = False
        alternates = []
        for depth in range(len(prefix), len(picks)):
            if self.prune != "none":
                state = hashes[depth]
                if state in self._visited:
                    break
                self._visited.add(state)
            if oracle.n_choices[depth] < 2:
                continue
            if depth >= self.max_depth:
                truncated = True
                continue
            base = tuple(picks[:depth])
            for alt in range(1, oracle.n_choices[depth]):
                alternates.append(base + (alt,))
        # deepest-first keeps the walk depth-first; reversed() makes
        # sibling order (alt 1 before alt 2) match discovery order
        for alternate in reversed(alternates):
            stack.append(alternate)
        return truncated

    def _provably_covered(self, prefix):
        """Walk ``prefix`` through the learned transition relation; a
        full walk landing in a visited state needs no execution."""
        state = self._root_hash
        if state is None:
            return False
        for pick in prefix:
            state = self._trans.get((state, pick))
            if state is None:
                return False
        return state in self._visited

    def _hash(self, model):
        return kernel_fingerprint(
            model.sim,
            include_now=model.include_now,
            events=model.events,
            extra=model.fingerprint_extra(),
        )


def explore(factory, **kwargs):
    """One-shot convenience: ``Explorer(factory, **kwargs).run()``."""
    return Explorer(factory, **kwargs).run()


def replay_run(factory, steps, strict=True):
    """Re-execute a recorded schedule against a fresh model.

    Returns ``(model, violation, trail)`` where ``violation`` is the
    ``(kind, message)`` the schedule reproduces (None when the run
    passes) and ``trail`` the decision path taken. Strict mode raises
    :class:`~repro.kernel.oracle.ScheduleDivergence` when the model no
    longer offers the recorded decisions.
    """
    model = factory()
    oracle = model.sim.install_oracle(ReplayOracle(steps, strict=strict))
    violation = None
    try:
        model.sim.run(until=model.horizon)
    except ScheduleDivergence:
        raise
    except (SimulationError, KernelError) as exc:
        violation = ("error", str(exc))
    if violation is None:
        blocked = [
            p for p in model.sim.blocked_processes()
            if p.name not in model.daemons
        ]
        if blocked and model.sim._timers.next_time() is None:
            error = DeadlockError(blocked, decision_path=oracle.trail)
            violation = ("deadlock", str(error))
        else:
            for invariant in model.invariants:
                message = invariant(model)
                if message:
                    violation = ("invariant", message)
                    break
    return model, violation, list(oracle.trail)
