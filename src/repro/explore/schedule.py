"""Replayable schedule files (JSON, version 1).

A schedule file persists the decision steps of one run — typically the
violating schedule an exploration emitted — so the exact interleaving
can be re-executed later (in a bug report, a regression test, a CI
job) with :class:`~repro.kernel.oracle.ReplayOracle`::

    {"version": 1, "model": "lostirq", "violation": "...", "steps": [
        {"kind": "irq", "actor": "adc", "time": 8,
         "choices": ["t+0", "t+1", "t+2"], "pick": 0},
        ...
    ]}

Steps carry the full decision context (kind, actor, time, choice
labels), so strict replay detects model drift instead of silently
taking wrong branches.
"""

import json

SCHEDULE_VERSION = 1


def save_schedule(path, steps, model=None, violation=None):
    """Write ``steps`` (RecordingOracle-shaped) to ``path``; returns the
    document written."""
    document = {
        "version": SCHEDULE_VERSION,
        "model": model,
        "violation": violation,
        "steps": [
            step if isinstance(step, dict) else {"pick": int(step)}
            for step in steps
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_schedule(path):
    """Read a schedule document; returns the dict (validated)."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("version")
    if version != SCHEDULE_VERSION:
        raise ValueError(
            f"unsupported schedule version {version!r} "
            f"(expected {SCHEDULE_VERSION})"
        )
    steps = document.get("steps")
    if not isinstance(steps, list):
        raise ValueError("schedule file has no step list")
    return document
