"""The RTOS model — the paper's core contribution (Section 4).

:class:`RTOSModel` is a channel layered between the application and the
SLDL kernel (paper Figure 2(b)). It implements the complete interface of
Figure 4 and serializes task execution on top of the concurrent SLDL:
at any simulated instant at most one task of a PE is *running*; all other
tasks are blocked on per-task SLDL dispatch events. Whenever task states
change inside an RTOS call, the scheduler is invoked and the selected
task is dispatched by releasing its dispatch event (Section 4.3).

Calling convention
------------------
The model is used from inside SLDL processes. Calls that may block or
reschedule are generators and must be delegated to with ``yield from``::

    def task_b2_main():
        yield from os.task_activate(b2)
        yield from os.time_wait(500)
        yield from os.task_terminate()

``init``, ``start``, ``interrupt_return``, ``task_create``, ``event_new``
and ``event_del`` never block and are plain methods.

Preemption modes
----------------
``preemption="step"`` (the paper's model): an interrupt at t4 can make a
higher-priority task ready, but the running task keeps the CPU until the
end of its current delay step (t4′) — accuracy is bounded by the
granularity of the task delay model, exactly as discussed in Section 4.3.

``preemption="immediate"`` (extension, in the spirit of later
result-oriented-modeling work): the in-flight ``time_wait`` of the
running task is aborted at t4, the remaining delay is resumed after the
task is re-dispatched. Used by the accuracy ablation benches.
"""

from repro.kernel.channel import Channel
from repro.kernel.commands import TIMEOUT, Wait, WaitFor
from repro.rtos.errors import RTOSError, TaskKilled
from repro.rtos.events import RTOSEvent
from repro.rtos.metrics import RTOSMetrics
from repro.rtos.sched import make_scheduler
from repro.rtos.task import (
    APERIODIC,
    DEFAULT_PRIORITY,
    PERIODIC,
    Task,
    TaskState,
)

_BLOCKED_STATES = (
    TaskState.WAITING,
    TaskState.SLEEPING,
    TaskState.PARENT_WAIT,
    TaskState.IDLE_PERIOD,
)


class RTOSModel(Channel):
    """Abstract RTOS for one processing element.

    Parameters
    ----------
    sim:
        The :class:`~repro.kernel.simulator.Simulator` this model runs on.
    sched:
        Scheduling policy — anything :func:`repro.rtos.sched.make_scheduler`
        accepts (``"priority"``, ``"rr"``, ``"edf"``, an int constant, a
        :class:`~repro.rtos.sched.base.Scheduler` instance, ...).
    preemption:
        ``"step"`` (paper) or ``"immediate"`` (extension), see module doc.
    switch_overhead:
        Simulated time each context switch costs on the target CPU
        (kernel save/restore + scheduler). The paper's model treats the
        RTOS as free; this extension — the refinement direction later
        TLM work took — lets the architecture model account for the
        kernel overhead the implementation model exhibits. Overhead
        time accrues in ``metrics.overhead_time`` (not in task
        execution times).
    name:
        Label used in traces (one model per PE, e.g. ``"DSP.os"``).
    """

    def __init__(self, sim, sched="priority", preemption="step", name="rtos",
                 switch_overhead=0):
        super().__init__(name)
        if preemption not in ("step", "immediate"):
            raise ValueError(f"unknown preemption mode: {preemption!r}")
        if switch_overhead < 0:
            raise ValueError(f"negative switch overhead: {switch_overhead}")
        self.switch_overhead = int(switch_overhead)
        self.sim = sim
        self.trace = sim.trace
        self.scheduler = make_scheduler(sched)
        self.preemption = preemption
        self.metrics = RTOSMetrics()
        self.tasks = []
        self.events = []
        self._by_process = {}
        self._running = None
        self._last_occupant = None
        self._started = False
        self._dispatch_pending = False
        #: reusable WaitFor for time_wait's step mode — the kernel reads
        #: ``delay`` synchronously at the yield, so one mutable instance
        #: per model suffices (at most one task executes at a time)
        self._waitfor = WaitFor(0)

    # ------------------------------------------------------------------
    # operating system management
    # ------------------------------------------------------------------

    def init(self):
        """Initialize (or reset) the kernel data structures."""
        self.tasks = []
        self.events = []
        self._by_process = {}
        self._running = None
        self._last_occupant = None
        self._started = False
        self._dispatch_pending = False
        self.metrics.reset()

    def start(self, sched_alg=None):
        """Start multi-task scheduling, optionally selecting the policy.

        Until ``start`` is called, activated tasks queue up but none is
        dispatched — mirroring an RTOS that boots with the scheduler
        locked.
        """
        if sched_alg is not None:
            new_scheduler = make_scheduler(sched_alg)
            now = self.sim.now
            # migrate tasks that queued up before the policy switch
            for task in self.scheduler.ready_tasks:
                new_scheduler.on_ready(task, now)
            # the old policy's time-slicing state is meaningless under
            # the new one: the current occupant starts a fresh slice,
            # everyone else gets theirs at their next dispatch
            for task in self.tasks:
                if task is self._running:
                    new_scheduler.on_dispatch(task, now)
                else:
                    task.slice_start = None
            self.scheduler = new_scheduler
        self._started = True
        self._dispatch_if_idle()

    def interrupt_return(self):
        """Notify the kernel that an interrupt service routine finished.

        Performs the post-interrupt scheduling decision: if the ISR made a
        higher-urgency task ready, the running task is preempted
        (immediately or at its next scheduling point, per the preemption
        mode); an idle CPU dispatches directly.
        """
        self.metrics.interrupts += 1
        self.trace.record(self.sim.now, "irq", self.name, "return")
        self._resched_from_outside()

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------

    def task_create(self, name, tasktype, period, wcet, priority=None, rel_deadline=None):
        """Allocate a task control block; returns the task handle.

        ``tasktype`` is :data:`~repro.rtos.task.PERIODIC` or
        :data:`~repro.rtos.task.APERIODIC`. ``priority`` is an explicit
        fixed priority (lower = more urgent); the paper assigns priorities
        during refinement, so it is optional here and defaults to
        :data:`~repro.rtos.task.DEFAULT_PRIORITY`. ``rel_deadline``
        overrides the implicit deadline (= period) used by EDF.
        """
        if tasktype not in (PERIODIC, APERIODIC):
            raise RTOSError(f"unknown task type: {tasktype!r}")
        if tasktype == PERIODIC and period <= 0:
            raise RTOSError(f"periodic task {name!r} needs a positive period")
        if priority is None:
            priority = DEFAULT_PRIORITY
        task = Task(name, tasktype, period, wcet, priority, rel_deadline)
        self.tasks.append(task)
        self.trace.record(self.sim.now, "task", name, "create")
        return task

    def task_activate(self, tid):
        """Activate a task (generator).

        Two uses, as in the paper:

        * *self-activation* — the first statement of a task body
          (Figure 5): binds the calling SLDL process to the TCB, releases
          the task and **blocks until the scheduler dispatches it**;
        * *activating another task* — moves a ``SLEEPING``/``NEW`` task
          into the ready queue; the caller continues (it may be preempted
          by the activated task at this scheduling point).
        """
        current = self._current_task()
        process = self.sim._current
        if tid.process is None and current is None:
            # self-activation: first RTOS contact of this task's process
            if process is None:
                raise RTOSError("task_activate outside of a process")
            tid.process = process
            self._by_process[process.uid] = tid
            if tid.state is TaskState.NEW:
                self._release_task(tid)
            self._dispatch_if_idle()
            yield from self._wait_until_running(tid)
            return
        if tid.state in (TaskState.SLEEPING, TaskState.NEW):
            self._release_task(tid)
            yield from self._resched(current)
            return
        if tid.state is TaskState.TERMINATED:
            raise RTOSError(f"cannot activate terminated task {tid.name!r}")
        # already ready/running/waiting: activation is a no-op

    def task_terminate(self):
        """Terminate the calling task (generator); does not return the CPU
        to the caller."""
        task = yield from self._enter()
        if task.activation_time is not None:
            if not task.is_periodic:
                task.stats.response_times.append(
                    self.sim.now - task.activation_time
                )
            elif task.worked_since_release:
                # final (incomplete) cycle of a periodic task that
                # terminates mid-cycle: record it against the release,
                # like task_endcycle does for completed cycles
                task.stats.response_times.append(
                    self.sim.now - task.release_time
                )
        self.trace.record(self.sim.now, "task", task.name, "terminate")
        self._yield_cpu(task, TaskState.TERMINATED)

    def task_sleep(self):
        """Suspend the calling task until someone ``task_activate``-s it."""
        task = yield from self._enter()
        self.trace.record(self.sim.now, "task", task.name, "sleep")
        self._yield_cpu(task, TaskState.SLEEPING)
        yield from self._wait_until_running(task)

    def task_endcycle(self):
        """End the current execution cycle of the calling task.

        Periodic tasks: record response time / deadline miss, then wait
        for the next release (``release_time + period``). Aperiodic
        tasks: equivalent to going to sleep until re-activated.
        """
        task = yield from self._enter()
        now = self.sim.now
        task.stats.cycles_completed += 1
        if task.is_periodic:
            task.stats.response_times.append(now - task.release_time)
            deadline = task.abs_deadline
            if deadline is not None and now > deadline:
                task.stats.deadline_misses += 1
                self.metrics.deadline_misses += 1
                self.trace.record(now, "task", task.name, "deadline_miss")
            next_release = task.release_time + task.period
            if next_release <= now:
                # overrun: the next instance is already due
                self._set_release(task, next_release)
                yield from self._schedule_point(task)
                return
            self._yield_cpu(task, TaskState.IDLE_PERIOD)
            self.sim.schedule_at(
                next_release, lambda: self._periodic_release(task, next_release)
            )
            yield from self._wait_until_running(task)
        else:
            self._yield_cpu(task, TaskState.SLEEPING)
            yield from self._wait_until_running(task)

    def task_kill(self, tid):
        """Forcibly terminate another task (generator).

        The victim's process unwinds with :class:`TaskKilled` at its next
        RTOS interaction (granularity: its current delay step — consistent
        with the model's preemption granularity). Killing yourself is
        equivalent to ``task_terminate``.
        """
        task = yield from self._enter()
        if tid is task:
            # self-kill: unwind via TaskKilled so execution stops here
            # (the task_body wrapper finalizes the bookkeeping)
            raise TaskKilled(task.name)
        if tid.state is TaskState.TERMINATED:
            return
        tid.killed = True
        self.scheduler.remove(tid)
        for event in self.events:
            if tid in event.queue:
                event.queue.remove(tid)
        self.trace.record(self.sim.now, "task", tid.name, "kill")
        # wake the victim wherever it blocks so it can unwind
        tid.dispatch_evt.fire(self.sim)
        tid.preempt_evt.fire(self.sim)

    def par_start(self):
        """Suspend the calling (parent) task before forking children.

        The parent then performs the SLDL-level ``par`` (zero simulated
        time) and each child gates itself via ``task_activate``. Returns
        the parent's task handle (paper: ``proc par_start(void)``).
        """
        task = yield from self._enter()
        self.trace.record(self.sim.now, "task", task.name, "par_start")
        self._yield_cpu(task, TaskState.PARENT_WAIT)
        return task

    def par_end(self, parent=None):
        """Resume the calling parent task after its ``par`` joined."""
        task = self._current_task()
        if task is None:
            raise RTOSError("par_end outside of a task")
        if parent is not None and parent is not task:
            raise RTOSError("par_end called with a foreign task handle")
        if task.killed:
            raise TaskKilled(task.name)
        self.trace.record(self.sim.now, "task", task.name, "par_end")
        task.state = TaskState.READY
        self.scheduler.on_ready(task, self.sim.now)
        self._resched_from_outside()
        yield from self._wait_until_running(task)

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def event_new(self, name=None):
        """Allocate an RTOS event (paper type ``evt``)."""
        event = RTOSEvent(name)
        self.events.append(event)
        return event

    def event_del(self, event):
        """Deallocate an RTOS event; it must have no waiting tasks and
        no undelivered same-instant notification."""
        if event.queue:
            raise RTOSError(f"event_del on {event.name!r} with waiting tasks")
        if event.pending_time == self.sim.now:
            # a notify issued this timestep has not been consumed yet;
            # deleting the event now would silently lose it
            raise RTOSError(
                f"event_del on {event.name!r} with a pending notification"
            )
        # a pending_time from an earlier timestep is already stale
        # (notifications never persist across timesteps) — clear it
        event.pending_time = None
        event.deleted = True
        if event in self.events:
            self.events.remove(event)

    def event_wait(self, event):
        """Block the calling task until ``event`` is notified (generator)."""
        task = yield from self._enter()
        if event.deleted:
            raise RTOSError(f"event_wait on deleted event {event.name!r}")
        task.worked_since_release = True
        if event.pending_time == self.sim.now:
            # same-timestep rendezvous (see repro.rtos.events)
            event.pending_time = None
            return
        event.queue.append(task)
        self.trace.record(self.sim.now, "task", task.name, "wait", event=event.name)
        self._yield_cpu(task, TaskState.WAITING)
        yield from self._wait_until_running(task)

    def event_notify(self, event):
        """Move all tasks waiting on ``event`` into the ready queue.

        Callable from task context (generator — the caller reaches a
        scheduling point and may be preempted by a woken task) and from
        ISR/bootstrap context (no task is bound to the calling process;
        the running task is preempted per the preemption mode).
        """
        if event.deleted:
            raise RTOSError(f"event_notify on deleted event {event.name!r}")
        event.notify_count += 1
        woken = event.queue
        event.queue = []
        for task in woken:
            self._release_to_ready(task)
        if not woken:
            event.pending_time = self.sim.now
        self.trace.record(
            self.sim.now, "task", self.name, "notify",
            event=event.name, woken=len(woken),
        )
        current = self._current_task()
        yield from self._resched(current)

    # ------------------------------------------------------------------
    # time modeling
    # ------------------------------------------------------------------

    def time_wait(self, nsec):
        """Model task execution time (replacement for SLDL ``waitfor``).

        A wrapper around the kernel's timed wait that gives the RTOS a
        scheduling point whenever time increases, enabling preemption
        modeling (Section 4.3). In ``step`` mode the delay is one
        indivisible step and a potential task switch happens at its end;
        in ``immediate`` mode the delay can be interrupted by a
        preemption and its remainder is consumed after re-dispatch.
        """
        nsec = int(nsec)
        if nsec < 0:
            raise RTOSError(f"negative delay: {nsec}")
        # inlined _enter: time_wait is the hottest RTOS call, and in the
        # common case (caller owns the CPU, not killed) the entry
        # protocol never yields — skip the nested-generator round trip
        task = self._current_task()
        if task is None:
            raise RTOSError("RTOS call from a process that is not a task")
        if task.killed:
            raise TaskKilled(task.name)
        if self._running is not task:
            yield from self._wait_until_running(task)
        if nsec == 0:
            yield from self._schedule_point(task)
            return
        task.worked_since_release = True
        if self.preemption == "step":
            self._waitfor.delay = nsec
            yield self._waitfor
            # inlined _schedule_point fast path: when no ready task
            # preempts the caller, the scheduling point is a pure check
            # and must not cost a generator; fall back for the rare
            # preemption/kill/lost-CPU cases
            if not task.killed and self._running is task:
                candidate = self.scheduler.peek(self.sim.now)
                if candidate is None or not self.scheduler.preempts(
                    candidate, task, self.sim.now
                ):
                    return
            yield from self._schedule_point(task)
            return
        remaining = nsec
        while remaining > 0:
            started = self.sim.now
            task.preempt_wait.timeout = remaining
            fired = yield task.preempt_wait
            remaining -= self.sim.now - started
            if task.killed:
                raise TaskKilled(task.name)
            if fired is TIMEOUT:
                break
            # preempted mid-delay: CPU was already handed over by the
            # preemptor; queue up for re-dispatch, then resume the rest
            yield from self._wait_until_running(task)
        yield from self._schedule_point(task)

    # ------------------------------------------------------------------
    # helpers for task wrappers
    # ------------------------------------------------------------------

    def task_body(self, task, body):
        """Wrap ``body`` (a generator) into a complete task process.

        Adds the Figure-5 frame — ``task_activate`` on entry,
        ``task_terminate`` on exit — and converts :class:`TaskKilled`
        into a clean unwind. The returned generator is what gets spawned
        (directly or inside a ``par``) on the SLDL kernel.
        """

        def _runner():
            try:
                yield from self.task_activate(task)
                yield from body
                yield from self.task_terminate()
            except TaskKilled:
                self._finalize_killed(task)

        return _runner()

    @property
    def running_task(self):
        """The task currently occupying the CPU (None when idle)."""
        return self._running

    def self_task(self):
        """Task bound to the calling process (None in ISR context)."""
        return self._current_task()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _current_task(self):
        process = self.sim._current
        if process is None:
            return None
        return self._by_process.get(process.uid)

    def _enter(self):
        """Entry protocol of blocking RTOS calls (generator).

        Ensures the caller is a bound task and owns the CPU; a task that
        was asynchronously preempted (immediate mode) between calls first
        waits to be re-dispatched.
        """
        task = self._current_task()
        if task is None:
            raise RTOSError("RTOS call from a process that is not a task")
        if task.killed:
            raise TaskKilled(task.name)
        if self._running is not task:
            yield from self._wait_until_running(task)
        return task

    def _release_task(self, task):
        """First (or re-) activation bookkeeping + ready insertion."""
        now = self.sim.now
        if task.activation_time is None:
            task.activation_time = now
            task.stats.activations += 1
            self._set_release(task, now)
        else:
            task.stats.activations += 1
        task.killed = False
        self._release_to_ready(task)
        self.trace.record(now, "task", task.name, "activate")

    def _set_release(self, task, release_time):
        task.release_time = release_time
        task.worked_since_release = False
        if task.is_periodic:
            deadline = task.rel_deadline if task.rel_deadline is not None else task.period
            task.abs_deadline = release_time + deadline
        elif task.rel_deadline is not None:
            task.abs_deadline = release_time + task.rel_deadline

    def _release_to_ready(self, task):
        task.state = TaskState.READY
        self.scheduler.on_ready(task, self.sim.now)

    def _periodic_release(self, task, release_time):
        """Timer callback releasing the next instance of a periodic task."""
        if task.killed or task.state is not TaskState.IDLE_PERIOD:
            return
        self._set_release(task, release_time)
        self._release_to_ready(task)
        self.trace.record(self.sim.now, "task", task.name, "release")
        self._resched_from_outside()

    def _dispatch_if_idle(self):
        """Request a dispatch decision for an idle CPU.

        The decision is deferred to the end of the current simulated
        instant (all delta activity settled) so that a burst of
        same-instant activations — e.g. the children forked by a ``par``
        (Figure 6) — is scheduled by priority, not by the incidental
        order the activations executed in.
        """
        if not self._started or self._running is not None:
            return
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        self.sim.schedule_at(self.sim.now, self._deferred_dispatch)

    def _deferred_dispatch(self):
        self._dispatch_pending = False
        if not self._started or self._running is not None:
            return
        candidate = self.scheduler.peek(self.sim.now)
        if candidate is None:
            return
        self.scheduler.remove(candidate)
        self._dispatch(candidate)

    def _dispatch(self, task):
        task.state = TaskState.RUNNING
        self._running = task
        task.stats.dispatches += 1
        self.metrics.dispatches += 1
        self.scheduler.on_dispatch(task, self.sim.now)
        self.trace.record(self.sim.now, "sched", self.name, "dispatch", task=task.name)
        task.dispatch_evt.fire(self.sim)

    def _yield_cpu(self, task, new_state):
        """The calling/affected task gives up the CPU."""
        now = self.sim.now
        if task.run_start is not None:
            self.trace.segment(task.name, task.run_start, now)
            task.stats.exec_time += now - task.run_start
            self.metrics.busy_time += now - task.run_start
            task.run_start = None
        if new_state is TaskState.READY:
            self._release_to_ready(task)
        else:
            task.state = new_state
        if self._running is task:
            self._running = None
        self._dispatch_if_idle()

    def _wait_until_running(self, task):
        """Block the calling process until ``task`` owns the CPU.

        Accounts context switches and, when configured, consumes the
        modeled switch overhead before the task's execution resumes.
        """
        while True:
            while self._running is not task:
                if task.killed:
                    raise TaskKilled(task.name)
                yield task.dispatch_wait
            if task.killed:
                raise TaskKilled(task.name)
            previous = self._last_occupant
            if previous is not task:
                if previous is not None:
                    self.metrics.context_switches += 1
                    self.trace.record(
                        self.sim.now, "sched", self.name, "switch",
                        frm=previous.name, to=task.name,
                    )
                self._last_occupant = task
                if self.switch_overhead and previous is not None:
                    started = self.sim.now
                    yield WaitFor(self.switch_overhead)
                    self.metrics.overhead_time += self.sim.now - started
                    if self._running is not task:
                        # preempted during the switch itself (immediate
                        # mode): queue up again
                        continue
            break
        task.run_start = self.sim.now

    def _schedule_point(self, task):
        """Scheduling point reached by the running task (generator)."""
        if task.killed:
            raise TaskKilled(task.name)
        if self._running is not task:
            # lost the CPU asynchronously (immediate mode)
            yield from self._wait_until_running(task)
            return
        candidate = self.scheduler.peek(self.sim.now)
        if candidate is None or not self.scheduler.preempts(candidate, task, self.sim.now):
            return
        task.stats.preemptions += 1
        self.metrics.preemptions += 1
        self.trace.record(
            self.sim.now, "sched", self.name, "preempt",
            task=task.name, by=candidate.name,
        )
        self._yield_cpu(task, TaskState.READY)
        yield from self._wait_until_running(task)

    def _resched(self, current):
        """Rescheduling decision after a state change (generator).

        ``current`` is the task bound to the calling process, or None for
        ISR/bootstrap contexts.
        """
        if current is not None and current is self._running:
            yield from self._schedule_point(current)
        else:
            self._resched_from_outside()

    def _resched_from_outside(self):
        """Scheduling decision from ISR/timer/bootstrap context."""
        if self._running is None:
            self._dispatch_if_idle()
            return
        running = self._running
        candidate = self.scheduler.peek(self.sim.now)
        if candidate is None or not self.scheduler.preempts(candidate, running, self.sim.now):
            return
        if self.preemption == "immediate":
            running.stats.preemptions += 1
            self.metrics.preemptions += 1
            self.trace.record(
                self.sim.now, "sched", self.name, "preempt",
                task=running.name, by=candidate.name,
            )
            self._yield_cpu(running, TaskState.READY)
            running.preempt_evt.fire(self.sim)
        # step mode: the running task switches at its next scheduling
        # point (paper: t4 -> t4', Figure 8(b))

    def _finalize_killed(self, task):
        """Clean up a task whose process unwound via TaskKilled."""
        if task.run_start is not None:
            self._yield_cpu(task, TaskState.TERMINATED)
        else:
            task.state = TaskState.TERMINATED
            if self._running is task:
                self._running = None
                self._dispatch_if_idle()
        self.trace.record(self.sim.now, "task", task.name, "killed")

    # -- diagnostics ---------------------------------------------------

    def snapshot(self):
        """State of all tasks, for tests and debugging."""
        return {t.name: t.state.value for t in self.tasks}
