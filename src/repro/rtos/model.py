"""The RTOS model — the paper's core contribution (Section 4).

:class:`RTOSModel` is a channel layered between the application and the
SLDL kernel (paper Figure 2(b)). It exposes the complete interface of
Figure 4 — extended with multi-event waits, timed waits and
``task_fork``/``task_join`` (the full SLDL command set) — and serializes
task execution on top of the concurrent SLDL: at any simulated instant
at most one task of a PE is *running*; all other tasks are blocked on
per-task SLDL dispatch events. Whenever task states change inside an
RTOS call, the scheduler is invoked and the selected task is dispatched
by releasing its dispatch event (Section 4.3).

Internally the model is a facade over four composable OS services, one
per Figure-4 interface group:

* :class:`~repro.rtos.dispatch.Dispatcher` — CPU ownership, the
  pluggable scheduler, preemption modes, context-switch accounting;
* :class:`~repro.rtos.taskmgr.TaskManager` — task management;
* :class:`~repro.rtos.eventmgr.EventManager` — event handling (on the
  shared wait core of :mod:`repro.kernel.waitcore`);
* :class:`~repro.rtos.timemgr.TimeManager` — time modeling.

The facade adds no generator frames: blocking calls return the service's
generator directly, so the call depth (and simulation speed) matches the
former monolithic implementation.

Calling convention
------------------
The model is used from inside SLDL processes. Calls that may block or
reschedule are generators and must be delegated to with ``yield from``::

    def task_b2_main():
        yield from os.task_activate(b2)
        yield from os.time_wait(500)
        yield from os.task_terminate()

``init``, ``start``, ``interrupt_return``, ``task_create``, ``event_new``
and ``event_del`` never block and are plain methods.

Preemption modes
----------------
``preemption="step"`` (the paper's model): an interrupt at t4 can make a
higher-priority task ready, but the running task keeps the CPU until the
end of its current delay step (t4′) — accuracy is bounded by the
granularity of the task delay model, exactly as discussed in Section 4.3.

``preemption="immediate"`` (extension, in the spirit of later
result-oriented-modeling work): the in-flight ``time_wait`` of the
running task is aborted at t4, the remaining delay is resumed after the
task is re-dispatched. Used by the accuracy ablation benches.
"""

from repro.kernel.channel import Channel
from repro.rtos.dispatch import Dispatcher
from repro.rtos.eventmgr import EventManager
from repro.rtos.errors import RTOSError, TaskKilled
from repro.rtos.metrics import RTOSMetrics
from repro.rtos.sched import make_scheduler
from repro.rtos.taskmgr import TaskManager
from repro.rtos.timemgr import TimeManager


class RTOSModel(Channel):
    """Abstract RTOS for one processing element.

    Parameters
    ----------
    sim:
        The :class:`~repro.kernel.simulator.Simulator` this model runs on.
    sched:
        Scheduling policy — anything :func:`repro.rtos.sched.make_scheduler`
        accepts (``"priority"``, ``"rr"``, ``"edf"``, an int constant, a
        :class:`~repro.rtos.sched.base.Scheduler` instance, ...).
    preemption:
        ``"step"`` (paper) or ``"immediate"`` (extension), see module doc.
    switch_overhead:
        Simulated time each context switch costs on the target CPU
        (kernel save/restore + scheduler). The paper's model treats the
        RTOS as free; this extension — the refinement direction later
        TLM work took — lets the architecture model account for the
        kernel overhead the implementation model exhibits. Overhead
        time accrues in ``metrics.overhead_time`` (not in task
        execution times).
    name:
        Label used in traces (one model per PE, e.g. ``"DSP.os"``).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`. When given
        (or attached later via :meth:`observe`), the OS services record
        ready-queue depth, event-wait latency, ``time_wait`` call/delay
        distributions and per-task response-time histograms into it.
        Detached (the default), every instrumentation site costs one
        attribute load and a ``None`` compare.
    """

    def __init__(self, sim, sched="priority", preemption="step", name="rtos",
                 switch_overhead=0, registry=None):
        super().__init__(name)
        if preemption not in ("step", "immediate"):
            raise ValueError(f"unknown preemption mode: {preemption!r}")
        if switch_overhead < 0:
            raise ValueError(f"negative switch overhead: {switch_overhead}")
        self.sim = sim
        self.trace = sim.trace
        self.metrics = RTOSMetrics()
        self._dispatcher = Dispatcher(
            sim, self.trace, self.metrics, name,
            make_scheduler(sched), preemption, int(switch_overhead),
        )
        self._tasks = TaskManager(sim, self.trace, self.metrics, name,
                                  self._dispatcher)
        self._events = EventManager(sim, self.trace, name, self._dispatcher,
                                    self._tasks)
        self._time = TimeManager(sim, self._dispatcher, self._tasks)
        # cross-service wiring (see the services' docstrings)
        self._dispatcher.tasks = self._tasks
        self._tasks.events = self._events
        self.obs = None
        #: armed FaultInjector (attach_faults) / lazy FailureMonitor
        #: (task_watch); both default to detached = zero-cost hooks
        self.faults = None
        self.monitor = None
        #: mixed-criticality controller (mc_configure); unarmed = None
        self.mc = None
        if registry is not None:
            self.observe(registry)

    def observe(self, registry):
        """Attach a metrics registry to all OS services.

        Creates this model's :class:`~repro.obs.instruments.RTOSObs`
        bundle (instrument names prefixed with the model's ``name``) and
        hands it to the dispatcher, task manager, event manager and time
        manager. Returns the bundle. Idempotent per registry.
        """
        from repro.obs.instruments import RTOSObs

        obs = RTOSObs(registry, self.name)
        self.obs = obs
        self._dispatcher.obs = obs
        self._tasks.obs = obs
        self._events.obs = obs
        self._time.obs = obs
        return obs

    def unobserve(self):
        """Detach instrumentation from all OS services."""
        self.obs = None
        self._dispatcher.obs = None
        self._tasks.obs = None
        self._events.obs = None
        self._time.obs = None

    # ------------------------------------------------------------------
    # fault injection / failure monitoring (see repro.faults)
    # ------------------------------------------------------------------

    def attach_faults(self, injector):
        """Arm a :class:`~repro.faults.inject.FaultInjector`'s RTOS-side
        hooks (``time_wait`` perturbation, lost/duplicated notifies).
        Usually called through ``injector.arm(model=...)``. Returns this
        model's metrics so injections can be counted against it."""
        self.faults = injector
        self._time.faults = injector
        self._events.faults = injector
        return self.metrics

    def detach_faults(self):
        """Disarm fault injection; hooks return to zero-cost guards."""
        self.faults = None
        self._time.faults = None
        self._events.faults = None

    def task_watch(self, tid, policy="log", handler=None, budget=None):
        """Watch ``tid`` with a deadline-miss/overrun reaction policy.

        Lazily creates this model's
        :class:`~repro.faults.detect.FailureMonitor` and registers the
        task: every release arms a deadline watchdog timer (one tick
        past the absolute deadline, so on-time completion never flags);
        with ``budget=`` an execution-budget watchdog additionally fires
        when the task accumulates more than ``budget`` execution time in
        one cycle. ``policy`` is ``"log"`` (count + trace), ``"notify"``
        (call ``handler(task, kind, now)``), ``"kill"`` (terminate the
        task) or ``"skip-cycle"`` (abandon blown periodic releases).
        Returns the monitor.
        """
        if self.monitor is None:
            from repro.faults.detect import FailureMonitor

            self.monitor = FailureMonitor(self)
            self._tasks.monitor = self.monitor
            self._dispatcher.monitor = self.monitor
        self.monitor.watch(tid, policy=policy, handler=handler, budget=budget)
        return self.monitor

    def task_unwatch(self, tid):
        """Stop watching ``tid`` (its timers are disarmed)."""
        if self.monitor is not None:
            self.monitor.unwatch(tid)

    def task_condemn(self, tid):
        """Forcibly terminate ``tid`` from ISR/timer-callback context.

        The non-generator core of :meth:`task_kill` — no scheduling
        point for a calling task, so it is safe in contexts that cannot
        ``yield`` (watchdog policies, fault injection, ISRs). The victim
        unwinds with :class:`TaskKilled` at its next RTOS interaction.
        """
        self._tasks.condemn(tid)

    # ------------------------------------------------------------------
    # mixed-criticality modes (see repro.rtos.mc)
    # ------------------------------------------------------------------

    def mc_configure(self, levels=None, degrade="drop", skip_factor=2,
                     elastic_factor=2, recovery_window=None,
                     component_budgets=None, watch_policy="log"):
        """Arm the mixed-criticality mode controller of this model.

        Creates a :class:`~repro.rtos.mc.MCController` over the ordered
        criticality lattice ``levels`` (default ``("LO", "HI")``). Tasks
        enroll via ``task_create(criticality=..., wcet=[lo, hi])`` or
        :meth:`MCController.register`; an enrolled above-base task
        exceeding its current-mode budget raises the system mode,
        re-budgets the HI tasks, reconfigures hierarchical server
        budgets per ``component_budgets`` and degrades below-mode tasks
        by the ``degrade`` policy (``"drop"``, ``"skip"`` or
        ``"elastic"``). ``recovery_window`` arms hysteresis recovery:
        that much overrun-free time steps the mode back down one level.
        Returns the controller. Unarmed models pay only ``is None``
        guards, so golden traces stay byte-identical.
        """
        if self.mc is not None:
            raise RTOSError("mixed-criticality modes already configured")
        from repro.rtos.mc import DEFAULT_LEVELS, MCController

        self.mc = MCController(
            self, levels=DEFAULT_LEVELS if levels is None else levels,
            degrade=degrade, skip_factor=skip_factor,
            elastic_factor=elastic_factor, recovery_window=recovery_window,
            component_budgets=component_budgets, watch_policy=watch_policy,
        )
        self._tasks.mc = self.mc
        if self.monitor is not None:
            self.monitor.mc = self.mc
        return self.mc

    def mc_mode(self):
        """Current criticality mode name (``None`` when MC is unarmed)."""
        return self.mc.mode if self.mc is not None else None

    def on_mode_change(self, callback):
        """Register ``callback(old, new, now, trigger_task)`` for mode
        switches; lazily arms MC with defaults when not yet configured.
        Returns the callback (usable as a decorator).
        """
        if self.mc is None:
            self.mc_configure()
        return self.mc.on_mode_change(callback)

    # ------------------------------------------------------------------
    # span sources (see repro.obs.spans)
    # ------------------------------------------------------------------

    def trace_spans(self, enabled=True):
        """Arm (or disarm) the span sources in the OS services.

        Armed, the services emit the records precise span
        reconstruction needs: ``task_endcycle`` records the cycle
        completion, overrun releases are recorded, ``task_create``
        carries the static task parameters (priority/period/wcet), and
        ``event_notify`` names its source (task, ``isr:<process>`` or
        ``kernel``). Disarmed (the default) no extra record or data key
        is emitted, so golden traces stay byte-identical — the same
        zero-cost ``is None`` guard as every other instrumentation
        seam. :class:`~repro.obs.spans.SpanBuilder` works on unarmed
        streams too, with inferred completions and wake sources.
        """
        armed = True if enabled else None
        self._tasks.spans = armed
        self._events.spans = armed
        return self

    # ------------------------------------------------------------------
    # operating system management
    # ------------------------------------------------------------------

    def init(self):
        """Initialize (or reset) the kernel data structures."""
        self._tasks.reset()
        self._events.reset()
        self._dispatcher.reset()
        self.metrics.reset()
        if self.monitor is not None:
            self.monitor.reset()
        if self.mc is not None:
            self.mc.reset()

    def start(self, sched_alg=None):
        """Start multi-task scheduling, optionally selecting the policy.

        Until ``start`` is called, activated tasks queue up but none is
        dispatched — mirroring an RTOS that boots with the scheduler
        locked.
        """
        self._dispatcher.start(sched_alg)

    def interrupt_return(self):
        """Notify the kernel that an interrupt service routine finished.

        Performs the post-interrupt scheduling decision: if the ISR made a
        higher-urgency task ready, the running task is preempted
        (immediately or at its next scheduling point, per the preemption
        mode); an idle CPU dispatches directly.
        """
        self.metrics.interrupts += 1
        self.trace.record(self.sim.now, "irq", self.name, "return")
        self._dispatcher.resched_from_outside()

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------

    def task_create(self, name, tasktype, period, wcet, priority=None,
                    rel_deadline=None, criticality=None):
        """Allocate a task control block; returns the task handle.

        ``tasktype`` is :data:`~repro.rtos.task.PERIODIC` or
        :data:`~repro.rtos.task.APERIODIC`. ``priority`` is an explicit
        fixed priority (lower = more urgent); the paper assigns priorities
        during refinement, so it is optional here and defaults to
        :data:`~repro.rtos.task.DEFAULT_PRIORITY`. ``rel_deadline``
        overrides the implicit deadline (= period) used by EDF.

        Mixed-criticality extension: ``criticality`` names the task's
        level in the MC lattice and ``wcet`` may be a *sequence* of
        per-level budgets (``wcet=[lo, hi]``, non-decreasing); either
        enrolls the task with the model's
        :class:`~repro.rtos.mc.MCController` (armed with defaults when
        :meth:`mc_configure` was not called first). The scalar ``wcet``
        of the TCB is then the base-level budget.
        """
        wcet_levels = None
        if isinstance(wcet, (list, tuple)):
            wcet_levels = tuple(int(w) for w in wcet)
            if not wcet_levels:
                raise RTOSError(f"task {name!r}: empty wcet vector")
            wcet = wcet_levels[0]
        task = self._tasks.create(name, tasktype, period, wcet, priority,
                                  rel_deadline)
        if criticality is not None or wcet_levels is not None:
            if self.mc is None:
                self.mc_configure()
            self.mc.register(task, criticality, wcet_levels)
        return task

    def task_activate(self, tid):
        """Activate a task (generator).

        Two uses, as in the paper:

        * *self-activation* — the first statement of a task body
          (Figure 5): binds the calling SLDL process to the TCB, releases
          the task and **blocks until the scheduler dispatches it**;
        * *activating another task* — moves a ``SLEEPING``/``NEW`` task
          into the ready queue; the caller continues (it may be preempted
          by the activated task at this scheduling point).
        """
        return self._tasks.activate(tid)

    def task_terminate(self):
        """Terminate the calling task (generator); does not return the CPU
        to the caller."""
        return self._tasks.terminate()

    def task_sleep(self):
        """Suspend the calling task until someone ``task_activate``-s it."""
        return self._tasks.sleep()

    def task_endcycle(self):
        """End the current execution cycle of the calling task.

        Periodic tasks: record response time / deadline miss, then wait
        for the next release (``release_time + period``). Aperiodic
        tasks: equivalent to going to sleep until re-activated.
        """
        return self._tasks.endcycle()

    def task_kill(self, tid):
        """Forcibly terminate another task (generator).

        The victim's process unwinds with :class:`TaskKilled` at its next
        RTOS interaction (granularity: its current delay step — consistent
        with the model's preemption granularity). Killing yourself is
        equivalent to ``task_terminate``.
        """
        return self._tasks.kill(tid)

    def task_fork(self, tid):
        """Release a created child task from the calling task (generator).

        Beyond-paper extension (full SLDL command set): the dynamic
        counterpart of an SLDL ``Fork``. The child's SLDL process is
        spawned by the caller; ``task_fork`` makes the child's TCB ready
        so the *scheduler* decides when it runs. Returns ``tid`` as the
        join handle.
        """
        return self._tasks.fork(tid)

    def task_join(self, targets):
        """Block the calling task until the target task(s) terminate
        (generator). Beyond-paper counterpart of an SLDL ``Join``;
        accepts one task handle or an iterable of handles.
        """
        return self._tasks.join(targets)

    def par_start(self):
        """Suspend the calling (parent) task before forking children.

        The parent then performs the SLDL-level ``par`` (zero simulated
        time) and each child gates itself via ``task_activate``. Returns
        the parent's task handle (paper: ``proc par_start(void)``).
        """
        return self._tasks.par_start()

    def par_end(self, parent=None):
        """Resume the calling parent task after its ``par`` joined."""
        return self._tasks.par_end(parent)

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def event_new(self, name=None):
        """Allocate an RTOS event (paper type ``evt``)."""
        return self._events.new(name)

    def event_del(self, event):
        """Deallocate an RTOS event; it must have no waiting tasks and
        no undelivered same-instant notification."""
        self._events.delete(event)

    def event_wait(self, event, timeout=None):
        """Block the calling task until ``event`` is notified (generator).

        Returns the event. With ``timeout=`` (beyond-paper extension) the
        wait additionally expires after that much simulated time and
        returns the kernel's :data:`~repro.kernel.commands.TIMEOUT`
        sentinel; ``timeout=0`` polls.
        """
        return self._events.wait(event, timeout)

    def event_wait_any(self, events, timeout=None):
        """Block until any event of ``events`` is notified (generator).

        Beyond-paper extension mirroring the kernel's multi-event
        ``Wait(e1, e2, ...)``. Returns the event that woke the task, or
        :data:`~repro.kernel.commands.TIMEOUT`.
        """
        return self._events.wait_any(events, timeout)

    def event_notify(self, event):
        """Move all tasks waiting on ``event`` into the ready queue.

        Callable from task context (generator — the caller reaches a
        scheduling point and may be preempted by a woken task) and from
        ISR/bootstrap context (no task is bound to the calling process;
        the running task is preempted per the preemption mode).
        """
        return self._events.notify(event)

    # ------------------------------------------------------------------
    # time modeling
    # ------------------------------------------------------------------

    def time_wait(self, nsec):
        """Model task execution time (replacement for SLDL ``waitfor``).

        A wrapper around the kernel's timed wait that gives the RTOS a
        scheduling point whenever time increases, enabling preemption
        modeling (Section 4.3). In ``step`` mode the delay is one
        indivisible step and a potential task switch happens at its end;
        in ``immediate`` mode the delay can be interrupted by a
        preemption and its remainder is consumed after re-dispatch.
        """
        return self._time.time_wait(nsec)

    # ------------------------------------------------------------------
    # helpers for task wrappers
    # ------------------------------------------------------------------

    def task_body(self, task, body):
        """Wrap ``body`` (a generator) into a complete task process.

        Adds the Figure-5 frame — ``task_activate`` on entry,
        ``task_terminate`` on exit — and converts :class:`TaskKilled`
        into a clean unwind. The returned generator is what gets spawned
        (directly or inside a ``par``) on the SLDL kernel.
        """

        def _runner():
            try:
                yield from self._tasks.activate(task)
                yield from body
                yield from self._tasks.terminate()
            except TaskKilled:
                self._tasks.finalize_killed(task)

        return _runner()

    @property
    def running_task(self):
        """The task currently occupying the CPU (None when idle)."""
        return self._dispatcher.running

    def self_task(self):
        """Task bound to the calling process (None in ISR context)."""
        return self._tasks.current_task()

    # ------------------------------------------------------------------
    # state exposed for tests, benches and refinement tooling
    # ------------------------------------------------------------------

    @property
    def tasks(self):
        """All task control blocks created on this model."""
        return self._tasks.tasks

    @property
    def events(self):
        """All live RTOS events allocated on this model."""
        return self._events.events

    @property
    def scheduler(self):
        """The active scheduling policy (settable while stopped)."""
        return self._dispatcher.scheduler

    @scheduler.setter
    def scheduler(self, scheduler):
        scheduler = make_scheduler(scheduler)
        self._dispatcher.scheduler = scheduler
        scheduler.bind(self._dispatcher)

    @property
    def preemption(self):
        """Preemption mode, ``"step"`` or ``"immediate"``."""
        return self._dispatcher.preemption

    @preemption.setter
    def preemption(self, mode):
        if mode not in ("step", "immediate"):
            raise ValueError(f"unknown preemption mode: {mode!r}")
        self._dispatcher.preemption = mode

    @property
    def switch_overhead(self):
        """Modeled context-switch cost (simulated time units)."""
        return self._dispatcher.switch_overhead

    @switch_overhead.setter
    def switch_overhead(self, overhead):
        if overhead < 0:
            raise ValueError(f"negative switch overhead: {overhead}")
        self._dispatcher.switch_overhead = int(overhead)

    # -- diagnostics ---------------------------------------------------

    def snapshot(self):
        """State of all tasks, for tests and debugging."""
        return {t.name: t.state.value for t in self._tasks.tasks}
