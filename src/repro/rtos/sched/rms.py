"""Rate-monotonic scheduling (RMS)."""

from repro.rtos.sched.base import Scheduler


class RMS(Scheduler):
    """Preemptive fixed-priority scheduling with rate-monotonic priorities.

    The priority of a periodic task is its period: shorter period = higher
    priority (the classic optimal static assignment for implicit-deadline
    periodic tasks). Aperiodic tasks are scheduled behind all periodic
    ones, by their declared priority.
    """

    __slots__ = ()

    name = "rms"

    def key(self, task, now):
        if task.is_periodic:
            return (0, task.period)
        return (1, task.priority)

    def preempts(self, candidate, running, now):
        return self.key(candidate, now) < self.key(running, now)
