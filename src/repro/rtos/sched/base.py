"""Scheduler interface of the RTOS model.

A scheduler owns the ready queue and two policy decisions:

* :meth:`Scheduler.peek` — which ready task should run next;
* :meth:`Scheduler.preempts` — whether a ready candidate should take the
  CPU from the currently running task at a scheduling point.

The RTOS model invokes the scheduler whenever task states change inside an
RTOS call (paper Section 4.3); the scheduler never blocks and never touches
SLDL events — dispatching is the model's job.
"""

import itertools

_ready_seq = itertools.count()


class Scheduler:
    """Base class; concrete policies override the key methods.

    :meth:`peek` memoizes its selection between ready-queue mutations:
    every concrete policy's :meth:`key` is a function of task state alone
    (priority, period, deadline, arrival order) — never of ``now`` — and
    key-relevant task state only changes on (re-)insertion, so the best
    ready task cannot change while the queue is untouched. The RTOS model
    peeks at every scheduling point (each ``time_wait``), making this the
    dominant scheduler cost in long runs.
    """

    __slots__ = ("_ready", "_peek_cache", "_peek_valid")

    #: short identifier used by ``RTOSModel.start(sched_alg)`` lookups
    name = "base"

    def __init__(self):
        self._ready = []
        self._peek_cache = None
        self._peek_valid = False

    # -- ready-queue maintenance -------------------------------------------

    def on_ready(self, task, now):
        """Insert ``task`` into the ready queue."""
        task.ready_seq = next(_ready_seq)
        self._ready.append(task)
        self._peek_valid = False

    def remove(self, task):
        """Remove ``task`` from the ready queue if present."""
        try:
            self._ready.remove(task)
        except ValueError:
            pass
        self._peek_valid = False

    # -- policy -------------------------------------------------------------

    def key(self, task, now):
        """Sort key; the task with the smallest key runs first.

        Concrete schedulers override this (and, for time slicing,
        :meth:`preempts`). Ties are broken FIFO by ready insertion order.
        """
        raise NotImplementedError

    def peek(self, now):
        """Best ready task, or None. Does not remove it."""
        if self._peek_valid:
            return self._peek_cache
        ready = self._ready
        if not ready:
            best = None
        elif len(ready) == 1:
            best = ready[0]
        else:
            key = self.key
            best = min(ready, key=lambda t: (key(t, now), t.ready_seq))
        self._peek_cache = best
        self._peek_valid = True
        return best

    def tied_best(self, now):
        """All ready tasks whose key ties the best one, FIFO order.

        The first element always equals :meth:`peek`'s choice (same
        ``(key, ready_seq)`` minimum), so an installed schedule oracle
        picking index 0 reproduces the default dispatch exactly. The
        dispatcher only consults this when an oracle is armed; the hot
        path stays on the memoized :meth:`peek`.
        """
        ready = self._ready
        if not ready:
            return []
        if len(ready) == 1:
            return [ready[0]]
        key = self.key
        keyed = sorted(
            ((key(t, now), t.ready_seq, t) for t in ready),
            key=lambda item: item[:2],
        )
        best_key = keyed[0][0]
        return [t for k, _, t in keyed if k == best_key]

    def preempts(self, candidate, running, now):
        """Should ``candidate`` (ready) preempt ``running`` at a
        scheduling point? Default: strict key comparison (preemptive)."""
        return self.key(candidate, now) < self.key(running, now)

    def expired(self, task, now):
        """Must ``task`` stop running even with nothing else ready?

        Flat policies never revoke an idle CPU; the hierarchical
        scheduler returns True when the task's server is out of budget
        (the CPU then idles until the next replenishment).
        """
        return False

    def on_dispatch(self, task, now):
        """Hook invoked when ``task`` is dispatched (time slicing)."""
        task.slice_start = now

    def on_yield(self, task, now):
        """Hook invoked when ``task`` gives up the CPU.

        Flat policies need no bookkeeping here; the hierarchical
        scheduler settles server-budget consumption.
        """

    def bind(self, dispatcher):
        """Attach the owning dispatcher.

        Called when the scheduler is installed on a
        :class:`~repro.rtos.dispatch.Dispatcher`. Flat policies ignore
        it; the hierarchical scheduler uses the dispatcher's simulator
        for budget timers and its preemption services for enforcement.
        """

    # -- introspection -------------------------------------------------------

    @property
    def ready_tasks(self):
        return list(self._ready)

    def __len__(self):
        return len(self._ready)

    def __repr__(self):
        return f"{type(self).__name__}()"
