"""Hierarchical scheduling: budget/period resource servers per PE.

Beyond-paper extension in the style of compositional scheduling
frameworks (periodic resource model / BDR): a PE's tasks are grouped
into :class:`Component`\\ s — resource servers with a budget ``Θ`` per
period ``Π`` and their own *local* scheduling policy (any of the six
flat policies, typically EDF or fixed-priority) — and a *top-level*
server scheduler arbitrates between components. The analytic
counterpart lives in :mod:`repro.analysis.schedulability` (demand-bound
vs supply-bound functions); the cross-validation harness
(:mod:`repro.analysis.crossval`) runs the same system spec through both.

The :class:`HierarchicalScheduler` implements the plain
:class:`~repro.rtos.sched.base.Scheduler` interface, so it plugs into
the :class:`~repro.rtos.dispatch.Dispatcher` (and therefore the
unchanged Figure-4 facade) like any flat policy. Budget bookkeeping
uses two kernel timers per component:

* an **exhaustion timer**, armed when one of the component's tasks is
  dispatched, firing when the remaining budget of the current server
  window depletes — the component is then *throttled* until its next
  replenishment;
* a **replenishment timer**, armed while a throttled component still
  has ready tasks, firing at the next window boundary
  (``(k+1)·Π``) to re-run the scheduling decision.

Server windows are aligned to absolute time (window ``k`` spans
``[k·Π, (k+1)·Π)``), matching the analysis' periodic-resource model.

Enforcement granularity follows the PE's preemption mode, exactly like
task preemption (paper Section 4.3): in ``immediate`` mode a running
task is forced off the CPU the instant its server's budget depletes, so
per-window consumption never exceeds ``Θ``; in ``step`` mode the switch
happens at the task's next scheduling point, so consumption can overrun
by up to one delay step — the same accuracy bound the paper derives for
preemption. The cross-validation harness therefore runs in
``immediate`` mode.

Tasks never assigned to a component land in an implicit *background*
component: unbounded budget, lowest top-level urgency — existing
single-level code (drivers, helper tasks) composes unchanged.
"""

from repro.rtos.sched.base import Scheduler
from repro.rtos.sched import make_scheduler as _make_local

__all__ = ["Component", "ComponentStats", "HierarchicalScheduler"]

_INF = float("inf")


class ComponentStats:
    """Per-component budget/supply accounting."""

    __slots__ = (
        "window_consumption",
        "throttles",
        "replenishments",
        "dispatches",
    )

    def __init__(self):
        #: window index -> execution time consumed by the component's
        #: tasks inside that server window (raw, including any step-mode
        #: overrun past the budget)
        self.window_consumption = {}
        #: times the component was suspended on budget depletion
        self.throttles = 0
        #: replenishment-timer firings that re-ran scheduling
        self.replenishments = 0
        #: task dispatches charged to this component
        self.dispatches = 0

    @property
    def total_consumed(self):
        return sum(self.window_consumption.values())

    @property
    def max_window_consumption(self):
        if not self.window_consumption:
            return 0
        return max(self.window_consumption.values())


class Component:
    """A budget/period resource server holding a taskset.

    Parameters
    ----------
    name:
        Label used in traces and metrics.
    budget:
        CPU time ``Θ`` the component may consume per server window.
        ``None`` makes the component *unbounded* (a best-effort
        background server that is never throttled).
    period:
        Server window length ``Π``. Required for bounded components.
    policy:
        Local scheduling policy for the tasks inside the component —
        anything :func:`repro.rtos.sched.make_scheduler` accepts.
    priority:
        Top-level fixed priority of the server (lower = more urgent)
        under a ``"priority"`` top-level scheduler; ignored under
        ``"edf"`` (servers then compete by window deadline).
    """

    __slots__ = (
        "name",
        "budget",
        "period",
        "priority",
        "policy",
        "local",
        "tasks",
        "index",
        "stats",
        "_run_task",
        "_run_start",
        "_exhaust_timer",
        "_replenish_timer",
        "_replenish_at",
    )

    def __init__(self, name, budget=None, period=None, policy="edf",
                 priority=0):
        if budget is not None:
            budget = int(budget)
            if period is None:
                raise ValueError(
                    f"component {name!r}: a bounded budget needs a period"
                )
            period = int(period)
            if budget <= 0 or period <= 0:
                raise ValueError(
                    f"component {name!r}: budget and period must be positive"
                )
            if budget > period:
                raise ValueError(
                    f"component {name!r}: budget {budget} exceeds period {period}"
                )
        self.name = name
        self.budget = budget
        self.period = int(period) if period is not None else None
        self.priority = priority
        self.policy = policy
        #: local ready queue + policy (private scheduler instance)
        self.local = _make_local(policy)
        self.tasks = []
        #: registration order on the PE (top-level tie break)
        self.index = 0
        self.stats = ComponentStats()
        #: task of this component currently holding the CPU, and since when
        self._run_task = None
        self._run_start = None
        self._exhaust_timer = None
        self._replenish_timer = None
        self._replenish_at = None

    # -- budget bookkeeping (all times are integers) -----------------------

    @property
    def bounded(self):
        return self.budget is not None

    def window(self, now):
        """Index of the server window containing ``now``."""
        return now // self.period

    def window_deadline(self, now):
        """End of the current server window (EDF top-level key)."""
        if self.period is None:
            return _INF
        return (self.window(now) + 1) * self.period

    def _charge(self, start, end):
        """Account executed time, split across server windows."""
        if not self.bounded or end <= start:
            return
        consumption = self.stats.window_consumption
        period = self.period
        t = start
        while t < end:
            w = t // period
            seg_end = min(end, (w + 1) * period)
            consumption[w] = consumption.get(w, 0) + (seg_end - t)
            t = seg_end

    def _settle(self, now):
        """Charge the in-flight run up to ``now`` (idempotent)."""
        if self._run_start is not None and now > self._run_start:
            self._charge(self._run_start, now)
            self._run_start = now

    def remaining(self, now):
        """Budget left in the current server window (inf if unbounded)."""
        if not self.bounded:
            return _INF
        self._settle(now)
        used = self.stats.window_consumption.get(self.window(now), 0)
        left = self.budget - used
        return left if left > 0 else 0

    def __repr__(self):
        if self.bounded:
            return (
                f"Component({self.name!r}, {self.budget}/{self.period}, "
                f"policy={self.policy!r})"
            )
        return f"Component({self.name!r}, unbounded, policy={self.policy!r})"


class HierarchicalScheduler(Scheduler):
    """Two-level server scheduler (see module doc).

    Parameters
    ----------
    components:
        Iterable of :class:`Component`. Tasks are routed to components
        via :meth:`assign` (the platform layer's
        ``ProcessingElement.add_task(component=...)`` does this).
    top:
        Top-level policy arbitrating between components:
        ``"priority"`` (fixed server priorities) or ``"edf"``
        (earliest server-window deadline first).
    """

    __slots__ = ("components", "top", "background", "_by_task", "_dispatcher",
                 "_sim")

    name = "hier"

    def __init__(self, components=(), top="priority"):
        super().__init__()
        if top not in ("priority", "edf"):
            raise ValueError(f"unknown top-level policy: {top!r}")
        self.top = top
        self.components = []
        #: implicit best-effort server for unassigned tasks
        self.background = Component(
            "background", None, None, policy="priority", priority=_INF
        )
        self.background.index = _INF
        #: task uid -> component
        self._by_task = {}
        self._dispatcher = None
        self._sim = None
        for comp in components:
            self.add_component(comp)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_component(self, comp):
        """Register ``comp`` with this scheduler; returns it."""
        if any(c.name == comp.name for c in self.components):
            raise ValueError(f"duplicate component name {comp.name!r}")
        comp.index = len(self.components)
        self.components.append(comp)
        for task in comp.tasks:
            self._by_task[task.uid] = comp
        return comp

    def assign(self, task, comp):
        """Route ``task`` to ``comp``'s local scheduler."""
        if isinstance(comp, str):
            comp = self.component(comp)
        if comp is not self.background and comp not in self.components:
            self.add_component(comp)
        self._by_task[task.uid] = comp
        if task not in comp.tasks:
            comp.tasks.append(task)
        return comp

    def component(self, name):
        """Look up a registered component by name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        if name == self.background.name:
            return self.background
        raise KeyError(f"no component named {name!r}")

    def component_of(self, task):
        """The component ``task`` is served by (background if unassigned)."""
        return self._by_task.get(task.uid, self.background)

    def bind(self, dispatcher):
        """Hook the dispatcher (budget timers + forced preemption)."""
        self._dispatcher = dispatcher
        self._sim = dispatcher.sim

    # ------------------------------------------------------------------
    # Scheduler interface (consumed by the Dispatcher)
    # ------------------------------------------------------------------

    def on_ready(self, task, now):
        comp = self.component_of(task)
        comp.local.on_ready(task, now)
        if comp.bounded and comp.remaining(now) <= 0:
            # budget already gone this window: make sure the scheduling
            # decision re-runs at the next replenishment
            self._ensure_replenish(comp, now)

    def remove(self, task):
        self.component_of(task).local.remove(task)

    def peek(self, now):
        comp = self._peek_component(now)
        if comp is None:
            return None
        return comp.local.peek(now)

    def _peek_component(self, now):
        best = None
        best_key = None
        for comp in self.components:
            if comp.local.peek(now) is None:
                continue
            if comp.bounded and comp.remaining(now) <= 0:
                self._ensure_replenish(comp, now)
                continue
            key = self._top_key(comp, now)
            if best_key is None or key < best_key:
                best = comp
                best_key = key
        if self.background.local.peek(now) is not None:
            key = self._top_key(self.background, now)
            if best_key is None or key < best_key:
                best = self.background
        return best

    def _top_key(self, comp, now):
        if self.top == "edf":
            return (comp.window_deadline(now), comp.index)
        return (comp.priority, comp.index)

    def tied_best(self, now):
        # server arbitration is total-ordered by (key, comp.index), so
        # there is never a cross-component tie to expose; within the
        # winning component, local ties are real decision points
        comp = self._peek_component(now)
        if comp is None:
            return []
        return comp.local.tied_best(now)

    def expired(self, task, now):
        comp = self.component_of(task)
        if comp.bounded and comp.remaining(now) <= 0:
            self._ensure_replenish(comp, now)
            return True
        return False

    def preempts(self, candidate, running, now):
        comp_c = self.component_of(candidate)
        comp_r = self.component_of(running)
        if comp_r.bounded and comp_r.remaining(now) <= 0:
            # the running task's server is out of budget: any eligible
            # candidate takes the CPU at this scheduling point
            return True
        if comp_c is comp_r:
            return comp_c.local.preempts(candidate, running, now)
        return self._top_key(comp_c, now) < self._top_key(comp_r, now)

    def on_dispatch(self, task, now):
        comp = self.component_of(task)
        comp.local.on_dispatch(task, now)
        comp.stats.dispatches += 1
        comp._run_task = task
        comp._run_start = now
        if comp.bounded and self._sim is not None:
            self._cancel(comp, "_exhaust_timer")
            left = comp.remaining(now)
            if left < _INF:
                comp._exhaust_timer = self._sim.schedule_after(
                    left, lambda: self._exhausted(comp)
                )

    def on_yield(self, task, now):
        comp = self.component_of(task)
        if comp._run_task is not task:
            return
        comp._settle(now)
        comp._run_task = None
        comp._run_start = None
        self._cancel(comp, "_exhaust_timer")
        self._observe_budget(comp, now)

    # ------------------------------------------------------------------
    # budget timers
    # ------------------------------------------------------------------

    def _cancel(self, comp, slot):
        timer = getattr(comp, slot)
        if timer is not None:
            setattr(comp, slot, None)
            if self._sim is not None:
                self._sim.cancel_scheduled(timer)

    def _exhausted(self, comp):
        """Exhaustion timer callback: throttle or re-arm."""
        comp._exhaust_timer = None
        task = comp._run_task
        if task is None:
            return  # stale: the task yielded at this same instant
        now = self._sim.now
        left = comp.remaining(now)
        if left > 0:
            # a window boundary replenished the budget mid-run
            comp._exhaust_timer = self._sim.schedule_after(
                left, lambda: self._exhausted(comp)
            )
            return
        comp.stats.throttles += 1
        dispatcher = self._dispatcher
        dispatcher.trace.record(
            now, "sched", dispatcher.name, "throttle",
            component=comp.name, task=task.name,
        )
        self._observe_throttle(comp)
        self._ensure_replenish(comp, now)
        if dispatcher.running is task and dispatcher.preemption == "immediate":
            # exact enforcement: force the task off the CPU now; its
            # remaining delay resumes after the next dispatch
            dispatcher.preempt_running(by=f"budget:{comp.name}")
        else:
            # step mode: the switch happens at the task's next
            # scheduling point (bounded overrun, like t4 -> t4')
            dispatcher.resched_from_outside()

    def reconfigure_budget(self, comp, budget):
        """Re-set ``comp``'s per-window budget mid-run (MC mode switches).

        Settles the in-flight charge, swaps the budget and re-arms the
        exhaustion timer against the remaining allowance of the current
        window. Shrinking below what the window already consumed
        throttles the component at this scheduling point (per the PE's
        preemption mode), exactly as if the old budget had just
        depleted. ``budget=None`` makes the component unbounded.
        """
        if isinstance(comp, str):
            comp = self.component(comp)
        now = self._sim.now if self._sim is not None else 0
        comp._settle(now)
        self._cancel(comp, "_exhaust_timer")
        if budget is None:
            comp.budget = None
            self._cancel(comp, "_replenish_timer")
            comp._replenish_at = None
            if self._dispatcher is not None:
                self._dispatcher.resched_from_outside()
            return
        budget = int(budget)
        if budget <= 0 or comp.period is None or budget > comp.period:
            raise ValueError(
                f"component {comp.name!r}: budget {budget!r} must be in "
                f"1..period ({comp.period})"
            )
        comp.budget = budget
        if comp._run_task is not None:
            left = comp.remaining(now)
            if left <= 0:
                self._exhausted(comp)
            else:
                comp._exhaust_timer = self._sim.schedule_after(
                    left, lambda: self._exhausted(comp)
                )
        elif self._dispatcher is not None:
            # a grown budget can un-throttle the component right away
            self._dispatcher.resched_from_outside()

    def _ensure_replenish(self, comp, now):
        if self._sim is None or not comp.bounded:
            return
        target = (comp.window(now) + 1) * comp.period
        if comp._replenish_at == target and comp._replenish_timer is not None:
            return
        self._cancel(comp, "_replenish_timer")
        comp._replenish_at = target
        comp._replenish_timer = self._sim.schedule_at(
            target, lambda: self._replenished(comp)
        )

    def _replenished(self, comp):
        comp._replenish_timer = None
        comp._replenish_at = None
        comp.stats.replenishments += 1
        dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.resched_from_outside()

    # ------------------------------------------------------------------
    # observability (guards mirror the OS services' obs pattern)
    # ------------------------------------------------------------------

    def _observe_budget(self, comp, now):
        dispatcher = self._dispatcher
        obs = dispatcher.obs if dispatcher is not None else None
        if obs is None or not comp.bounded:
            return
        used = comp.stats.window_consumption.get(comp.window(now), 0)
        obs.component_budget(comp.name).set(used)

    def _observe_throttle(self, comp):
        obs = self._dispatcher.obs
        if obs is not None:
            obs.component_throttles(comp.name).inc()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def ready_tasks(self):
        tasks = []
        for comp in self.components:
            tasks.extend(comp.local.ready_tasks)
        tasks.extend(self.background.local.ready_tasks)
        return tasks

    def __len__(self):
        return sum(len(c.local) for c in self.components) + len(
            self.background.local
        )

    def __repr__(self):
        comps = ", ".join(c.name for c in self.components)
        return f"HierarchicalScheduler(top={self.top!r}, components=[{comps}])"
