"""Scheduling policies for the RTOS model.

The paper's ``start(int sched_alg)`` selects the scheduling algorithm; we
accept an integer constant, a policy name string, a :class:`Scheduler`
subclass or a ready-made instance — see :func:`make_scheduler`.
"""

from repro.rtos.sched.base import Scheduler
from repro.rtos.sched.edf import EDF
from repro.rtos.sched.fifo import FIFO
from repro.rtos.sched.priority import FixedPriority
from repro.rtos.sched.rms import RMS
from repro.rtos.sched.round_robin import RoundRobin

#: integer constants in the spirit of the paper's ``start(int sched_alg)``
SCHED_PRIORITY = 0
SCHED_PRIORITY_NP = 1
SCHED_RR = 2
SCHED_FIFO = 3
SCHED_EDF = 4
SCHED_RMS = 5

_BY_INT = {
    SCHED_PRIORITY: lambda: FixedPriority(preemptive=True),
    SCHED_PRIORITY_NP: lambda: FixedPriority(preemptive=False),
    SCHED_RR: RoundRobin,
    SCHED_FIFO: FIFO,
    SCHED_EDF: EDF,
    SCHED_RMS: RMS,
}

_BY_NAME = {
    "priority": lambda: FixedPriority(preemptive=True),
    "priority_np": lambda: FixedPriority(preemptive=False),
    "rr": RoundRobin,
    "round_robin": RoundRobin,
    "fifo": FIFO,
    "edf": EDF,
    "rms": RMS,
}


def make_scheduler(spec):
    """Build a scheduler from an int constant, name, class or instance."""
    if isinstance(spec, Scheduler):
        return spec
    if isinstance(spec, type) and issubclass(spec, Scheduler):
        return spec()
    if isinstance(spec, int):
        try:
            return _BY_INT[spec]()
        except KeyError:
            raise ValueError(f"unknown scheduler constant: {spec}") from None
    if isinstance(spec, str):
        try:
            return _BY_NAME[spec.lower()]()
        except KeyError:
            raise ValueError(f"unknown scheduler name: {spec!r}") from None
    raise TypeError(f"cannot build a scheduler from {spec!r}")


# imported after make_scheduler exists: hier components build their local
# scheduler through it
from repro.rtos.sched.hier import (  # noqa: E402
    Component,
    ComponentStats,
    HierarchicalScheduler,
)

__all__ = [
    "Component",
    "ComponentStats",
    "EDF",
    "FIFO",
    "FixedPriority",
    "HierarchicalScheduler",
    "RMS",
    "RoundRobin",
    "SCHED_EDF",
    "SCHED_FIFO",
    "SCHED_PRIORITY",
    "SCHED_PRIORITY_NP",
    "SCHED_RMS",
    "SCHED_RR",
    "Scheduler",
    "make_scheduler",
]
