"""Fixed-priority scheduling (the policy of the paper's Figure 8(b))."""

from repro.rtos.sched.base import Scheduler


class FixedPriority(Scheduler):
    """Fixed-priority scheduling; lower priority value = higher priority.

    ``preemptive=True`` (default) models the standard preemptive RTOS
    policy: a higher-priority task takes the CPU at the next scheduling
    point (the granularity the paper discusses at t4→t4′).
    With ``preemptive=False`` the running task keeps the CPU until it
    blocks or terminates.
    """

    __slots__ = ("preemptive",)

    name = "priority"

    def __init__(self, preemptive=True):
        super().__init__()
        self.preemptive = preemptive

    def key(self, task, now):
        return task.priority

    def preempts(self, candidate, running, now):
        if not self.preemptive:
            return False
        return candidate.priority < running.priority
