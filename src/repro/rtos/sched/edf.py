"""Earliest-deadline-first scheduling."""

from repro.rtos.sched.base import Scheduler


class EDF(Scheduler):
    """Preemptive earliest-deadline-first.

    The task with the earliest absolute deadline runs. Periodic tasks get
    an implicit deadline of release + period (or an explicit relative
    deadline passed to ``task_create``); aperiodic tasks without a
    deadline sort last and fall back to FIFO order among themselves.
    """

    __slots__ = ()

    name = "edf"

    def key(self, task, now):
        return task.effective_deadline()

    def preempts(self, candidate, running, now):
        return candidate.effective_deadline() < running.effective_deadline()
