"""Priority round-robin scheduling with time slicing."""

from repro.rtos.sched.base import Scheduler


class RoundRobin(Scheduler):
    """Fixed priorities with round-robin time slicing among equals.

    A running task whose slice (``quantum`` time units) has expired is
    rotated behind ready tasks of the same priority at the next
    scheduling point. As with preemption in general (paper Section 4.3),
    slice expiry takes effect at the granularity of the task delay model:
    the rotation happens when the running task reaches a scheduling point,
    not asynchronously mid-delay.
    """

    __slots__ = ("quantum",)

    name = "rr"

    def __init__(self, quantum=1000):
        super().__init__()
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = int(quantum)

    def key(self, task, now):
        return task.priority

    def preempts(self, candidate, running, now):
        if candidate.priority < running.priority:
            return True
        if candidate.priority == running.priority:
            slice_start = running.slice_start
            return slice_start is not None and now - slice_start >= self.quantum
        return False
