"""Non-preemptive first-come-first-served scheduling."""

from repro.rtos.sched.base import Scheduler


class FIFO(Scheduler):
    """Run tasks in ready-queue arrival order; never preempt.

    The cooperative baseline: a task keeps the CPU until it blocks,
    sleeps or terminates.
    """

    __slots__ = ()

    name = "fifo"

    def key(self, task, now):
        return task.ready_seq

    def preempts(self, candidate, running, now):
        return False
