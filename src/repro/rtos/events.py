"""RTOS-level events (paper Section 4.1, *event handling*).

During synchronization refinement (Figure 7) the SLDL events of the
specification model are replaced by RTOS events allocated through
``event_new`` and operated through ``event_wait`` / ``event_notify``.

Semantics (re-implementing the SLDL event semantics inside the serialized
RTOS world, as the paper requires):

* ``event_notify`` moves **all** tasks currently queued on the event back
  into the ready queue.
* Because the RTOS model serializes tasks, a notify and the corresponding
  wait that were simultaneous (same delta) in the specification model may
  execute in either order within one *timestep* of the refined model. To
  preserve the SLDL rendezvous, a notification with no waiters stays
  *pending for the remainder of the current timestep* and is consumed by
  the first ``event_wait`` issued in that same timestep. It never
  persists across timesteps (events are not semaphores).

The waiting-task registry is the shared wait-core
:class:`~repro.kernel.waitcore.WaitQueue` — the same structure the
kernel's SLDL events use — so FIFO wake order and O(1) detach (wait-any
sets enroll a task on several events at once) are implemented exactly
once across both layers.
"""

import itertools

from repro.kernel.waitcore import WaitQueue

# fallback uid source for events constructed outside an EventManager
# (the manager owns a per-model counter, so multi-model runs get
# construction-order-independent uids)
_rtos_event_ids = itertools.count()


class RTOSEvent:
    """An event object managed by the RTOS model (paper type ``evt``)."""

    __slots__ = ("name", "uid", "queue", "pending_time", "notify_count", "deleted")

    def __init__(self, name=None, uid=None):
        self.uid = next(_rtos_event_ids) if uid is None else uid
        self.name = name or f"evt{self.uid}"
        #: tasks blocked in event_wait / event_wait_any on this event
        self.queue = WaitQueue()
        #: timestep of an unconsumed notification (same-timestep rule)
        self.pending_time = None
        self.notify_count = 0
        self.deleted = False

    # -- wait-core facing API (same shape as kernel events) ----------------

    def _add_waiter(self, task):
        self.queue.add(task)

    def _remove_waiter(self, task):
        self.queue.discard(task)

    def __repr__(self):
        return f"RTOSEvent({self.name!r}, waiting={len(self.queue)})"
