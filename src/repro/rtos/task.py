"""Task control blocks and the task state machine.

Task management in the RTOS model follows the customary design the paper
cites (Buttazzo, *Hard Real-Time Computing Systems*): tasks transition
between states and a queue is associated with each state. The states:

::

              task_create              task_activate
      (none) ------------->  NEW  ----------------->  READY <---------+
                                                        |  ^          |
                                          dispatch      |  | preempt  |
                                                        v  |          |
       TERMINATED <------- task_terminate/kill ------ RUNNING         |
                                                        |             |
          event_wait / task_sleep / par_start /         |   notify /  |
          task_endcycle                                 v   activate/ |
                                                     {WAITING,        |
                                                      SLEEPING,       |
                                                      PARENT_WAIT,  --+
                                                      IDLE_PERIOD}

Priorities are integers with **lower value = higher priority** (0 is the
highest), the convention of most fixed-priority kernels.
"""

import enum
import itertools

from repro.kernel.commands import Wait
from repro.kernel.events import Event

#: aperiodic real-time task with a fixed priority (paper's non-periodic)
APERIODIC = 0
#: periodic hard real-time task with an implicit deadline (= period)
PERIODIC = 1

#: priority assigned when the creator does not specify one
DEFAULT_PRIORITY = 100

# fallback uid source for tasks constructed outside a TaskManager (the
# manager owns a per-model counter, so multi-model runs get
# construction-order-independent uids)
_task_seq = itertools.count()


class TaskState(enum.Enum):
    NEW = "new"  # created, not yet activated
    READY = "ready"  # in the ready queue, waiting for the CPU
    RUNNING = "running"  # occupying the (single) CPU of its PE
    WAITING = "waiting"  # blocked on an RTOS event
    SLEEPING = "sleeping"  # suspended via task_sleep
    PARENT_WAIT = "parent_wait"  # suspended in par_start .. par_end
    IDLE_PERIOD = "idle_period"  # periodic task waiting for next release
    TERMINATED = "terminated"


class Task:
    """Task control block (the paper's ``proc`` handle).

    Created by :meth:`repro.rtos.model.RTOSModel.task_create`; all fields
    are managed by the RTOS model.
    """

    __slots__ = (
        "name",
        "uid",
        "tasktype",
        "period",
        "wcet",
        "priority",
        "rel_deadline",
        "state",
        "dispatch_evt",
        "preempt_evt",
        "dispatch_wait",
        "preempt_wait",
        "process",
        "ready_seq",
        "release_time",
        "release_seq",
        "abs_deadline",
        "activation_time",
        "run_start",
        "slice_start",
        "worked_since_release",
        "killed",
        "stats",
        "waiting_events",
        "wait_timer",
        "wake_value",
        "joiners",
        "join_target",
        "base_priority",
        "pi_locks",
        "criticality",
        "wcet_levels",
    )

    def __init__(self, name, tasktype, period, wcet, priority, rel_deadline=None,
                 uid=None):
        self.name = name
        self.uid = next(_task_seq) if uid is None else uid
        self.tasktype = tasktype
        self.period = int(period)
        self.wcet = int(wcet)
        self.priority = priority
        #: relative deadline (EDF); defaults to the period for periodic tasks
        self.rel_deadline = rel_deadline
        self.state = TaskState.NEW
        #: SLDL event gating execution: the task's process blocks on this
        #: whenever the task does not own the CPU
        self.dispatch_evt = Event(f"{name}.dispatch")
        #: SLDL event aborting an in-flight timed delay (immediate
        #: preemption mode and task_kill)
        self.preempt_evt = Event(f"{name}.preempt")
        #: reusable kernel commands for the two hottest RTOS waits —
        #: blocking on dispatch and the interruptible delay of the
        #: immediate preemption mode. The kernel consumes a command
        #: synchronously at the yield, so each task can safely re-yield
        #: the same instance (preempt_wait's timeout is set per use).
        self.dispatch_wait = Wait(self.dispatch_evt)
        self.preempt_wait = Wait(self.preempt_evt, timeout=0)
        #: kernel Process bound at first activation
        self.process = None
        #: FIFO tie-break within equal scheduler keys
        self.ready_seq = 0
        #: release time of the current periodic instance
        self.release_time = 0
        #: monotonically increasing release id: bumped on every
        #: ``_set_release``, so watchdog timers can detect staleness even
        #: across same-instant or fast-forwarded re-releases (release
        #: *times* are not unique under skip-cycle / overrun releases)
        self.release_seq = 0
        #: absolute deadline of the current instance (EDF)
        self.abs_deadline = None
        self.activation_time = None
        #: time this task last acquired the CPU (trace segments)
        self.run_start = None
        #: time of last dispatch (round-robin slicing)
        self.slice_start = None
        #: did this task consume execution time / block since its
        #: current release? (final-cycle response-time accounting)
        self.worked_since_release = False
        self.killed = False
        self.stats = TaskStats()
        #: RTOS events this task is currently enrolled on (wait-any set)
        self.waiting_events = ()
        #: armed timeout timer of the current event wait, if any
        self.wait_timer = None
        #: what woke the last event wait: the fired RTOSEvent or TIMEOUT
        self.wake_value = None
        #: tasks blocked in task_join on this task's termination
        self.joiners = []
        #: the task this task is blocked joining on, if any
        self.join_target = None
        #: pre-inheritance priority while boosted by a PI mutex (None
        #: when the task holds no priority-inheritance locks)
        self.base_priority = None
        #: priority-inheritance mutexes currently held; unlock recomputes
        #: the inherited priority over the waiters of the remaining ones
        self.pi_locks = []
        #: mixed-criticality level name (``None`` outside MC models) and
        #: per-level execution budgets, managed by ``repro.rtos.mc``
        self.criticality = None
        self.wcet_levels = None

    # -- scheduler helpers --------------------------------------------------

    @property
    def is_periodic(self):
        return self.tasktype == PERIODIC

    def effective_deadline(self):
        """Absolute deadline used by EDF; +inf when none applies."""
        if self.abs_deadline is None:
            return float("inf")
        return self.abs_deadline

    def __repr__(self):
        return f"Task({self.name!r}, prio={self.priority}, {self.state.value})"


class TaskStats:
    """Per-task counters maintained by the RTOS model."""

    __slots__ = (
        "activations",
        "cycles_completed",
        "deadline_misses",
        "preemptions",
        "dispatches",
        "exec_time",
        "response_times",
    )

    def __init__(self):
        self.activations = 0
        self.cycles_completed = 0
        self.deadline_misses = 0
        self.preemptions = 0
        self.dispatches = 0
        self.exec_time = 0
        #: completion − release, one entry per completed periodic cycle
        #: (or activation→termination for aperiodic tasks)
        self.response_times = []

    @property
    def worst_response(self):
        return max(self.response_times) if self.response_times else None

    @property
    def avg_response(self):
        if not self.response_times:
            return None
        return sum(self.response_times) / len(self.response_times)
