"""Mixed-criticality modes: overrun-triggered reconfiguration + recovery.

Beyond-paper extension in the style of Vestal-model mixed-criticality
scheduling (Vestal 2007; Baruah/Burns' AMC): every task carries a
*criticality level* from an ordered lattice (default ``("LO", "HI")``,
extensible to more levels) and a vector of per-level execution budgets
``wcet_levels`` with ``wcet[LO] <= wcet[HI] <= ...``. The system runs in
one *criticality mode* at a time, starting at the base level:

* **overrun sensing** — tasks above the base level are watched by the
  model's :class:`~repro.faults.detect.FailureMonitor` with an
  execution-budget watchdog set to their budget *at the current mode*;
  the watchdog's ``budget_overrun`` is the sensor: a task exceeding its
  current-level budget proves the optimistic assumptions wrong.
* **mode raise** — an overrun by a task whose criticality lies above the
  current mode raises the mode to that level. The controller then
  (a) re-budgets every above-base task to its new-level budget
  (:meth:`FailureMonitor.rebudget`), (b) reconfigures hierarchical
  :class:`~repro.rtos.sched.hier.Component` server budgets per the
  ``component_budgets`` table, and (c) starts degrading every task
  *below* the new mode by the configured policy.
* **degradation policies** — applied at release boundaries (in-flight
  jobs run to completion, mirroring AMC's carried-over LO interference):

  ========== ========================================================
  ``drop``    suppress every release of degraded tasks; the release
              chain stays alive on the original period grid, so tasks
              resume seamlessly on recovery
  ``skip``    release only every ``skip_factor``-th cycle of degraded
              tasks (poly-rate degradation)
  ``elastic`` stretch the release spacing of degraded tasks to
              ``period * elastic_factor`` (elastic task model);
              deadlines stay relative to each actual release
  ========== ========================================================

* **recovery hysteresis** — with ``recovery_window`` set, a window of
  that length with *no* overrun anywhere steps the mode back down one
  level (budgets and component servers are restored level by level);
  every overrun pushes the window out. Without it the mode raise is
  sticky, matching the classical AMC analysis the
  :mod:`repro.analysis.schedulability` certificates
  (:func:`~repro.analysis.schedulability.check_amc_rtb`,
  :func:`~repro.analysis.schedulability.check_edf_vd`) are computed for.

Mode changes emit ``"mode"`` trace records (instants in CTF export, a
section in ``obs report``) and count into ``RTOSMetrics``
(``mode_raises`` / ``mode_recoveries`` / ``jobs_degraded``).

Everything sits behind the established ``is None`` guard: a model whose
``mc`` slot is unarmed pays one attribute load per release decision and
produces byte-identical traces.
"""

from repro.rtos.errors import RTOSError

__all__ = ["DEFAULT_LEVELS", "DEGRADE_POLICIES", "MCController"]

#: default criticality lattice, lowest first
DEFAULT_LEVELS = ("LO", "HI")

#: degradation policies for tasks below the current mode
DEGRADE_POLICIES = ("drop", "skip", "elastic")


class _MCTask:
    """Per-task MC registration record."""

    __slots__ = ("task", "index", "attempts")

    def __init__(self, task, index):
        self.task = task
        self.index = index
        #: release attempts seen while degraded (skip-policy counter)
        self.attempts = 0


class MCController:
    """Criticality-mode state machine of one RTOS model (see module doc).

    Created by :meth:`RTOSModel.mc_configure`; tasks join via
    :meth:`register` (usually through
    ``task_create(criticality=..., wcet=[lo, hi])``).
    """

    def __init__(self, model, levels=DEFAULT_LEVELS, degrade="drop",
                 skip_factor=2, elastic_factor=2, recovery_window=None,
                 component_budgets=None, watch_policy="log"):
        levels = tuple(levels)
        if len(levels) < 2:
            raise RTOSError(
                f"need at least two criticality levels, got {levels!r}"
            )
        if len(set(levels)) != len(levels):
            raise RTOSError(f"duplicate criticality levels in {levels!r}")
        if degrade not in DEGRADE_POLICIES:
            raise RTOSError(
                f"unknown degradation policy {degrade!r} "
                f"(choose from {', '.join(DEGRADE_POLICIES)})"
            )
        if int(skip_factor) < 2:
            raise RTOSError(f"skip_factor must be >= 2, got {skip_factor!r}")
        if int(elastic_factor) < 2:
            raise RTOSError(
                f"elastic_factor must be >= 2, got {elastic_factor!r}"
            )
        if recovery_window is not None:
            recovery_window = int(recovery_window)
            if recovery_window <= 0:
                raise RTOSError(
                    f"recovery_window must be positive, got {recovery_window}"
                )
        if component_budgets is not None:
            unknown = set(component_budgets) - set(levels)
            if unknown:
                raise RTOSError(
                    f"component_budgets for unknown levels: {sorted(unknown)}"
                )
            component_budgets = {
                level: dict(table)
                for level, table in component_budgets.items()
            }
        self.model = model
        self.sim = model.sim
        self.trace = model.trace
        self.metrics = model.metrics
        self.levels = levels
        self.degrade = degrade
        self.skip_factor = int(skip_factor)
        self.elastic_factor = int(elastic_factor)
        self.recovery_window = recovery_window
        #: level name -> {component name -> server budget} applied on
        #: entering that mode (hierarchical scheduler only)
        self.component_budgets = component_budgets or {}
        self.watch_policy = watch_policy
        self.mode_index = 0
        #: task uid -> registration record
        self._by_uid = {}
        self._callbacks = []
        self._last_event = 0
        self._recovery_timer = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    @property
    def mode(self):
        """Name of the current criticality mode."""
        return self.levels[self.mode_index]

    def level_index(self, level):
        """Position of ``level`` in the lattice (0 = base)."""
        try:
            return self.levels.index(level)
        except ValueError:
            raise RTOSError(
                f"unknown criticality level {level!r} "
                f"(levels: {', '.join(self.levels)})"
            ) from None

    def register(self, task, criticality=None, wcet_levels=None):
        """Enroll ``task`` at ``criticality`` with per-level budgets.

        ``wcet_levels`` is a non-decreasing sequence of execution
        budgets, one per lattice level (shorter vectors are padded with
        their last entry; default: the task's scalar ``wcet`` at every
        level). Above-base tasks get a budget watchdog at their
        current-mode budget — the controller's overrun sensor. Base
        (lowest-criticality) tasks are watched without a budget so
        their deadline misses are counted eagerly.
        """
        index = self.level_index(
            self.levels[0] if criticality is None else criticality
        )
        if wcet_levels is None:
            wcet_levels = (task.wcet,)
        wcet_levels = tuple(int(w) for w in wcet_levels)
        if not wcet_levels or any(w <= 0 for w in wcet_levels):
            raise RTOSError(
                f"task {task.name!r}: wcet levels must be positive, "
                f"got {wcet_levels!r}"
            )
        if any(a > b for a, b in zip(wcet_levels, wcet_levels[1:])):
            raise RTOSError(
                f"task {task.name!r}: wcet levels must be non-decreasing, "
                f"got {wcet_levels!r}"
            )
        wcet_levels = wcet_levels + (
            wcet_levels[-1],
        ) * (len(self.levels) - len(wcet_levels))
        task.criticality = self.levels[index]
        task.wcet_levels = wcet_levels
        self._by_uid[task.uid] = _MCTask(task, index)
        budget = self._budget_at(task, self.mode_index) if index > 0 else None
        self.model.task_watch(task, policy=self.watch_policy, budget=budget)
        self.model.monitor.mc = self
        return task

    def on_mode_change(self, callback):
        """Register ``callback(old_level, new_level, now, trigger_task)``.

        ``trigger_task`` is the overrunning task on a raise and ``None``
        on a hysteresis recovery.
        """
        self._callbacks.append(callback)
        return callback

    def reset(self):
        """Back to the base mode, counters cleared (RTOSModel.init)."""
        self.mode_index = 0
        self._last_event = 0
        for info in self._by_uid.values():
            info.attempts = 0
        if self._recovery_timer is not None:
            self.sim.cancel_scheduled(self._recovery_timer)
            self._recovery_timer = None

    # ------------------------------------------------------------------
    # sensors and mode transitions
    # ------------------------------------------------------------------

    def on_overrun(self, task):
        """Budget-watchdog callback: a watched task blew its budget."""
        self._last_event = self.sim.now
        info = self._by_uid.get(task.uid)
        if info is None:
            return  # watched task outside the MC registry
        if info.index > self.mode_index:
            self._switch(info.index, task)
        elif self._recovery_timer is not None:
            # already at (or above) this task's level: push recovery out
            self._arm_recovery()

    def degraded(self, task):
        """Is ``task`` currently degraded (below the active mode)?"""
        if self.mode_index == 0:
            return False
        info = self._by_uid.get(task.uid)
        return info is not None and info.index < self.mode_index

    def suppress_release(self, task, release_time):
        """Intercept a periodic release of a degraded task.

        Called by ``TaskManager._periodic_release``. Returns True when
        this release is swallowed (``drop``, or a skipped ``skip``
        cycle); the controller then keeps the release chain alive on the
        original period grid so the task resumes on recovery.
        """
        if not self.degraded(task) or self.degrade == "elastic":
            return False
        info = self._by_uid[task.uid]
        if self.degrade == "skip":
            info.attempts += 1
            if info.attempts % self.skip_factor == 0:
                return False  # every skip_factor-th cycle still runs
        self.metrics.jobs_degraded += 1
        self.trace.record(
            self.sim.now, "mode", task.name, "degrade",
            policy=self.degrade, level=self.mode, release=release_time,
        )
        tasks = self.model._tasks
        next_chain = release_time + task.period
        self.sim.schedule_at(
            next_chain, lambda: tasks._periodic_release(task, next_chain)
        )
        return True

    def adjust_release(self, task, now, next_release):
        """Stretch the next release of a degraded task (``elastic``)."""
        if self.degrade != "elastic" or not self.degraded(task):
            return next_release
        stretched = task.release_time + task.period * self.elastic_factor
        if stretched <= next_release:
            return next_release
        self.metrics.jobs_degraded += 1
        self.trace.record(
            now, "mode", task.name, "degrade",
            policy=self.degrade, level=self.mode, release=stretched,
        )
        return stretched

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _budget_at(self, task, mode_index):
        levels = task.wcet_levels
        return levels[min(mode_index, len(levels) - 1)]

    def _switch(self, new_index, trigger):
        now = self.sim.now
        old = self.mode
        raising = new_index > self.mode_index
        self.mode_index = new_index
        new = self.mode
        if raising:
            self.metrics.mode_raises += 1
        else:
            self.metrics.mode_recoveries += 1
        self.trace.record(
            now, "mode", self.model.name,
            "raise" if raising else "recover",
            level=new, prev=old,
            **({"trigger": trigger.name} if trigger is not None else {}),
        )
        obs = self.model.obs
        if obs is not None:
            obs.registry.counter(
                f"{self.model.name}.mc."
                + ("raises" if raising else "recoveries")
            ).inc()
        self._apply_budgets()
        self._apply_components()
        for callback in self._callbacks:
            callback(old, new, now, trigger)
        if self.recovery_window is not None and self.mode_index > 0:
            self._last_event = now
            self._arm_recovery()

    def _apply_budgets(self):
        monitor = self.model.monitor
        if monitor is None:
            return
        for info in self._by_uid.values():
            if info.index > 0:
                monitor.rebudget(
                    info.task, self._budget_at(info.task, self.mode_index)
                )

    def _apply_components(self):
        table = self.component_budgets.get(self.mode)
        if not table:
            return
        scheduler = self.model.scheduler
        reconfigure = getattr(scheduler, "reconfigure_budget", None)
        if reconfigure is None:
            raise RTOSError(
                "component_budgets need a hierarchical scheduler, "
                f"got {scheduler!r}"
            )
        for name, budget in table.items():
            reconfigure(name, budget)

    def _arm_recovery(self):
        if self._recovery_timer is not None:
            self.sim.cancel_scheduled(self._recovery_timer)
        self._recovery_timer = self.sim.schedule_at(
            self._last_event + self.recovery_window, self._recovery_check
        )

    def _recovery_check(self):
        self._recovery_timer = None
        if self.mode_index == 0:
            return
        now = self.sim.now
        if now - self._last_event < self.recovery_window:
            # an overrun moved the goalposts; wait out the remainder
            self._arm_recovery()
            return
        self._switch(self.mode_index - 1, None)

    def snapshot(self):
        """Deterministic MC state dict (obs report / tests)."""
        return {
            "mode": self.mode,
            "levels": list(self.levels),
            "degrade": self.degrade,
            "mode_raises": self.metrics.mode_raises,
            "mode_recoveries": self.metrics.mode_recoveries,
            "jobs_degraded": self.metrics.jobs_degraded,
            "tasks": {
                info.task.name: {
                    "criticality": info.task.criticality,
                    "wcet_levels": list(info.task.wcet_levels),
                    "degraded": self.degraded(info.task),
                }
                for info in sorted(
                    self._by_uid.values(), key=lambda i: i.task.uid
                )
            },
        }

    def __repr__(self):
        return (
            f"MCController(mode={self.mode!r}, levels={self.levels!r}, "
            f"degrade={self.degrade!r})"
        )
