"""The time-modeling OS service (paper Figure 4, *time modeling*).

Implements ``time_wait`` — the replacement for SLDL ``waitfor`` that
gives the RTOS a scheduling point whenever simulated time advances
(Section 4.3). This is the hottest RTOS call: the delay itself is a
reusable kernel :class:`~repro.kernel.commands.WaitFor` / timed
:class:`~repro.kernel.commands.Wait` and the post-delay scheduling check
is inlined so the common no-preemption case costs no extra generator
frame.
"""

from repro.kernel.commands import TIMEOUT, WaitFor
from repro.rtos.errors import RTOSError, TaskKilled


class TimeManager:
    """Execution-time modeling service of one PE's RTOS model."""

    __slots__ = ("sim", "dispatcher", "tasks", "_waitfor", "obs", "faults")

    def __init__(self, sim, dispatcher, tasks):
        self.sim = sim
        self.dispatcher = dispatcher
        self.tasks = tasks
        #: reusable WaitFor for time_wait's step mode — the kernel reads
        #: ``delay`` synchronously at the yield, so one mutable instance
        #: per model suffices (at most one task executes at a time)
        self._waitfor = WaitFor(0)
        #: optional RTOSObs instrument bundle (RTOSModel.observe); the
        #: hottest RTOS call pays one load + None compare when detached
        self.obs = None
        #: optional FaultInjector (RTOSModel.attach_faults), same guard
        self.faults = None

    def time_wait(self, nsec):
        """Model task execution time (generator; see RTOSModel.time_wait)."""
        nsec = int(nsec)
        if nsec < 0:
            raise RTOSError(f"negative delay: {nsec}")
        dispatcher = self.dispatcher
        # inlined entry protocol: time_wait is the hottest RTOS call, and
        # in the common case (caller owns the CPU, not killed) the entry
        # protocol never yields — skip the nested-generator round trip
        task = self.tasks.current_task()
        if task is None:
            raise RTOSError("RTOS call from a process that is not a task")
        if task.killed:
            raise TaskKilled(task.name)
        faults = self.faults
        if faults is not None:
            # exec-time faults perturb the delay before instrumentation
            # sees it, so observed delays match what actually elapses
            nsec = faults.perturb_exec(task, nsec)
            if nsec is None:
                # injected hang: the task stops making progress but
                # never yields the CPU; only being killed (task_kill or
                # a watchdog kill policy firing preempt_evt) unwinds it
                while True:
                    task.preempt_wait.timeout = None
                    yield task.preempt_wait
                    if task.killed:
                        raise TaskKilled(task.name)
        obs = self.obs
        if obs is not None:
            obs.time_wait_calls.inc()
            obs.time_wait_delay.observe(nsec)
        if dispatcher.running is not task:
            yield from dispatcher.wait_until_running(task)
        if nsec == 0:
            yield from dispatcher.schedule_point(task)
            return
        task.worked_since_release = True
        if dispatcher.preemption == "step":
            self._waitfor.delay = nsec
            yield self._waitfor
            # inlined schedule-point fast path: when no ready task
            # preempts the caller, the scheduling point is a pure check
            # and must not cost a generator; fall back for the rare
            # preemption/kill/lost-CPU cases
            if not task.killed and dispatcher.running is task:
                scheduler = dispatcher.scheduler
                candidate = scheduler.peek(self.sim.now)
                if candidate is None:
                    if not scheduler.expired(task, self.sim.now):
                        return
                elif not scheduler.preempts(candidate, task, self.sim.now):
                    return
            yield from dispatcher.schedule_point(task)
            return
        remaining = nsec
        while remaining > 0:
            started = self.sim.now
            task.preempt_wait.timeout = remaining
            fired = yield task.preempt_wait
            remaining -= self.sim.now - started
            if task.killed:
                raise TaskKilled(task.name)
            if fired is TIMEOUT:
                break
            # preempted mid-delay: CPU was already handed over by the
            # preemptor; queue up for re-dispatch, then resume the rest
            yield from dispatcher.wait_until_running(task)
        yield from dispatcher.schedule_point(task)
