"""Global RTOS-model counters.

These are the numbers Table 1 reports for the architecture model
(context switches) plus everything needed by the scheduler ablations.
Per-task statistics live in :class:`repro.rtos.task.TaskStats`.
"""


class RTOSMetrics:
    """Counters maintained by one :class:`~repro.rtos.model.RTOSModel`."""

    __slots__ = (
        "context_switches",
        "dispatches",
        "preemptions",
        "interrupts",
        "deadline_misses",
        "budget_overruns",
        "policy_kills",
        "cycles_skipped",
        "faults_injected",
        "mode_raises",
        "mode_recoveries",
        "jobs_degraded",
        "busy_time",
        "overhead_time",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        #: CPU occupant changed from one task to a different task
        self.context_switches = 0
        #: scheduler handed the CPU to a task
        self.dispatches = 0
        #: a running task lost the CPU to a higher-urgency task
        self.preemptions = 0
        #: interrupt_return invocations (serviced interrupts)
        self.interrupts = 0
        #: periodic instances that completed after their deadline
        self.deadline_misses = 0
        #: watched tasks that exceeded their execution budget in a cycle
        self.budget_overruns = 0
        #: tasks terminated by a watchdog ``kill`` policy
        self.policy_kills = 0
        #: periodic releases abandoned by a ``skip-cycle`` policy
        self.cycles_skipped = 0
        #: faults an armed injector applied to this model
        self.faults_injected = 0
        #: criticality-mode raises triggered by HI-task overruns (MC)
        self.mode_raises = 0
        #: hysteresis recoveries back toward the base mode (MC)
        self.mode_recoveries = 0
        #: LO-task releases suppressed/stretched while degraded (MC)
        self.jobs_degraded = 0
        #: accumulated simulated time with a task occupying the CPU
        self.busy_time = 0
        #: simulated time spent in modeled kernel overhead (context
        #: switch cost), when the model is configured with one
        self.overhead_time = 0

    def idle_time(self, total_time):
        """Simulated idle time given the total simulated span.

        Modeled kernel overhead occupies the CPU just like task
        execution does, so it is *not* idle time.
        """
        return total_time - self.busy_time - self.overhead_time

    def utilization(self, total_time):
        """Fraction of the simulated span the CPU was occupied (0..1):
        task execution plus modeled kernel overhead."""
        if total_time <= 0:
            return 0.0
        return (self.busy_time + self.overhead_time) / total_time

    def overhead_ratio(self, total_time):
        """Fraction of the simulated span spent in modeled kernel
        overhead (context-switch cost), 0..1."""
        if total_time <= 0:
            return 0.0
        return self.overhead_time / total_time

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def snapshot(self, total_time=None):
        """Counters plus, given the simulated span, the derived ratios.

        With ``total_time`` the snapshot adds ``sim_time``,
        ``idle_time``, ``utilization`` and ``overhead_ratio`` — the
        complete flat metrics dict the farm workloads and result
        aggregation consume (all JSON-serializable scalars).
        """
        snap = self.as_dict()
        if total_time is not None:
            snap["sim_time"] = total_time
            snap["idle_time"] = self.idle_time(total_time)
            snap["utilization"] = self.utilization(total_time)
            snap["overhead_ratio"] = self.overhead_ratio(total_time)
        return snap

    def __repr__(self):
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"RTOSMetrics({inner})"
