"""The event-handling OS service (paper Figure 4, *event handling*).

Owns the RTOS events of one PE and implements ``event_new`` /
``event_del`` / ``event_wait`` / ``event_notify``, plus the beyond-paper
extensions of the unified wait core: multi-event waits
(``event_wait_any``) and timed waits (``timeout=``, resolving to the
kernel's :data:`~repro.kernel.commands.TIMEOUT` sentinel).

Timed waits are armed as kernel timers, so the same-instant rule of the
wait core holds across layers: timers fire at the start of a timestep,
before any process runs — a timeout and a task-context ``event_notify``
scheduled for the same instant resolve to TIMEOUT, while a
callback-context notify that was scheduled earlier than the timeout's
deadline wins (timer-queue insertion order decides).
"""

import itertools

from repro.kernel.commands import TIMEOUT
from repro.kernel.oracle import DecisionPoint
from repro.rtos.errors import RTOSError
from repro.rtos.events import RTOSEvent
from repro.rtos.task import TaskState


class EventManager:
    """Event service of one PE's RTOS model."""

    __slots__ = ("sim", "trace", "name", "dispatcher", "tasks", "events",
                 "obs", "faults", "spans", "_uid_seq")

    def __init__(self, sim, trace, name, dispatcher, tasks):
        self.sim = sim
        self.trace = trace
        self.name = name
        self.dispatcher = dispatcher
        self.tasks = tasks
        self.events = []
        #: per-model uid counter (see TaskManager._uid_seq)
        self._uid_seq = itertools.count()
        #: optional RTOSObs instrument bundle (RTOSModel.observe)
        self.obs = None
        #: optional FaultInjector (RTOSModel.attach_faults)
        self.faults = None
        #: span-source arming (RTOSModel.trace_spans): truthy makes
        #: notify records name their source (task / isr / kernel)
        self.spans = None

    def reset(self):
        """Drop all event state (RTOSModel.init)."""
        self.events = []
        self._uid_seq = itertools.count()

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def new(self, name=None):
        """Allocate an RTOS event (paper type ``evt``)."""
        event = RTOSEvent(name, uid=next(self._uid_seq))
        self.events.append(event)
        return event

    def delete(self, event):
        """Deallocate an RTOS event; it must have no waiting tasks and
        no undelivered same-instant notification."""
        if event.queue:
            raise RTOSError(f"event_del on {event.name!r} with waiting tasks")
        if event.pending_time == self.sim.now:
            # a notify issued this timestep has not been consumed yet;
            # deleting the event now would silently lose it
            raise RTOSError(
                f"event_del on {event.name!r} with a pending notification"
            )
        # a pending_time from an earlier timestep is already stale
        # (notifications never persist across timesteps) — clear it
        event.pending_time = None
        event.deleted = True
        if event in self.events:
            self.events.remove(event)

    # ------------------------------------------------------------------
    # wait / notify
    # ------------------------------------------------------------------

    def wait(self, event, timeout=None):
        """Block the calling task until ``event`` is notified (generator).

        Returns the event, or :data:`TIMEOUT` when ``timeout`` simulated
        time units pass first. ``timeout=0`` polls: it consumes a
        same-timestep pending notification or returns TIMEOUT at once.
        """
        task = yield from self.tasks.enter()
        if event.deleted:
            raise RTOSError(f"event_wait on deleted event {event.name!r}")
        task.worked_since_release = True
        if event.pending_time == self.sim.now:
            # same-timestep rendezvous (see repro.rtos.events)
            event.pending_time = None
            return event
        if timeout is None:
            event.queue.add(task)
            task.waiting_events = (event,)
            self.trace.record(self.sim.now, "task", task.name, "wait", event=event.name)
        else:
            timeout = int(timeout)
            if timeout < 0:
                raise RTOSError(f"negative timeout: {timeout}")
            if timeout == 0:
                return TIMEOUT
            event.queue.add(task)
            task.waiting_events = (event,)
            self.trace.record(
                self.sim.now, "task", task.name, "wait",
                event=event.name, timeout=timeout,
            )
            self._arm_timeout(task, timeout)
        blocked_at = self.sim.now
        self.dispatcher.yield_cpu(task, TaskState.WAITING)
        yield from self.dispatcher.wait_until_running(task)
        if self.obs is not None:
            self.obs.wait_latency.observe(self.sim.now - blocked_at)
        woke = task.wake_value
        task.wake_value = None
        return woke

    def wait_any(self, events, timeout=None):
        """Block until any of ``events`` is notified (generator).

        The RTOS counterpart of the kernel's multi-event ``Wait(e1, e2)``.
        Returns the event that woke the task (first pending event in
        argument order when several rendezvous at once), or TIMEOUT.
        """
        events = tuple(events)
        if not events:
            raise RTOSError("event_wait_any needs at least one event")
        task = yield from self.tasks.enter()
        now = self.sim.now
        for event in events:
            if event.deleted:
                raise RTOSError(f"event_wait_any on deleted event {event.name!r}")
        task.worked_since_release = True
        for event in events:
            if event.pending_time == now:
                event.pending_time = None
                return event
        if timeout is not None:
            timeout = int(timeout)
            if timeout < 0:
                raise RTOSError(f"negative timeout: {timeout}")
            if timeout == 0:
                return TIMEOUT
        for event in events:
            event.queue.add(task)
        task.waiting_events = events
        self.trace.record(
            self.sim.now, "task", task.name, "wait_any",
            events=[e.name for e in events],
            **({"timeout": timeout} if timeout is not None else {}),
        )
        if timeout is not None:
            self._arm_timeout(task, timeout)
        blocked_at = self.sim.now
        self.dispatcher.yield_cpu(task, TaskState.WAITING)
        yield from self.dispatcher.wait_until_running(task)
        if self.obs is not None:
            self.obs.wait_latency.observe(self.sim.now - blocked_at)
        woke = task.wake_value
        task.wake_value = None
        return woke

    def notify(self, event):
        """Move all tasks waiting on ``event`` into the ready queue.

        Callable from task context (generator — the caller reaches a
        scheduling point and may be preempted by a woken task) and from
        ISR/bootstrap context (no task is bound to the calling process;
        the running task is preempted per the preemption mode).
        """
        if event.deleted:
            raise RTOSError(f"event_notify on deleted event {event.name!r}")
        event.notify_count += 1
        src = None
        if self.spans is not None:
            # the notifier's identity, resolved *before* delivery can
            # reschedule: a bound task, an ISR/bootstrap process, or a
            # timer callback (no process at all)
            current = self.tasks.current_task()
            if current is not None:
                src = current.name
            else:
                process = self.sim._current
                src = f"isr:{process.name}" if process is not None else "kernel"
        faults = self.faults
        if faults is None:
            self._deliver(event, src)
        elif not faults.lose_notify(event):
            self._deliver(event, src)
            if faults.duplicate_notify(event):
                self._deliver(event, src)
        current = self.tasks.current_task()
        yield from self.dispatcher.resched(current)

    def _deliver(self, event, src=None):
        """One delivery of a notification: wake waiters or leave the
        same-instant pending mark (the fault layer may skip or repeat
        this; an unarmed model calls it exactly once per notify)."""
        now = self.sim.now
        woken = event.queue.pop_all()
        if woken:
            oracle = self.sim.oracle
            if oracle is not None and len(woken) > 1:
                woken = self._order_wake(event, list(woken), oracle)
            unenroll = self._unenroll
            release = self.dispatcher.release_to_ready
            for task in woken:
                unenroll(task, event)
                release(task)
        else:
            event.pending_time = now
        if src is None:
            self.trace.record(
                now, "task", self.name, "notify",
                event=event.name, woken=len(woken),
            )
        else:
            self.trace.record(
                now, "task", self.name, "notify",
                event=event.name, woken=len(woken), src=src,
            )

    # ------------------------------------------------------------------
    # enrollment bookkeeping (shared by notify / timeout / kill)
    # ------------------------------------------------------------------

    def _unenroll(self, task, wake):
        """Clear a woken task's wait-set enrollment; record what woke it."""
        events = task.waiting_events
        if len(events) > 1:
            for event in events:
                if event is not wake:
                    event.queue.discard(task)
        task.waiting_events = ()
        timer = task.wait_timer
        if timer is not None:
            self.sim.cancel_scheduled(timer)
            task.wait_timer = None
        task.wake_value = wake

    def detach(self, task):
        """Remove ``task`` from every wait queue and disarm its timeout.

        Used by ``task_kill``: the victim must not be woken (or time out)
        after it was condemned.
        """
        for event in task.waiting_events:
            event.queue.discard(task)
        task.waiting_events = ()
        timer = task.wait_timer
        if timer is not None:
            self.sim.cancel_scheduled(timer)
            task.wait_timer = None

    def _order_wake(self, event, remaining, oracle):
        """Oracle-armed wake ordering for a multi-waiter notify.

        Iteratively picking index 0 reproduces the FIFO pop order, so
        the FifoOracle keeps ready-queue insertion byte-identical to the
        unarmed path.
        """
        ordered = []
        now = self.sim.now
        while remaining:
            if len(remaining) == 1:
                ordered.append(remaining.pop())
                break
            index = oracle.pick(DecisionPoint(
                "wake", tuple(t.name for t in remaining),
                actor=event.name, time=now,
            ))
            ordered.append(remaining.pop(index))
        return ordered

    def _arm_timeout(self, task, timeout):
        task.wait_timer = self.sim.schedule_after(
            timeout, lambda: self._wait_timeout(task),
            label=f"timeout:{task.name}",
        )

    def _wait_timeout(self, task):
        """Timer callback: the task's event wait expired."""
        task.wait_timer = None
        if task.state is not TaskState.WAITING or not task.waiting_events:
            return
        for event in task.waiting_events:
            event.queue.discard(task)
        task.waiting_events = ()
        task.wake_value = TIMEOUT
        self.trace.record(self.sim.now, "task", task.name, "timeout")
        self.dispatcher.release_to_ready(task)
        self.dispatcher.resched_from_outside()
