"""The dispatcher OS service: CPU ownership and scheduling decisions.

One :class:`Dispatcher` serializes the tasks of one PE on top of the
concurrent SLDL kernel (paper Section 4.3): at any simulated instant at
most one task is *running*; all others block on their per-task dispatch
events. Every RTOS call that changes task states funnels through the
dispatcher, which consults the pluggable scheduler and releases exactly
one dispatch event.

The dispatcher owns the policy-level state (scheduler instance,
preemption mode, modeled context-switch overhead) and the CPU-occupancy
state (running task, last occupant, boot flag). The other OS services —
:class:`~repro.rtos.taskmgr.TaskManager`,
:class:`~repro.rtos.eventmgr.EventManager`,
:class:`~repro.rtos.timemgr.TimeManager` — delegate all blocking and
rescheduling here, so the "who gets the CPU next" logic exists once.
"""

from repro.kernel.commands import WaitFor
from repro.kernel.oracle import DecisionPoint
from repro.rtos.errors import TaskKilled
from repro.rtos.sched import make_scheduler
from repro.rtos.task import TaskState


class Dispatcher:
    """Scheduling core of one PE's RTOS model."""

    __slots__ = (
        "sim",
        "trace",
        "metrics",
        "name",
        "scheduler",
        "preemption",
        "switch_overhead",
        "tasks",
        "running",
        "last_occupant",
        "started",
        "_dispatch_pending",
        "obs",
        "monitor",
    )

    def __init__(self, sim, trace, metrics, name, scheduler, preemption,
                 switch_overhead):
        self.sim = sim
        self.trace = trace
        self.metrics = metrics
        self.name = name
        self.scheduler = scheduler
        scheduler.bind(self)
        self.preemption = preemption
        self.switch_overhead = switch_overhead
        #: wired by the facade: the PE's TaskManager (policy migration
        #: on a live scheduler switch needs the task list)
        self.tasks = None
        self.running = None
        self.last_occupant = None
        self.started = False
        self._dispatch_pending = False
        #: optional RTOSObs instrument bundle (RTOSModel.observe);
        #: every instrumentation site guards with ``is not None``
        self.obs = None
        #: optional FailureMonitor (RTOSModel.task_watch), same guard —
        #: arms/disarms execution-budget watchdogs at CPU handover
        self.monitor = None

    def reset(self):
        """Forget all occupancy state (RTOSModel.init)."""
        self.running = None
        self.last_occupant = None
        self.started = False
        self._dispatch_pending = False

    def start(self, sched_alg=None):
        """Unlock the scheduler, optionally switching the policy live."""
        if sched_alg is not None:
            new_scheduler = make_scheduler(sched_alg)
            now = self.sim.now
            # migrate tasks that queued up before the policy switch
            for task in self.scheduler.ready_tasks:
                new_scheduler.on_ready(task, now)
            # the old policy's time-slicing state is meaningless under
            # the new one: the current occupant starts a fresh slice,
            # everyone else gets theirs at their next dispatch
            for task in self.tasks.tasks:
                if task is self.running:
                    new_scheduler.on_dispatch(task, now)
                else:
                    task.slice_start = None
            self.scheduler = new_scheduler
            new_scheduler.bind(self)
        self.started = True
        self.dispatch_if_idle()

    # ------------------------------------------------------------------
    # dispatch decisions
    # ------------------------------------------------------------------

    def release_to_ready(self, task):
        """Insert ``task`` into the scheduler's ready queue."""
        task.state = TaskState.READY
        self.scheduler.on_ready(task, self.sim.now)

    def dispatch_if_idle(self):
        """Request a dispatch decision for an idle CPU.

        The decision is deferred to the end of the current simulated
        instant (all delta activity settled) so that a burst of
        same-instant activations — e.g. the children forked by a ``par``
        (Figure 6) — is scheduled by priority, not by the incidental
        order the activations executed in.
        """
        if not self.started or self.running is not None:
            return
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        self.sim.schedule_at(
            self.sim.now, self._deferred_dispatch,
            label=f"dispatch:{self.name}",
        )

    def _deferred_dispatch(self):
        self._dispatch_pending = False
        if not self.started or self.running is not None:
            return
        scheduler = self.scheduler
        oracle = self.sim.oracle
        if oracle is None:
            candidate = scheduler.peek(self.sim.now)
        else:
            candidate = self._pick_tied(scheduler, oracle)
        if candidate is None:
            return
        scheduler.remove(candidate)
        self._dispatch(candidate)

    def _pick_tied(self, scheduler, oracle):
        """Oracle-armed dispatch pick among key-tied ready tasks.

        ``tied_best(now)[0]`` equals ``peek(now)``'s choice, so index 0
        (FIFO) reproduces the default dispatch byte-for-byte.
        """
        now = self.sim.now
        tied = scheduler.tied_best(now)
        if not tied:
            return None
        if len(tied) == 1:
            return tied[0]
        index = oracle.pick(DecisionPoint(
            "dispatch", tuple(t.name for t in tied),
            actor=self.name, time=now,
        ))
        return tied[index]

    def _dispatch(self, task):
        now = self.sim.now
        scheduler = self.scheduler
        task.state = TaskState.RUNNING
        self.running = task
        task.stats.dispatches += 1
        self.metrics.dispatches += 1
        obs = self.obs
        if obs is not None:
            # depth *after* removing the dispatched task: tasks left
            # waiting for the CPU at this dispatch decision
            obs.ready_depth.set(len(scheduler))
        scheduler.on_dispatch(task, now)
        self.trace.record(now, "sched", self.name, "dispatch", task=task.name)
        task.dispatch_evt.fire(self.sim)

    def yield_cpu(self, task, new_state):
        """The calling/affected task gives up the CPU."""
        now = self.sim.now
        run_start = task.run_start
        if run_start is not None:
            ran = now - run_start
            self.trace.segment(task.name, run_start, now)
            task.stats.exec_time += ran
            self.metrics.busy_time += ran
            if self.monitor is not None:
                self.monitor.on_yield(task, now)
            task.run_start = None
        self.scheduler.on_yield(task, now)
        if new_state is TaskState.READY:
            self.release_to_ready(task)
        else:
            task.state = new_state
        if self.running is task:
            self.running = None
        self.dispatch_if_idle()

    # ------------------------------------------------------------------
    # blocking protocol (generators driven by task processes)
    # ------------------------------------------------------------------

    def wait_until_running(self, task):
        """Block the calling process until ``task`` owns the CPU.

        Accounts context switches and, when configured, consumes the
        modeled switch overhead before the task's execution resumes.
        """
        while True:
            while self.running is not task:
                if task.killed:
                    raise TaskKilled(task.name)
                yield task.dispatch_wait
            if task.killed:
                raise TaskKilled(task.name)
            previous = self.last_occupant
            if previous is not task:
                if previous is not None:
                    self.metrics.context_switches += 1
                    self.trace.record(
                        self.sim.now, "sched", self.name, "switch",
                        frm=previous.name, to=task.name,
                    )
                self.last_occupant = task
                if self.switch_overhead and previous is not None:
                    started = self.sim.now
                    yield WaitFor(self.switch_overhead)
                    self.metrics.overhead_time += self.sim.now - started
                    if self.running is not task:
                        # preempted during the switch itself (immediate
                        # mode): queue up again
                        continue
            break
        task.run_start = self.sim.now
        if self.monitor is not None:
            self.monitor.on_dispatch(task)

    def schedule_point(self, task):
        """Scheduling point reached by the running task (generator)."""
        if task.killed:
            raise TaskKilled(task.name)
        if self.running is not task:
            # lost the CPU asynchronously (immediate mode)
            yield from self.wait_until_running(task)
            return
        scheduler = self.scheduler
        now = self.sim.now
        candidate = scheduler.peek(now)
        if candidate is None:
            if not scheduler.expired(task, now):
                return
            # server budget exhausted and nothing else eligible: the
            # CPU idles until the next replenishment (the supply model
            # the analysis assumes — no silent budget overdraft)
            task.stats.preemptions += 1
            self.metrics.preemptions += 1
            self.trace.record(
                now, "sched", self.name, "preempt",
                task=task.name, by="budget",
            )
            self.yield_cpu(task, TaskState.READY)
            yield from self.wait_until_running(task)
            return
        if not scheduler.preempts(candidate, task, now):
            return
        task.stats.preemptions += 1
        self.metrics.preemptions += 1
        self.trace.record(
            self.sim.now, "sched", self.name, "preempt",
            task=task.name, by=candidate.name,
        )
        self.yield_cpu(task, TaskState.READY)
        yield from self.wait_until_running(task)

    def resched(self, current):
        """Rescheduling decision after a state change (generator).

        ``current`` is the task bound to the calling process, or None for
        ISR/bootstrap contexts.
        """
        if current is not None and current is self.running:
            yield from self.schedule_point(current)
        else:
            self.resched_from_outside()

    def resched_from_outside(self):
        """Scheduling decision from ISR/timer/bootstrap context."""
        if self.running is None:
            self.dispatch_if_idle()
            return
        running = self.running
        candidate = self.scheduler.peek(self.sim.now)
        if candidate is None or not self.scheduler.preempts(candidate, running, self.sim.now):
            return
        if self.preemption == "immediate":
            running.stats.preemptions += 1
            self.metrics.preemptions += 1
            self.trace.record(
                self.sim.now, "sched", self.name, "preempt",
                task=running.name, by=candidate.name,
            )
            self.yield_cpu(running, TaskState.READY)
            running.preempt_evt.fire(self.sim)
        # step mode: the running task switches at its next scheduling
        # point (paper: t4 -> t4', Figure 8(b))

    def preempt_running(self, by="budget"):
        """Force the running task off the CPU (immediate mode only).

        Unlike :meth:`resched_from_outside` this does not require a
        better-keyed candidate: the hierarchical scheduler calls it when
        the running task's server exhausts its budget, at which point the
        task must stop even if nothing else is ready. The task re-enters
        the ready queue and competes again once its server replenishes.
        """
        running = self.running
        if running is None:
            return
        running.stats.preemptions += 1
        self.metrics.preemptions += 1
        self.trace.record(
            self.sim.now, "sched", self.name, "preempt",
            task=running.name, by=by,
        )
        self.yield_cpu(running, TaskState.READY)
        running.preempt_evt.fire(self.sim)
