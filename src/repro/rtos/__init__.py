"""The abstract RTOS model of the paper (its core contribution).

Public surface:

* :class:`~repro.rtos.model.RTOSModel` — the Figure-4 interface.
* :mod:`repro.rtos.sched` — scheduling policies and the
  ``start(sched_alg)`` constants.
* :data:`~repro.rtos.task.PERIODIC` / :data:`~repro.rtos.task.APERIODIC`
  task types, :class:`~repro.rtos.task.Task` handles.
* :class:`~repro.rtos.errors.TaskKilled` control-flow signal.
* The composable OS services behind the facade —
  :class:`~repro.rtos.dispatch.Dispatcher`,
  :class:`~repro.rtos.taskmgr.TaskManager`,
  :class:`~repro.rtos.eventmgr.EventManager`,
  :class:`~repro.rtos.timemgr.TimeManager` — for models that need a
  custom OS composition.
"""

from repro.rtos.dispatch import Dispatcher
from repro.rtos.errors import RTOSError, TaskKilled
from repro.rtos.eventmgr import EventManager
from repro.rtos.taskmgr import TaskManager
from repro.rtos.timemgr import TimeManager
from repro.rtos.events import RTOSEvent
from repro.rtos.metrics import RTOSMetrics
from repro.rtos.model import RTOSModel
from repro.rtos.sched import (
    EDF,
    FIFO,
    RMS,
    SCHED_EDF,
    SCHED_FIFO,
    SCHED_PRIORITY,
    SCHED_PRIORITY_NP,
    SCHED_RMS,
    SCHED_RR,
    Component,
    ComponentStats,
    FixedPriority,
    HierarchicalScheduler,
    RoundRobin,
    Scheduler,
    make_scheduler,
)
from repro.rtos.task import (
    APERIODIC,
    DEFAULT_PRIORITY,
    PERIODIC,
    Task,
    TaskState,
    TaskStats,
)

__all__ = [
    "APERIODIC",
    "Component",
    "ComponentStats",
    "DEFAULT_PRIORITY",
    "Dispatcher",
    "EDF",
    "EventManager",
    "FIFO",
    "FixedPriority",
    "HierarchicalScheduler",
    "PERIODIC",
    "RMS",
    "RoundRobin",
    "RTOSError",
    "RTOSEvent",
    "RTOSMetrics",
    "RTOSModel",
    "SCHED_EDF",
    "SCHED_FIFO",
    "SCHED_PRIORITY",
    "SCHED_PRIORITY_NP",
    "SCHED_RMS",
    "SCHED_RR",
    "Scheduler",
    "Task",
    "TaskKilled",
    "TaskManager",
    "TaskState",
    "TaskStats",
    "TimeManager",
    "make_scheduler",
]
