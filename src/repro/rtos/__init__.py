"""The abstract RTOS model of the paper (its core contribution).

Public surface:

* :class:`~repro.rtos.model.RTOSModel` — the Figure-4 interface.
* :mod:`repro.rtos.sched` — scheduling policies and the
  ``start(sched_alg)`` constants.
* :data:`~repro.rtos.task.PERIODIC` / :data:`~repro.rtos.task.APERIODIC`
  task types, :class:`~repro.rtos.task.Task` handles.
* :class:`~repro.rtos.errors.TaskKilled` control-flow signal.
"""

from repro.rtos.errors import RTOSError, TaskKilled
from repro.rtos.events import RTOSEvent
from repro.rtos.metrics import RTOSMetrics
from repro.rtos.model import RTOSModel
from repro.rtos.sched import (
    EDF,
    FIFO,
    RMS,
    SCHED_EDF,
    SCHED_FIFO,
    SCHED_PRIORITY,
    SCHED_PRIORITY_NP,
    SCHED_RMS,
    SCHED_RR,
    FixedPriority,
    RoundRobin,
    Scheduler,
    make_scheduler,
)
from repro.rtos.task import (
    APERIODIC,
    DEFAULT_PRIORITY,
    PERIODIC,
    Task,
    TaskState,
    TaskStats,
)

__all__ = [
    "APERIODIC",
    "DEFAULT_PRIORITY",
    "EDF",
    "FIFO",
    "FixedPriority",
    "PERIODIC",
    "RMS",
    "RoundRobin",
    "RTOSError",
    "RTOSEvent",
    "RTOSMetrics",
    "RTOSModel",
    "SCHED_EDF",
    "SCHED_FIFO",
    "SCHED_PRIORITY",
    "SCHED_PRIORITY_NP",
    "SCHED_RMS",
    "SCHED_RR",
    "Scheduler",
    "Task",
    "TaskKilled",
    "TaskState",
    "TaskStats",
    "make_scheduler",
]
