"""The task-management OS service (paper Figure 4, *task management*).

Owns the task control blocks of one PE and implements every Figure-4
call that creates, activates, suspends or terminates tasks, plus the
beyond-paper ``task_fork`` / ``task_join`` pair used by the refinement of
SLDL ``Fork``/``Join`` commands. All CPU handover goes through the
:class:`~repro.rtos.dispatch.Dispatcher`; event enrollments of killed
tasks are cleaned up through the
:class:`~repro.rtos.eventmgr.EventManager`.
"""

import itertools

from repro.rtos.errors import RTOSError, TaskKilled
from repro.rtos.task import (
    APERIODIC,
    DEFAULT_PRIORITY,
    PERIODIC,
    Task,
    TaskState,
)


class TaskManager:
    """Task lifecycle service of one PE's RTOS model."""

    __slots__ = ("sim", "trace", "metrics", "name", "dispatcher", "events",
                 "tasks", "by_process", "obs", "monitor", "spans", "mc",
                 "_uid_seq")

    def __init__(self, sim, trace, metrics, name, dispatcher):
        self.sim = sim
        self.trace = trace
        self.metrics = metrics
        self.name = name
        self.dispatcher = dispatcher
        #: wired by the facade: the PE's EventManager (kill-time detach)
        self.events = None
        self.tasks = []
        self.by_process = {}
        #: per-model uid counter: task uids depend only on creation order
        #: *within* this model, never on other models in the process
        self._uid_seq = itertools.count()
        #: optional RTOSObs instrument bundle (RTOSModel.observe)
        self.obs = None
        #: optional FailureMonitor (RTOSModel.task_watch), same guard
        self.monitor = None
        #: span-source arming (RTOSModel.trace_spans): truthy adds the
        #: completion/overrun-release records and create metadata the
        #: span builder needs; None keeps traces byte-identical
        self.spans = None
        #: optional MC controller (RTOSModel.mc_configure), same guard:
        #: intercepts periodic releases to degrade LO tasks in raised
        #: criticality modes
        self.mc = None

    def _observe_response(self, task, response):
        """Record one response time in both stat layers."""
        task.stats.response_times.append(response)
        if self.obs is not None:
            self.obs.response(task.name).observe(response)

    def reset(self):
        """Drop all task state (RTOSModel.init)."""
        self.tasks = []
        self.by_process = {}
        self._uid_seq = itertools.count()

    # ------------------------------------------------------------------
    # Figure-4 calls
    # ------------------------------------------------------------------

    def create(self, name, tasktype, period, wcet, priority=None, rel_deadline=None):
        """Allocate a task control block; returns the task handle."""
        if tasktype not in (PERIODIC, APERIODIC):
            raise RTOSError(f"unknown task type: {tasktype!r}")
        if tasktype == PERIODIC and period <= 0:
            raise RTOSError(f"periodic task {name!r} needs a positive period")
        if priority is None:
            priority = DEFAULT_PRIORITY
        task = Task(name, tasktype, period, wcet, priority, rel_deadline,
                    uid=next(self._uid_seq))
        self.tasks.append(task)
        if self.spans is None:
            self.trace.record(self.sim.now, "task", name, "create")
        else:
            self.trace.record(
                self.sim.now, "task", name, "create", kind=tasktype,
                period=period, wcet=wcet, priority=priority,
                **({} if rel_deadline is None else {"deadline": rel_deadline}),
            )
        return task

    def activate(self, tid):
        """Activate a task (generator): self-activation binds and blocks
        until dispatched; activating another readies it."""
        current = self.current_task()
        process = self.sim._current
        if tid.process is None and current is None:
            # self-activation: first RTOS contact of this task's process
            if process is None:
                raise RTOSError("task_activate outside of a process")
            tid.process = process
            self.by_process[process.uid] = tid
            if tid.state is TaskState.NEW:
                self._release_task(tid)
            self.dispatcher.dispatch_if_idle()
            yield from self.dispatcher.wait_until_running(tid)
            return
        if tid.state in (TaskState.SLEEPING, TaskState.NEW):
            self._release_task(tid)
            yield from self.dispatcher.resched(current)
            return
        if tid.state is TaskState.TERMINATED:
            raise RTOSError(f"cannot activate terminated task {tid.name!r}")
        # already ready/running/waiting: activation is a no-op

    def terminate(self):
        """Terminate the calling task (generator); does not return the CPU
        to the caller."""
        task = yield from self.enter()
        if task.activation_time is not None:
            if not task.is_periodic:
                self._observe_response(
                    task, self.sim.now - task.activation_time
                )
            elif task.worked_since_release:
                # final (incomplete) cycle of a periodic task that
                # terminates mid-cycle: record it against the release,
                # like task_endcycle does for completed cycles
                self._observe_response(
                    task, self.sim.now - task.release_time
                )
        self.trace.record(self.sim.now, "task", task.name, "terminate")
        self._wake_joiners(task)
        self.dispatcher.yield_cpu(task, TaskState.TERMINATED)

    def sleep(self):
        """Suspend the calling task until someone ``task_activate``-s it."""
        task = yield from self.enter()
        self.trace.record(self.sim.now, "task", task.name, "sleep")
        self.dispatcher.yield_cpu(task, TaskState.SLEEPING)
        yield from self.dispatcher.wait_until_running(task)

    def endcycle(self):
        """End the current execution cycle of the calling task."""
        task = yield from self.enter()
        now = self.sim.now
        monitor = self.monitor
        task.stats.cycles_completed += 1
        if task.is_periodic:
            self._observe_response(task, now - task.release_time)
            deadline = task.abs_deadline
            if deadline is not None and now > deadline:
                # the monitor's deadline watchdog already counted this
                # miss eagerly when the deadline expired; don't double up
                if monitor is None or not monitor.consume_miss(task):
                    task.stats.deadline_misses += 1
                    self.metrics.deadline_misses += 1
                    self.trace.record(now, "task", task.name, "deadline_miss")
            next_release = task.release_time + task.period
            if monitor is not None:
                next_release = monitor.adjust_release(task, now, next_release)
            if self.mc is not None:
                next_release = self.mc.adjust_release(task, now, next_release)
            if next_release <= now:
                # overrun: the next instance is already due
                release = task.release_time
                self._set_release(task, next_release)
                if self.spans is not None:
                    # span sources: completion edge, then the release
                    # edge no timer will fire for (already due)
                    self.trace.record(now, "task", task.name, "endcycle",
                                      release=release)
                    self.trace.record(now, "task", task.name, "release",
                                      at=next_release)
                yield from self.dispatcher.schedule_point(task)
                return
            release = task.release_time
            self.dispatcher.yield_cpu(task, TaskState.IDLE_PERIOD)
            if self.spans is not None:
                # after yield_cpu so the cycle's final execution segment
                # precedes the completion edge in the stream
                self.trace.record(now, "task", task.name, "endcycle",
                                  release=release)
            self.sim.schedule_at(
                next_release, lambda: self._periodic_release(task, next_release)
            )
            yield from self.dispatcher.wait_until_running(task)
        else:
            release = task.release_time
            self.dispatcher.yield_cpu(task, TaskState.SLEEPING)
            if self.spans is not None:
                self.trace.record(now, "task", task.name, "endcycle",
                                  release=release)
            yield from self.dispatcher.wait_until_running(task)

    def kill(self, tid):
        """Forcibly terminate another task (generator)."""
        task = yield from self.enter()
        if tid is task:
            # self-kill: unwind via TaskKilled so execution stops here
            # (the task_body wrapper finalizes the bookkeeping)
            raise TaskKilled(task.name)
        if tid.state is TaskState.TERMINATED:
            return
        self.condemn(tid)

    def condemn(self, tid):
        """Condemn ``tid`` to unwind via :class:`TaskKilled` (plain call).

        The non-generator core of :meth:`kill`, also callable from
        ISR/timer-callback context — fault injection (``task_crash``)
        and watchdog ``kill`` policies reap tasks through this.
        """
        if tid.state is TaskState.TERMINATED:
            return
        tid.killed = True
        self.dispatcher.scheduler.remove(tid)
        self.events.detach(tid)
        if tid.join_target is not None:
            # the victim was blocked joining someone: unhook it so the
            # target's termination does not touch a dead TCB
            try:
                tid.join_target.joiners.remove(tid)
            except ValueError:
                pass
            tid.join_target = None
        self.trace.record(self.sim.now, "task", tid.name, "kill")
        # wake the victim wherever it blocks so it can unwind
        tid.dispatch_evt.fire(self.sim)
        tid.preempt_evt.fire(self.sim)

    def par_start(self):
        """Suspend the calling (parent) task before forking children."""
        task = yield from self.enter()
        self.trace.record(self.sim.now, "task", task.name, "par_start")
        self.dispatcher.yield_cpu(task, TaskState.PARENT_WAIT)
        return task

    def par_end(self, parent=None):
        """Resume the calling parent task after its ``par`` joined."""
        task = self.current_task()
        if task is None:
            raise RTOSError("par_end outside of a task")
        if parent is not None and parent is not task:
            raise RTOSError("par_end called with a foreign task handle")
        if task.killed:
            raise TaskKilled(task.name)
        self.trace.record(self.sim.now, "task", task.name, "par_end")
        task.state = TaskState.READY
        self.dispatcher.scheduler.on_ready(task, self.sim.now)
        self.dispatcher.resched_from_outside()
        yield from self.dispatcher.wait_until_running(task)

    # ------------------------------------------------------------------
    # fork / join (beyond-paper: full SLDL command set, Figure-4 style)
    # ------------------------------------------------------------------

    def fork(self, tid):
        """Release a child task from the calling task (generator).

        The dynamic counterpart of an SLDL ``Fork``: the child's process
        is spawned by the caller at the SLDL level; ``fork`` makes the
        child's TCB ready *now* so the scheduler — not spawn order —
        decides who runs. The caller keeps the CPU until this scheduling
        point decides otherwise. Returns ``tid`` as the join handle.
        """
        task = yield from self.enter()
        if tid.state is TaskState.TERMINATED:
            raise RTOSError(f"cannot fork terminated task {tid.name!r}")
        if tid.state is TaskState.NEW:
            self._release_task(tid)
        self.trace.record(self.sim.now, "task", task.name, "fork", child=tid.name)
        yield from self.dispatcher.resched(task)
        return tid

    def join(self, targets):
        """Block the calling task until the target task(s) terminated.

        The dynamic counterpart of an SLDL ``Join``. Accepts one task or
        an iterable of tasks; returns once all of them reached
        ``TERMINATED`` (tasks killed while joined-on count as terminated).
        """
        task = yield from self.enter()
        if isinstance(targets, Task):
            targets = (targets,)
        for target in targets:
            if target is task:
                raise RTOSError(f"task {task.name!r} cannot join itself")
            while target.state is not TaskState.TERMINATED:
                task.worked_since_release = True
                target.joiners.append(task)
                task.join_target = target
                self.trace.record(
                    self.sim.now, "task", task.name, "join", on=target.name
                )
                self.dispatcher.yield_cpu(task, TaskState.WAITING)
                yield from self.dispatcher.wait_until_running(task)
                task.join_target = None

    def _wake_joiners(self, task):
        """Ready every task blocked in ``join`` on ``task``'s termination.

        Called with the terminating task still holding the CPU, so the
        joiners land in the ready queue before the dispatch decision in
        ``yield_cpu`` picks a successor.
        """
        if not task.joiners:
            return
        for joiner in task.joiners:
            if joiner.state is TaskState.WAITING and joiner.join_target is task:
                joiner.join_target = None
                self.dispatcher.release_to_ready(joiner)
        task.joiners = []

    # ------------------------------------------------------------------
    # wrappers / shared entry protocol
    # ------------------------------------------------------------------

    def current_task(self):
        """Task bound to the calling process (None in ISR context)."""
        process = self.sim._current
        if process is None:
            return None
        return self.by_process.get(process.uid)

    def enter(self):
        """Entry protocol of blocking RTOS calls (generator).

        Ensures the caller is a bound task and owns the CPU; a task that
        was asynchronously preempted (immediate mode) between calls first
        waits to be re-dispatched.
        """
        task = self.current_task()
        if task is None:
            raise RTOSError("RTOS call from a process that is not a task")
        if task.killed:
            raise TaskKilled(task.name)
        if self.dispatcher.running is not task:
            yield from self.dispatcher.wait_until_running(task)
        return task

    def finalize_killed(self, task):
        """Clean up a task whose process unwound via TaskKilled."""
        self._wake_joiners(task)
        if task.run_start is not None:
            self.dispatcher.yield_cpu(task, TaskState.TERMINATED)
        else:
            task.state = TaskState.TERMINATED
            if self.dispatcher.running is task:
                self.dispatcher.running = None
                self.dispatcher.dispatch_if_idle()
        self.trace.record(self.sim.now, "task", task.name, "killed")

    # ------------------------------------------------------------------
    # release bookkeeping
    # ------------------------------------------------------------------

    def _release_task(self, task):
        """First (or re-) activation bookkeeping + ready insertion."""
        now = self.sim.now
        if task.activation_time is None:
            task.activation_time = now
            task.stats.activations += 1
            self._set_release(task, now)
        else:
            task.stats.activations += 1
        task.killed = False
        self.dispatcher.release_to_ready(task)
        self.trace.record(now, "task", task.name, "activate")

    def _set_release(self, task, release_time):
        task.release_time = release_time
        task.release_seq += 1
        task.worked_since_release = False
        if task.is_periodic:
            deadline = task.rel_deadline if task.rel_deadline is not None else task.period
            task.abs_deadline = release_time + deadline
        elif task.rel_deadline is not None:
            task.abs_deadline = release_time + task.rel_deadline
        if self.monitor is not None:
            self.monitor.on_release(task)

    def _periodic_release(self, task, release_time):
        """Timer callback releasing the next instance of a periodic task."""
        if task.killed or task.state is not TaskState.IDLE_PERIOD:
            return
        if self.mc is not None and self.mc.suppress_release(task, release_time):
            # degraded in a raised criticality mode: the MC controller
            # swallowed this release and keeps the release chain alive
            return
        self._set_release(task, release_time)
        self.dispatcher.release_to_ready(task)
        self.trace.record(self.sim.now, "task", task.name, "release")
        self.dispatcher.resched_from_outside()
