"""Dynamic-scheduling refinement: unscheduled model → architecture model.

* :class:`~repro.refinement.auto.DynamicSchedulingRefinement` — the
  automatic tool (command-level translation of unchanged behaviors).
* :mod:`repro.refinement.manual` — the Figure 5–7 steps as helpers.
* :class:`~repro.refinement.spec.RefinementSpec` — per-task parameters.
"""

from repro.refinement.auto import DynamicSchedulingRefinement, RefinementError
from repro.refinement.manual import par_tasks, refine_channel, task_frame
from repro.refinement.spec import RefinementSpec, TaskParams

__all__ = [
    "DynamicSchedulingRefinement",
    "RefinementError",
    "RefinementSpec",
    "TaskParams",
    "par_tasks",
    "refine_channel",
    "task_frame",
]
