"""Automatic dynamic-scheduling refinement (paper Section 4.2).

The paper refines the unscheduled specification model into the
architecture model by replacing SLDL primitives with RTOS-model calls
(Figures 5–7) and reports "a tool that performs the refinement of
unscheduled specification models into RTOS-based architecture models
automatically".

This module is the executable analog of that tool. Instead of rewriting
source text, it interprets the *same* application generators and
translates every SLDL command they yield into the corresponding RTOS
call, at run time:

====================  ==========================================
specification yields  architecture model executes
====================  ==========================================
``WaitFor(d)``        ``os.time_wait(d)``
``Wait(e)``           ``os.event_wait(map(e))``
``Notify(e, ...)``    ``os.event_notify(map(e))`` for each event
``Par(c1, c2)``       ``os.par_start()``; children refined into
                      tasks and forked; ``os.par_end()``
====================  ==========================================

SLDL events are mapped one-to-one onto RTOS events (``event_new``),
shared across all tasks and ISRs refined by the same instance — so
specification channels (which synchronize through events) work
unchanged inside the refined model.

Unsupported constructs (``Fork``/``Join``, wait-any over several
events, waits with timeouts) raise :class:`RefinementError`: the RTOS
interface of Figure 4 has no counterpart for them, exactly as in the
paper — such specs must be restructured or refined manually.
"""

from repro.kernel.commands import Fork, Join, Notify, Par, Wait, WaitFor
from repro.rtos.errors import RTOSError


class RefinementError(RTOSError):
    """The specification uses a construct the RTOS interface lacks."""


class DynamicSchedulingRefinement:
    """Refines behaviors of one PE onto that PE's RTOS model.

    One instance per PE; it owns the SLDL-event → RTOS-event mapping so
    tasks and ISRs of the PE agree on the refined events.
    """

    def __init__(self, os_model, spec=None):
        from repro.refinement.spec import RefinementSpec

        self.os = os_model
        self.spec = spec if spec is not None else RefinementSpec()
        self.event_map = {}
        self.tasks = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def refine_task(self, runnable, name=None):
        """Refine a behavior/generator into a complete RTOS task.

        Returns ``(process_generator, task)``: spawn the generator on
        the kernel (or include it in a ``par``); the task handle gives
        access to statistics.
        """
        gen, name = self._as_gen(runnable, name)
        task = self._create_task(name)
        wrapped = self.os.task_body(task, self._translate(gen, task))
        return wrapped, task

    def refine_isr(self, handler_factory, name=None):
        """Refine an interrupt service routine.

        The returned factory produces generators in which SLDL
        notifications are RTOS notifications and which end with
        ``interrupt_return`` — the ISR refinement of Figure 3(b).
        Register it with the PE's interrupt controller.
        """

        def _factory():
            gen, _ = self._as_gen(handler_factory(), name)
            yield from self._translate_isr(gen)
            self.os.interrupt_return()

        return _factory

    def map_event(self, sldl_event):
        """RTOS event standing in for ``sldl_event`` (created on demand)."""
        rtos_event = self.event_map.get(sldl_event.uid)
        if rtos_event is None:
            rtos_event = self.os.event_new(sldl_event.name)
            self.event_map[sldl_event.uid] = rtos_event
        return rtos_event

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------

    def _create_task(self, name):
        params = self.spec.params_for(name, len(self.tasks))
        task = self.os.task_create(
            name,
            params.tasktype,
            params.period,
            params.wcet,
            priority=params.priority,
            rel_deadline=params.rel_deadline,
        )
        self.tasks.append(task)
        return task

    def _translate(self, gen, task):
        """Drive ``gen``, replacing each SLDL command with RTOS calls."""
        send_value = None
        while True:
            try:
                command = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            send_value = yield from self._execute(command, task)

    def _execute(self, command, task):
        if isinstance(command, WaitFor):
            yield from self.os.time_wait(command.delay)
            return None
        if isinstance(command, Notify):
            for event in command.events:
                yield from self.os.event_notify(self.map_event(event))
            return None
        if isinstance(command, Wait):
            if len(command.events) != 1 or command.timeout is not None:
                raise RefinementError(
                    "the RTOS interface has no wait-any/timeout; "
                    f"cannot refine {command!r}"
                )
            event = command.events[0]
            yield from self.os.event_wait(self.map_event(event))
            return event
        if isinstance(command, Par):
            yield from self._refine_par(command, task)
            return None
        if isinstance(command, (Fork, Join)):
            raise RefinementError(
                f"{type(command).__name__} has no RTOS-interface "
                "counterpart; use par or refine manually"
            )
        raise RefinementError(f"cannot refine unknown command {command!r}")

    def _refine_par(self, command, parent_task):
        """Figure 6: dynamic fork/join of child tasks."""
        children = []
        for i, child in enumerate(command.children):
            gen, name = self._as_gen(child, None)
            if name is None:
                name = f"{parent_task.name}.child{i}"
            child_task = self._create_task(name)
            children.append(self.os.task_body(child_task, self._translate(gen, child_task)))
        yield from self.os.par_start()
        yield Par(*children)
        yield from self.os.par_end()

    def _translate_isr(self, gen):
        """ISR context: translate notifications; reject blocking waits.

        ISRs may consume SLDL time (hardware latency) but must not block
        on RTOS events — interrupt handlers cannot sleep.
        """
        send_value = None
        while True:
            try:
                command = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            if isinstance(command, Notify):
                for event in command.events:
                    yield from self.os.event_notify(self.map_event(event))
                send_value = None
            elif isinstance(command, WaitFor):
                yield command
                send_value = None
            else:
                raise RefinementError(
                    f"ISR may not block: cannot refine {command!r} in ISR"
                )

    @staticmethod
    def _as_gen(runnable, name):
        if hasattr(runnable, "main"):
            return runnable.main(), name or getattr(runnable, "name", None)
        if hasattr(runnable, "send"):
            return runnable, name
        if callable(runnable):
            return runnable(), name or getattr(runnable, "__name__", None)
        raise TypeError(f"cannot refine {runnable!r}")
