"""Automatic dynamic-scheduling refinement (paper Section 4.2).

The paper refines the unscheduled specification model into the
architecture model by replacing SLDL primitives with RTOS-model calls
(Figures 5–7) and reports "a tool that performs the refinement of
unscheduled specification models into RTOS-based architecture models
automatically".

This module is the executable analog of that tool. Instead of rewriting
source text, it interprets the *same* application generators and
translates every SLDL command they yield into the corresponding RTOS
call, at run time:

=======================  ==========================================
specification yields     architecture model executes
=======================  ==========================================
``WaitFor(d)``           ``os.time_wait(d)``
``Wait(e)``              ``os.event_wait(map(e))``
``Wait(e, timeout=t)``   ``os.event_wait(map(e), timeout=t)``
``Wait(e1, e2, ...)``    ``os.event_wait_any(map(e1), map(e2), ...)``
``Wait(timeout=t)``      ``os.time_wait(t)`` (pure timed sleep)
``Notify(e, ...)``       ``os.event_notify(map(e))`` for each event
``Now()``                passed through (reads the simulation clock)
``Par(c1, c2)``          ``os.par_start()``; children refined into
                         tasks and forked; ``os.par_end()``
``Fork(c)``              child refined into a task, spawned, released
                         via ``os.task_fork``; evaluates to the Task
``Join(h)``              ``os.task_join(h)`` on the Task from Fork
=======================  ==========================================

SLDL events are mapped one-to-one onto RTOS events (``event_new``),
shared across all tasks and ISRs refined by the same instance — so
specification channels (which synchronize through events) work
unchanged inside the refined model. Multi-event and timed waits resolve
to the *same* spec-level values as the unscheduled model: the SLDL event
that fired (reverse-mapped from the RTOS event) or the kernel's
:data:`~repro.kernel.commands.TIMEOUT` sentinel.

A ``Join`` on anything but a Fork-produced task handle, blocking waits
inside ISRs, and unknown commands raise :class:`RefinementError` — such
specs must be restructured or refined manually.
"""

from repro.kernel.commands import TIMEOUT, Fork, Join, Notify, Now, Par, Wait, WaitFor
from repro.rtos.errors import RTOSError
from repro.rtos.task import Task


class RefinementError(RTOSError):
    """The specification uses a construct the RTOS interface lacks."""


class DynamicSchedulingRefinement:
    """Refines behaviors of one PE onto that PE's RTOS model.

    One instance per PE; it owns the SLDL-event → RTOS-event mapping so
    tasks and ISRs of the PE agree on the refined events.
    """

    def __init__(self, os_model, spec=None):
        from repro.refinement.spec import RefinementSpec

        self.os = os_model
        self.spec = spec if spec is not None else RefinementSpec()
        self.event_map = {}
        #: RTOS-event uid → SLDL event, to hand wait-any wake-ups back to
        #: the specification code in its own vocabulary
        self.rev_event_map = {}
        self.tasks = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def refine_task(self, runnable, name=None):
        """Refine a behavior/generator into a complete RTOS task.

        Returns ``(process_generator, task)``: spawn the generator on
        the kernel (or include it in a ``par``); the task handle gives
        access to statistics.
        """
        gen, name = self._as_gen(runnable, name)
        task = self._create_task(name)
        wrapped = self.os.task_body(task, self._translate(gen, task))
        return wrapped, task

    def refine_isr(self, handler_factory, name=None):
        """Refine an interrupt service routine.

        The returned factory produces generators in which SLDL
        notifications are RTOS notifications and which end with
        ``interrupt_return`` — the ISR refinement of Figure 3(b).
        Register it with the PE's interrupt controller.
        """

        def _factory():
            gen, _ = self._as_gen(handler_factory(), name)
            yield from self._translate_isr(gen)
            self.os.interrupt_return()

        return _factory

    def map_event(self, sldl_event):
        """RTOS event standing in for ``sldl_event`` (created on demand)."""
        rtos_event = self.event_map.get(sldl_event.uid)
        if rtos_event is None:
            rtos_event = self.os.event_new(sldl_event.name)
            self.event_map[sldl_event.uid] = rtos_event
            self.rev_event_map[rtos_event.uid] = sldl_event
        return rtos_event

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------

    def _create_task(self, name):
        params = self.spec.params_for(name, len(self.tasks))
        task = self.os.task_create(
            name,
            params.tasktype,
            params.period,
            params.wcet,
            priority=params.priority,
            rel_deadline=params.rel_deadline,
        )
        self.tasks.append(task)
        return task

    def _translate(self, gen, task):
        """Drive ``gen``, replacing each SLDL command with RTOS calls."""
        send_value = None
        while True:
            try:
                command = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            send_value = yield from self._execute(command, task)

    def _execute(self, command, task):
        if isinstance(command, WaitFor):
            yield from self.os.time_wait(command.delay)
            return None
        if isinstance(command, Notify):
            for event in command.events:
                yield from self.os.event_notify(self.map_event(event))
            return None
        if isinstance(command, Wait):
            return (yield from self._refine_wait(command))
        if isinstance(command, Now):
            return (yield command)
        if isinstance(command, Par):
            yield from self._refine_par(command, task)
            return None
        if isinstance(command, Fork):
            return (yield from self._refine_fork(command, task))
        if isinstance(command, Join):
            target = command.process
            if not isinstance(target, Task):
                raise RefinementError(
                    f"Join on {target!r}: in the refined model only task "
                    "handles produced by a refined Fork can be joined"
                )
            yield from self.os.task_join(target)
            return None
        raise RefinementError(f"cannot refine unknown command {command!r}")

    def _refine_wait(self, command):
        """Figure 7, full command set: waits in all their SLDL flavors."""
        events = command.events
        timeout = command.timeout
        if not events:
            # pure timed sleep — the Figure-4 interface models all time
            # through time_wait, so the sleep becomes a delay step
            yield from self.os.time_wait(timeout)
            return TIMEOUT
        if len(events) == 1:
            event = events[0]
            if timeout is None:
                yield from self.os.event_wait(self.map_event(event))
                return event
            woke = yield from self.os.event_wait(self.map_event(event),
                                                 timeout=timeout)
            return TIMEOUT if woke is TIMEOUT else event
        mapped = [self.map_event(e) for e in events]
        woke = yield from self.os.event_wait_any(mapped, timeout=timeout)
        if woke is TIMEOUT:
            return TIMEOUT
        return self.rev_event_map[woke.uid]

    def _refine_fork(self, command, parent_task):
        """Explicit fork: the child becomes a dynamically created task."""
        gen, name = self._as_gen(command.child, command.name)
        if name is None:
            name = f"{parent_task.name}.fork{len(self.tasks)}"
        child_task = self._create_task(name)
        wrapped = self.os.task_body(child_task,
                                    self._translate(gen, child_task))
        yield Fork(wrapped, name)
        yield from self.os.task_fork(child_task)
        return child_task

    def _refine_par(self, command, parent_task):
        """Figure 6: dynamic fork/join of child tasks."""
        children = []
        for i, child in enumerate(command.children):
            gen, name = self._as_gen(child, None)
            if name is None:
                name = f"{parent_task.name}.child{i}"
            child_task = self._create_task(name)
            children.append(self.os.task_body(child_task, self._translate(gen, child_task)))
        yield from self.os.par_start()
        yield Par(*children)
        yield from self.os.par_end()

    def _translate_isr(self, gen):
        """ISR context: translate notifications; reject blocking waits.

        ISRs may consume SLDL time (hardware latency) but must not block
        on RTOS events — interrupt handlers cannot sleep.
        """
        send_value = None
        while True:
            try:
                command = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            if isinstance(command, Notify):
                for event in command.events:
                    yield from self.os.event_notify(self.map_event(event))
                send_value = None
            elif isinstance(command, WaitFor):
                yield command
                send_value = None
            elif isinstance(command, Now):
                send_value = yield command
            else:
                raise RefinementError(
                    f"ISR may not block: cannot refine {command!r} in ISR"
                )

    @staticmethod
    def _as_gen(runnable, name):
        if hasattr(runnable, "main"):
            return runnable.main(), name or getattr(runnable, "name", None)
        if hasattr(runnable, "send"):
            return runnable, name
        if callable(runnable):
            return runnable(), name or getattr(runnable, "__name__", None)
        raise TypeError(f"cannot refine {runnable!r}")
