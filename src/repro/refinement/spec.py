"""Refinement parameters: how behaviors map onto tasks.

During dynamic-scheduling refinement, "processes inside the PEs are
converted into tasks with assigned priorities" (paper Section 3). The
designer supplies those per-task parameters here; anything not given
falls back to documented defaults.
"""

from dataclasses import dataclass

from repro.rtos.task import APERIODIC, DEFAULT_PRIORITY


@dataclass
class TaskParams:
    """Creation parameters of one refined task."""

    priority: int = DEFAULT_PRIORITY
    tasktype: int = APERIODIC
    period: int = 0
    wcet: int = 0
    rel_deadline: int | None = None


class RefinementSpec:
    """Per-task parameter table for a refinement run.

    Parameters
    ----------
    params:
        ``{task_name: TaskParams}`` for explicit control.
    priorities:
        shorthand ``{task_name: priority}`` for the common case.
    auto_priority:
        ``"order"`` assigns priorities by task-creation order (earlier
        created = more urgent) to any task without an explicit entry;
        ``None`` (default) gives them :data:`DEFAULT_PRIORITY`.
    """

    def __init__(self, params=None, priorities=None, auto_priority=None):
        if auto_priority not in (None, "order"):
            raise ValueError(f"unknown auto_priority policy: {auto_priority!r}")
        self.params = dict(params or {})
        self.priorities = dict(priorities or {})
        self.auto_priority = auto_priority

    def params_for(self, name, index):
        """Resolve the creation parameters for task ``name``.

        ``index`` is the task-creation ordinal, used by the ``order``
        auto-priority policy.
        """
        if name in self.params:
            return self.params[name]
        if name in self.priorities:
            return TaskParams(priority=self.priorities[name])
        if self.auto_priority == "order":
            return TaskParams(priority=index)
        return TaskParams()
