"""Manual refinement helpers (the Figure 5–7 steps as library calls).

The paper reports that manual refinement of the vocoder took under an
hour and changed ~1% of the code; these helpers keep a hand-refined
model equally small:

* :func:`refine_channel` — Figure 7: swap a specification channel's
  synchronization onto the RTOS model in place (its SLDL events are
  replaced by RTOS events, ``wait``/``notify`` become
  ``event_wait``/``event_notify``);
* :func:`task_frame` — Figure 5: wrap a body generator in the
  ``task_activate`` … ``task_terminate`` frame (alias of
  ``RTOSModel.task_body``);
* :func:`par_tasks` — Figure 6: the ``par_start`` / fork / ``par_end``
  sequence for dynamic child-task creation.
"""

from repro.channels.sync import RTOSSync
from repro.kernel.commands import Par
from repro.kernel.events import Event


def refine_channel(channel, os_model):
    """Refine a specification channel onto the RTOS model, in place.

    Replaces the channel's sync backend with :class:`RTOSSync` and every
    SLDL :class:`~repro.kernel.events.Event` attribute with a fresh RTOS
    event of the same name — the mechanical substitution of Figure 7.
    Returns the channel for chaining.
    """
    if getattr(channel, "_sync", None) is None:
        raise TypeError(f"{channel!r} is not a refinable channel")
    channel._sync = RTOSSync(os_model)
    for attr, value in vars(channel).items():
        if isinstance(value, Event):
            setattr(channel, attr, os_model.event_new(value.name))
    return channel


def task_frame(os_model, task, body):
    """Figure 5: enclose ``body`` in task_activate/task_terminate."""
    return os_model.task_body(task, body)


def par_tasks(os_model, *children):
    """Figure 6: fork child tasks and join them (generator).

    ``children`` are ``(task, body_generator)`` pairs; the caller must
    be a running task. Equivalent to::

        yield from os.par_start()
        par { child bodies ... }
        yield from os.par_end()
    """

    def _gen():
        wrapped = [
            os_model.task_body(task, body) for task, body in children
        ]
        yield from os_model.par_start()
        yield Par(*wrapped)
        yield from os_model.par_end()

    return _gen()
