"""repro — reproduction of "RTOS Modeling for System Level Design" (DATE'03).

Layers (bottom-up, mirroring the paper's Figure 2):

* :mod:`repro.kernel` — SpecC-like SLDL discrete-event simulation kernel.
* :mod:`repro.rtos` — the paper's abstract RTOS model (core contribution).
* :mod:`repro.channels` — communication library (spec + RTOS-refined).
* :mod:`repro.platform` — PEs, busses, drivers, interrupts.
* :mod:`repro.refinement` — unscheduled → architecture model refinement.
* :mod:`repro.synthesis` — backend: ISA/assembler/ISS + custom RTOS kernel.
* :mod:`repro.apps` — Figure-3 example and the vocoder of Table 1.
* :mod:`repro.analysis` — trace analysis, validation, LoC metrics.
* :mod:`repro.obs` — observability: trace sinks, metrics, profiler,
  Chrome-Trace export.
* :mod:`repro.faults` — deterministic fault injection, deadline/budget
  watchdogs, graceful-degradation policies, farm fault campaigns.
"""

__version__ = "1.3.0"
