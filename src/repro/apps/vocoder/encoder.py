"""Vocoder encoder: functional core + per-stage timing annotations.

The encoder is structured as named stages, each with a worst-case
execution-time budget (nanoseconds on the target DSP). The same stage
list drives every abstraction level:

* specification model — run the stage function, ``waitfor(budget)``;
* architecture model — run the stage function, ``os.time_wait(budget)``
  (the refined form of the same code);
* implementation model — the stage budgets (in cycles) parameterize the
  generated target code (see :mod:`repro.apps.vocoder.impl`).

Stage budgets total 7.5 ms per 20 ms frame — the encoder share of the
paper's 9.7 ms back-to-back transcoding delay.
"""

import numpy as np

from repro.apps.vocoder import dsp

#: (stage name, WCET in ns)
ENCODER_STAGES = (
    ("lpc_analysis", 2_000_000),
    ("pitch_search", 3_000_000),
    ("codebook_search", 2_000_000),
    ("pack", 500_000),
)

ENCODER_WCET_NS = sum(t for _, t in ENCODER_STAGES)


class EncoderCore:
    """Stateful analysis-by-synthesis encoder (one instance per stream)."""

    def __init__(self):
        self.history = np.zeros(dsp.LPC_ORDER)
        self.past_excitation = np.zeros(dsp.MAX_LAG + dsp.FRAME_LEN)
        self._scratch = {}

    def stages(self, index, frame):
        """Yield ``(name, budget_ns, fn)`` for one frame; calling every
        ``fn()`` in order produces the :class:`~repro.apps.vocoder.dsp.
        EncodedFrame` from the last one."""
        scratch = {}

        def lpc_analysis():
            r = dsp.autocorrelation(frame)
            a, _, _ = dsp.levinson_durbin(r)
            scratch["a"] = dsp.quantize(a, 1 / 512)
            scratch["residual"] = dsp.lpc_residual(
                frame, scratch["a"], self.history
            )

        def pitch_search():
            lag, gain = dsp.pitch_search(
                scratch["residual"], self.past_excitation
            )
            scratch["lag"] = lag
            scratch["pitch_gain"] = float(dsp.quantize([gain], 1 / 64)[0])
            adaptive = scratch["pitch_gain"] * dsp._delayed_excitation(
                self.past_excitation, lag, len(frame)
            )
            scratch["target"] = scratch["residual"] - adaptive
            scratch["adaptive"] = adaptive

        def codebook_search():
            positions, signs, gain = dsp.codebook_search(scratch["target"])
            scratch["positions"] = positions
            scratch["signs"] = signs
            scratch["gain"] = float(dsp.quantize([gain], 1 / 128)[0])

        def pack():
            encoded = dsp.EncodedFrame(
                index=index,
                lpc=scratch["a"],
                lag=scratch["lag"],
                pitch_gain=scratch["pitch_gain"],
                positions=scratch["positions"],
                signs=scratch["signs"],
                gain=scratch["gain"],
            )
            # local decode to keep the adaptive codebook in sync with
            # the decoder (closed-loop structure)
            excitation = dsp.build_excitation(
                len(frame), encoded.lag, encoded.pitch_gain,
                self.past_excitation, encoded.positions, encoded.signs,
                encoded.gain,
            )
            self.past_excitation = np.concatenate(
                [self.past_excitation, excitation]
            )[-len(self.past_excitation):]
            self.history = frame[-dsp.LPC_ORDER:].copy()
            scratch["encoded"] = encoded

        fns = {
            "lpc_analysis": lpc_analysis,
            "pitch_search": pitch_search,
            "codebook_search": codebook_search,
            "pack": pack,
        }
        for name, budget in ENCODER_STAGES:
            yield name, budget, fns[name]
        self._scratch = scratch

    def result(self):
        """EncodedFrame produced by the last completed stage sequence."""
        return self._scratch["encoded"]

    def encode(self, index, frame):
        """Pure functional encode (no timing) — for tests and the
        implementation model's reference data."""
        for _, _, fn in self.stages(index, frame):
            fn()
        return self.result()
