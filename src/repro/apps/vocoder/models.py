"""The vocoder at the specification and architecture levels.

Structure of the case study (paper Section 5): encoder and decoder run
as two software tasks; frames arrive every 20 ms; *back-to-back mode*
feeds the encoder's bitstream directly into the decoder. The measured
transcoding delay — frame arrival to decoded output — is the paper's
response-time metric.

* **Specification model** (:func:`run_specification`): source, encoder
  and decoder as concurrent SLDL behaviors; purely data-driven.
* **Architecture model** (:func:`run_architecture`): one DSP with an
  RTOS model; frames arrive by interrupt (ISR → semaphore → encoder
  task); the decoder is a *periodic* task phase-aligned to the 20 ms
  output (D/A) clock at +10 ms — output pacing a deployed vocoder needs,
  and the source of the architecture model's larger transcoding delay.
* The **implementation model** lives in
  :mod:`repro.apps.vocoder.impl` (generated code on the ISS).
"""

import time
from dataclasses import dataclass, field

from repro.apps.vocoder.decoder import DECODER_WCET_NS, DecoderCore
from repro.apps.vocoder.dsp import snr_db
from repro.apps.vocoder.encoder import ENCODER_WCET_NS, EncoderCore
from repro.apps.vocoder.frames import FRAME_PERIOD_NS, speech_frames
from repro.channels import Queue, RTOSQueue, RTOSSemaphore
from repro.kernel import Simulator, WaitFor
from repro.platform import InterruptController, IrqLine
from repro.rtos import APERIODIC, PERIODIC, RTOSModel

#: decoder release phase relative to the frame clock (output alignment)
DECODER_PHASE_NS = 10_000_000

ENCODER_PRIORITY = 1
DECODER_PRIORITY = 2


@dataclass
class VocoderRun:
    """Results of one vocoder simulation at any abstraction level."""

    model: str
    n_frames: int
    delays_ns: list
    snrs_db: list
    context_switches: int
    host_seconds: float
    sim: object = None
    extra: dict = field(default_factory=dict)

    @property
    def mean_delay_ms(self):
        return sum(self.delays_ns) / len(self.delays_ns) / 1e6

    @property
    def max_delay_ms(self):
        return max(self.delays_ns) / 1e6

    def summary(self):
        return (
            f"{self.model}: {self.n_frames} frames, "
            f"transcoding delay {self.mean_delay_ms:.2f} ms "
            f"(max {self.max_delay_ms:.2f}), "
            f"{self.context_switches} context switches, "
            f"{self.host_seconds:.3f} s host time"
        )


def run_specification(n_frames=10, seed=2003):
    """The unscheduled specification model (Figure 2(a)): encoder and
    decoder as truly concurrent behaviors, data-driven timing."""
    started = time.perf_counter()
    sim = Simulator()
    frames = speech_frames(n_frames, seed)
    adc = Queue(capacity=n_frames + 1, name="adc")
    bitstream = Queue(capacity=4, name="bitstream")
    encoder = EncoderCore()
    decoder = DecoderCore()
    decoded = {}

    def source():
        for index, frame in enumerate(frames):
            due = index * FRAME_PERIOD_NS
            if sim.now < due:
                yield WaitFor(due - sim.now)
            sim.trace.record(sim.now, "user", "source", f"frame-in-{index}")
            yield from adc.send((index, frame))

    def encode_task():
        for _ in range(n_frames):
            index, frame = yield from adc.recv()
            for _, budget, fn in encoder.stages(index, frame):
                fn()
                yield WaitFor(budget)
            sim.trace.record(sim.now, "user", "encoder", f"encoded-{index}")
            yield from bitstream.send(encoder.result())

    def decode_task():
        for _ in range(n_frames):
            encoded = yield from bitstream.recv()
            for _, budget, fn in decoder.stages(encoded):
                fn()
                yield WaitFor(budget)
            decoded[encoded.index] = decoder.result()
            sim.trace.record(
                sim.now, "user", "decoder", f"decoded-{encoded.index}"
            )

    sim.spawn(source(), name="source")
    sim.spawn(encode_task(), name="encoder")
    sim.spawn(decode_task(), name="decoder")
    sim.run()
    delays = _delays_from_trace(sim, n_frames)
    snrs = [snr_db(frames[i], decoded[i]) for i in range(n_frames)]
    return VocoderRun(
        model="specification",
        n_frames=n_frames,
        delays_ns=delays,
        snrs_db=snrs,
        context_switches=0,
        host_seconds=time.perf_counter() - started,
        sim=sim,
    )


def run_architecture(n_frames=10, seed=2003, sched="priority",
                     preemption="step", decoder_phase_ns=DECODER_PHASE_NS,
                     switch_overhead=0):
    """The architecture model (Figure 2(b)): both tasks on one DSP under
    the RTOS model; interrupt-driven input, periodic, phase-aligned
    decoder. ``switch_overhead`` enables the kernel-cost extension."""
    started = time.perf_counter()
    sim = Simulator()
    os_ = RTOSModel(sim, sched=sched, preemption=preemption, name="dsp.os",
                    switch_overhead=switch_overhead)
    frames = speech_frames(n_frames, seed)
    pending = []
    line = IrqLine(sim, "frame-irq")
    frame_sem = RTOSSemaphore(os_, 0, name="frame-sem")
    bitstream = RTOSQueue(os_, capacity=4, name="bitstream")
    encoder = EncoderCore()
    decoder = DecoderCore()
    decoded = {}

    for index, frame in enumerate(frames):
        def _deliver(index=index, frame=frame):
            pending.append((index, frame))
            sim.trace.record(sim.now, "user", "source", f"frame-in-{index}")
            line.raise_irq()

        sim.schedule_at(index * FRAME_PERIOD_NS, _deliver)

    def isr():
        yield from frame_sem.release()
        os_.interrupt_return()

    pic = InterruptController(sim, name="dsp.pic")
    pic.register(line, isr)

    def encoder_body():
        for _ in range(n_frames):
            yield from frame_sem.acquire()
            index, frame = pending.pop(0)
            for _, budget, fn in encoder.stages(index, frame):
                fn()
                yield from os_.time_wait(budget)
            sim.trace.record(sim.now, "user", "encoder", f"encoded-{index}")
            yield from bitstream.send(encoder.result())

    def decoder_body():
        for _ in range(n_frames):
            encoded = yield from bitstream.recv()
            for _, budget, fn in decoder.stages(encoded):
                fn()
                yield from os_.time_wait(budget)
            decoded[encoded.index] = decoder.result()
            sim.trace.record(
                sim.now, "user", "decoder", f"decoded-{encoded.index}"
            )
            yield from os_.task_endcycle()

    enc_task = os_.task_create(
        "encoder", APERIODIC, 0, ENCODER_WCET_NS, priority=ENCODER_PRIORITY
    )
    dec_task = os_.task_create(
        "decoder", PERIODIC, FRAME_PERIOD_NS, DECODER_WCET_NS,
        priority=DECODER_PRIORITY,
    )
    sim.spawn(os_.task_body(enc_task, encoder_body()), name="encoder")

    def delayed_decoder():
        # the decoder task activates phase-aligned to the output clock
        yield WaitFor(decoder_phase_ns)
        yield from os_.task_body(dec_task, decoder_body())

    sim.spawn(delayed_decoder(), name="decoder")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run()
    delays = _delays_from_trace(sim, n_frames)
    snrs = [snr_db(frames[i], decoded[i]) for i in range(n_frames)]
    return VocoderRun(
        model="architecture",
        n_frames=n_frames,
        delays_ns=delays,
        snrs_db=snrs,
        context_switches=os_.metrics.context_switches,
        host_seconds=time.perf_counter() - started,
        sim=sim,
        extra={
            "os_metrics": os_.metrics.as_dict(),
            "decoder_response_times": list(dec_task.stats.response_times),
            "deadline_misses": os_.metrics.deadline_misses,
        },
    )


def _delays_from_trace(sim, n_frames):
    """Transcoding delay per frame: frame-in-k -> decoded-k."""
    arrivals = {}
    completions = {}
    for record in sim.trace.by_category("user"):
        if record.info.startswith("frame-in-"):
            arrivals[int(record.info.rsplit("-", 1)[1])] = record.time
        elif record.info.startswith("decoded-"):
            completions[int(record.info.rsplit("-", 1)[1])] = record.time
    return [completions[i] - arrivals[i] for i in range(n_frames)]
