"""Table 1 of the paper, regenerated.

Builds the four rows — lines of code, execution (host) time, context
switches, transcoding delay — for the three vocoder models. Absolute
values differ from the paper (our substrate is a Python DES kernel and a
synthetic ISS, not SpecC and a DSP56600 farm); the *shape* is what must
hold: model size and simulation cost explode at the implementation
level while the abstract RTOS model stays within a few percent of the
specification model and still predicts the timing behavior.
"""

from dataclasses import dataclass

from repro.analysis import loc as loc_metric
from repro.apps.vocoder.models import run_specification
from repro.farm import RunConfig, run_sweep


@dataclass
class Table1Row:
    name: str
    unscheduled: object
    architecture: object
    implementation: object


def model_loc():
    """Lines of code of each executable model, counted over the Python
    packages each model consists of plus (for the implementation) the
    generated assembly."""
    import repro.analysis
    import repro.apps.vocoder.decoder
    import repro.apps.vocoder.dsp
    import repro.apps.vocoder.encoder
    import repro.apps.vocoder.frames
    import repro.apps.vocoder.models
    import repro.channels
    import repro.kernel
    import repro.platform
    import repro.refinement
    import repro.rtos
    import repro.synthesis

    app_modules = [
        repro.apps.vocoder.dsp,
        repro.apps.vocoder.frames,
        repro.apps.vocoder.encoder,
        repro.apps.vocoder.decoder,
        repro.apps.vocoder.models,
    ]
    base = (
        loc_metric.package_loc(repro.kernel)
        + loc_metric.package_loc(repro.channels)
        + loc_metric.package_loc(repro.platform)
        + loc_metric.modules_loc(app_modules)
    )
    arch = (
        base
        + loc_metric.package_loc(repro.rtos)
        + loc_metric.package_loc(repro.refinement)
    )
    from repro.apps.vocoder.impl import build_vocoder_program

    _, program = build_vocoder_program(n_frames=10)
    import repro.apps.vocoder.impl as impl_module

    impl = (
        arch
        + loc_metric.package_loc(repro.synthesis)
        + loc_metric.module_loc(impl_module)
        + program.loc
    )
    return {"unscheduled": base, "architecture": arch, "implementation": impl}


def generate_table1(n_frames=10, seed=2003):
    """Run all three models and return the Table-1 rows.

    The three runs are one farm sweep (:func:`repro.farm.run_sweep`)
    over heterogeneous targets. They stay in-process and uncached:
    ``VocoderRun`` carries live simulator state, which neither pickles
    across workers nor serializes into the JSON result cache — the
    batch/parallel path is ``python -m repro.farm table1``, which runs
    the summary-dict targets in :mod:`repro.farm.workloads`.
    """
    run_specification(n_frames=1, seed=seed)  # warm numpy/jit caches
    params = {"n_frames": n_frames, "seed": seed}
    result = run_sweep(
        [
            RunConfig("repro.apps.vocoder.models:run_specification", params),
            RunConfig("repro.apps.vocoder.models:run_architecture", params),
            RunConfig("repro.apps.vocoder.impl:run_implementation", params),
        ],
        parallel=False, cache=None, retries=0,
    )
    for failed in result.failed:
        raise RuntimeError(
            f"{failed.config.label()} failed:\n{failed.error}"
        )
    spec, arch, impl = result.values()
    locs = model_loc()
    rows = [
        Table1Row("Lines of Code", locs["unscheduled"], locs["architecture"],
                  locs["implementation"]),
        Table1Row("Execution Time (s)", round(spec.host_seconds, 3),
                  round(arch.host_seconds, 3), round(impl.host_seconds, 3)),
        Table1Row("Context switches", spec.context_switches,
                  arch.context_switches, impl.context_switches),
        Table1Row("Transcoding delay (ms)", round(spec.mean_delay_ms, 2),
                  round(arch.mean_delay_ms, 2), round(impl.mean_delay_ms, 2)),
    ]
    return rows, {"spec": spec, "arch": arch, "impl": impl}


def format_table1(rows):
    """Render the rows like the paper's Table 1."""
    header = f"{'':<24}{'unsched.':>12}{'arch.':>12}{'impl.':>14}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:<24}{row.unscheduled:>12}{row.architecture:>12}"
            f"{row.implementation:>14}"
        )
    return "\n".join(lines)
