"""Vocoder decoder: functional core + per-stage timing annotations.

Stage budgets total 2.2 ms per frame (decoder share of the 9.7 ms
back-to-back delay). See :mod:`repro.apps.vocoder.encoder` for how the
stage list is used across abstraction levels.
"""

import numpy as np

from repro.apps.vocoder import dsp

#: (stage name, WCET in ns)
DECODER_STAGES = (
    ("unpack", 200_000),
    ("synthesis", 1_500_000),
    ("postfilter", 500_000),
)

DECODER_WCET_NS = sum(t for _, t in DECODER_STAGES)


class DecoderCore:
    """Stateful decoder mirroring the encoder's filter state."""

    def __init__(self):
        self.history = np.zeros(dsp.LPC_ORDER)
        self.past_excitation = np.zeros(dsp.MAX_LAG + dsp.FRAME_LEN)
        self._scratch = {}

    def stages(self, encoded):
        scratch = {}

        def unpack():
            scratch["encoded"] = encoded

        def synthesis():
            enc = scratch["encoded"]
            excitation = dsp.build_excitation(
                enc.n, enc.lag, enc.pitch_gain, self.past_excitation,
                enc.positions, enc.signs, enc.gain,
            )
            scratch["raw"] = dsp.synthesis_filter(
                excitation, enc.lpc, self.history
            )
            self.past_excitation = np.concatenate(
                [self.past_excitation, excitation]
            )[-len(self.past_excitation):]

        def postfilter():
            raw = scratch["raw"]
            # mild smoothing post-filter
            smoothed = np.copy(raw)
            smoothed[1:] += 0.25 * raw[:-1]
            smoothed /= 1.25
            self.history = smoothed[-dsp.LPC_ORDER:].copy()
            scratch["pcm"] = smoothed

        fns = {
            "unpack": unpack,
            "synthesis": synthesis,
            "postfilter": postfilter,
        }
        for name, budget in DECODER_STAGES:
            yield name, budget, fns[name]
        self._scratch = scratch

    def result(self):
        return self._scratch["pcm"]

    def decode(self, encoded):
        """Pure functional decode (no timing)."""
        for _, _, fn in self.stages(encoded):
            fn()
        return self.result()
