"""The vocoder implementation model (Figure 2(c)).

Software synthesis output: encoder and decoder compiled into target
assembly, linked against the custom RTOS kernel
(:mod:`repro.synthesis.kernel_rt`), executing on the cycle-counting ISS,
co-simulated inside the SLDL (frame interrupts arrive from the SLDL
side through the IRQ bridge).

Timing-equivalent computation: the stage budgets of the encoder/decoder
are converted into cycle budgets on a 4 MHz core (250 ns per cycle) and
realized as calibrated compute loops, while frame payloads move through
target memory for real (ADC buffer → work buffer → DAC buffer). The
numeric DSP itself runs only in the Python models — see DESIGN.md,
substitutions.
"""

import time

import numpy as np

from repro.apps.vocoder.decoder import DECODER_WCET_NS
from repro.apps.vocoder.encoder import ENCODER_WCET_NS
from repro.apps.vocoder.frames import FRAME_PERIOD_NS, speech_frames
from repro.apps.vocoder.models import (
    DECODER_PHASE_NS,
    DECODER_PRIORITY,
    ENCODER_PRIORITY,
    VocoderRun,
)
from repro.apps.vocoder.dsp import FRAME_LEN
from repro.kernel import Simulator
from repro.platform import IrqLine
from repro.synthesis import (
    CodeGenerator,
    Compute,
    Copy,
    Halt,
    ISSProcessor,
    Loop,
    Mark,
    SemPost,
    SemWait,
    Sleep,
    TaskProgram,
)
from repro.synthesis.kernel_rt import ADDR_CTXSW

#: 4 MHz core: one cycle is 250 ns of simulated time
CYCLE_NS = 250
#: RTOS tick: 2000 cycles = 500 us
TICK_CYCLES = 2000

SEM_FRAME = 0  # posted by the frame interrupt
SEM_BITS = 1  # encoder -> decoder

MARK_ENC_DONE = 1
MARK_DEC_DONE = 2

ADC_BUF = 0x2000
WORK_BUF = 0x2100
DAC_BUF = 0x2200

#: cycles consumed by a Copy of one frame (setup + 160 * loop body)
_COPY_CYCLES = 3 + FRAME_LEN * 9
#: rough per-frame kernel overhead (syscalls, ISR) excluded from burn
_KERNEL_SLACK = 400
#: ticks shaved off the decoder's phase-alignment sleep to compensate
#: kernel latency (tick ISR + scheduling) — the usual firmware
#: calibration step when aligning to an output clock
_ALIGN_TUNE_TICKS = 2


def _cycles(ns):
    return ns // CYCLE_NS


def build_vocoder_program(n_frames):
    """Generate and assemble the implementation-model program."""
    enc_burn = _cycles(ENCODER_WCET_NS) - _COPY_CYCLES - _KERNEL_SLACK
    dec_burn = _cycles(DECODER_WCET_NS) - _COPY_CYCLES - _KERNEL_SLACK
    align_ticks = max(
        0,
        _cycles(DECODER_PHASE_NS - ENCODER_WCET_NS) // TICK_CYCLES
        - _ALIGN_TUNE_TICKS,
    )

    encoder = TaskProgram(
        "encoder", ENCODER_PRIORITY,
        [
            Loop(n_frames, [
                SemWait(SEM_FRAME),
                Copy(ADC_BUF, WORK_BUF, FRAME_LEN),
                Compute(enc_burn),
                Mark(MARK_ENC_DONE),
                SemPost(SEM_BITS),
            ]),
        ],
    )
    decoder = TaskProgram(
        "decoder", DECODER_PRIORITY,
        [
            Loop(n_frames, [
                SemWait(SEM_BITS),
                Sleep(align_ticks),
                Compute(dec_burn),
                Copy(WORK_BUF, DAC_BUF, FRAME_LEN),
                Mark(MARK_DEC_DONE),
            ]),
            Halt(),
        ],
    )
    generator = CodeGenerator(timer_period=TICK_CYCLES, ext_sem=SEM_FRAME)
    iss, program = generator.build([encoder, decoder])
    return iss, program


def run_implementation(n_frames=10, seed=2003, chunk=500):
    """Execute the implementation model in SLDL co-simulation."""
    started = time.perf_counter()
    sim = Simulator()
    iss, program = build_vocoder_program(n_frames)
    cpu = ISSProcessor(sim, iss, name="dsp", clock_period=CYCLE_NS, chunk=chunk)
    line = IrqLine(sim, "frame-irq")
    cpu.connect_irq(line)

    frames = speech_frames(n_frames, seed)
    quantized = [np.clip(f * 32767, -32768, 32767).astype(int) for f in frames]
    dac_log = []

    def _deliver(index):
        def _cb():
            sim.trace.record(sim.now, "user", "source", f"frame-in-{index}")
            for offset, sample in enumerate(quantized[index]):
                iss.memory[ADC_BUF + offset] = sample & 0xFFFFFFFF
            line.raise_irq()

        return _cb

    for index in range(n_frames):
        sim.schedule_at(index * FRAME_PERIOD_NS, _deliver(index))

    # observe each decode completion to capture the DAC buffer contents
    def watch_dac():
        from repro.kernel import WaitFor

        seen = 0
        while not cpu.halted and seen < n_frames:
            dec_marks = [c for c, v in iss.console if v == MARK_DEC_DONE]
            if len(dec_marks) > seen:
                dac_log.append(
                    [iss.memory[DAC_BUF + i] for i in range(FRAME_LEN)]
                )
                seen += 1
            yield WaitFor(chunk * CYCLE_NS)

    sim.spawn(watch_dac(), name="dac-watch")
    sim.run(until=(n_frames + 3) * FRAME_PERIOD_NS)

    arrivals = [i * FRAME_PERIOD_NS for i in range(n_frames)]
    dec_times = [c * CYCLE_NS for c, v in iss.console if v == MARK_DEC_DONE]
    delays = [d - a for a, d in zip(arrivals, dec_times)]
    return VocoderRun(
        model="implementation",
        n_frames=n_frames,
        delays_ns=delays,
        snrs_db=[],
        context_switches=iss.memory[ADDR_CTXSW],
        host_seconds=time.perf_counter() - started,
        sim=sim,
        extra={
            "cycles": iss.cycles,
            "instructions": iss.instructions,
            "program_loc": program.loc,
            "halted": iss.halted,
            "dac_frames": dac_log,
            "quantized_frames": quantized,
        },
    )
