"""The GSM-style vocoder case study of Table 1.

Three abstraction levels of the same two-task codec:

* :func:`~repro.apps.vocoder.models.run_specification` — unscheduled.
* :func:`~repro.apps.vocoder.models.run_architecture` — RTOS model.
* :func:`~repro.apps.vocoder.impl.run_implementation` — generated code
  + custom RTOS kernel on the ISS.
"""

from repro.apps.vocoder.impl import build_vocoder_program, run_implementation
from repro.apps.vocoder.models import (
    VocoderRun,
    run_architecture,
    run_specification,
)

__all__ = [
    "VocoderRun",
    "build_vocoder_program",
    "run_architecture",
    "run_implementation",
    "run_specification",
]
