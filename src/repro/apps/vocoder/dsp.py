"""Signal-processing kernels of the vocoder.

A compact analysis-by-synthesis speech codec in the GSM style the
paper's vocoder case study uses ([9]: GSM vocoder on a DSP56600): LPC
short-term prediction (autocorrelation + Levinson–Durbin), long-term
(pitch) prediction against the past excitation, and a sparse
multi-pulse fixed codebook — plus the matching decoder. Real numerics
(numpy), deterministic, frame-by-frame with carried filter state.

This is not a bit-exact GSM EFR implementation (see DESIGN.md,
substitutions): the *task topology and timing structure* is what Table 1
measures; the DSP here exists so the specification and architecture
models compute something real and testable (prediction gain, SNR).
"""

from dataclasses import dataclass

import numpy as np

FRAME_LEN = 160  # 20 ms at 8 kHz
LPC_ORDER = 10
MIN_LAG = 20
MAX_LAG = 140
N_PULSES = 10


def autocorrelation(frame, order=LPC_ORDER):
    """First ``order + 1`` autocorrelation lags of the frame."""
    frame = np.asarray(frame, dtype=np.float64)
    n = len(frame)
    return np.array(
        [np.dot(frame[: n - lag], frame[lag:]) for lag in range(order + 1)]
    )


def levinson_durbin(r, order=LPC_ORDER):
    """Solve the normal equations by Levinson–Durbin recursion.

    Returns ``(a, k, err)``: prediction coefficients ``a`` (length
    ``order``, sign convention ``x[n] ~ sum a[i] x[n-1-i]``), reflection
    coefficients ``k`` and the final prediction error energy.
    """
    r = np.asarray(r, dtype=np.float64)
    if r[0] <= 0:
        return np.zeros(order), np.zeros(order), 0.0
    a = np.zeros(order)
    k = np.zeros(order)
    err = r[0]
    for i in range(order):
        acc = r[i + 1] - np.dot(a[:i], r[i::-1][:i])
        ki = acc / err
        k[i] = ki
        a_new = a.copy()
        a_new[i] = ki
        a_new[:i] = a[:i] - ki * a[i - 1 :: -1][:i]
        a = a_new
        err *= 1.0 - ki * ki
        if err <= 0:
            err = 1e-9
    return a, k, err


def lpc_residual(frame, a, history):
    """Inverse-filter the frame: residual e[n] = x[n] - sum a[i] x[n-1-i].

    ``history`` holds the last ``len(a)`` samples of the previous frame.
    """
    order = len(a)
    extended = np.concatenate([history[-order:], frame])
    residual = np.empty(len(frame))
    for n in range(len(frame)):
        past = extended[n : n + order][::-1]
        residual[n] = frame[n] - np.dot(a, past)
    return residual


def synthesis_filter(excitation, a, history):
    """All-pole synthesis 1/A(z): x[n] = e[n] + sum a[i] x[n-1-i]."""
    order = len(a)
    out = np.empty(len(excitation))
    state = list(history[-order:])
    for n in range(len(excitation)):
        past = np.array(state[::-1])
        out[n] = excitation[n] + np.dot(a, past)
        state.pop(0)
        state.append(out[n])
    return out


def pitch_search(residual, past_excitation, min_lag=MIN_LAG, max_lag=MAX_LAG):
    """Long-term predictor: best integer lag + gain against the adaptive
    codebook (past excitation)."""
    target = np.asarray(residual, dtype=np.float64)
    n = len(target)
    best_lag, best_gain, best_score = min_lag, 0.0, -np.inf
    for lag in range(min_lag, max_lag + 1):
        segment = _delayed_excitation(past_excitation, lag, n)
        energy = np.dot(segment, segment)
        if energy <= 0:
            continue
        corr = np.dot(target, segment)
        score = corr * corr / energy
        if score > best_score:
            best_score = score
            best_lag = lag
            best_gain = corr / energy
    best_gain = float(np.clip(best_gain, -1.2, 1.2))
    return best_lag, best_gain


def _delayed_excitation(past_excitation, lag, n):
    """The adaptive-codebook vector for ``lag``, repeating short lags."""
    past = np.asarray(past_excitation, dtype=np.float64)
    segment = past[-lag:].copy()
    while len(segment) < n:
        segment = np.concatenate([segment, segment[-lag:]])
    return segment[:n]


def codebook_search(target, n_pulses=N_PULSES):
    """Sparse multi-pulse fixed codebook: greedy pulse placement.

    Returns ``(positions, signs, gain)`` approximating ``target`` by
    ``gain * sum_i signs[i] * delta[positions[i]]``.
    """
    target = np.asarray(target, dtype=np.float64)
    order = np.argsort(-np.abs(target))
    positions = np.sort(order[:n_pulses])
    signs = np.sign(target[positions])
    signs[signs == 0] = 1.0
    magnitude = np.abs(target[positions]).mean() if n_pulses else 0.0
    return positions, signs, float(magnitude)


def build_excitation(n, lag, pitch_gain, past_excitation, positions, signs, gain):
    """Decoder-side excitation: adaptive + fixed codebook contributions."""
    excitation = pitch_gain * _delayed_excitation(past_excitation, lag, n)
    excitation[positions] += gain * signs
    return excitation


def quantize(values, step):
    """Uniform scalar quantization (what the bitstream would carry)."""
    return np.round(np.asarray(values, dtype=np.float64) / step) * step


@dataclass
class EncodedFrame:
    """The 'bitstream' of one frame (quantized parameters)."""

    index: int
    lpc: np.ndarray
    lag: int
    pitch_gain: float
    positions: np.ndarray
    signs: np.ndarray
    gain: float

    @property
    def n(self):
        return FRAME_LEN


def snr_db(reference, reconstructed):
    """Segmental signal-to-noise ratio of the reconstruction."""
    reference = np.asarray(reference, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    noise = reference - reconstructed
    signal_energy = np.dot(reference, reference)
    noise_energy = np.dot(noise, noise)
    if noise_energy == 0:
        return np.inf
    if signal_energy == 0:
        return -np.inf
    return 10.0 * np.log10(signal_energy / noise_energy)
