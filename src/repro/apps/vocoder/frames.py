"""Synthetic speech source.

The paper used real speech through the GSM vocoder; offline we generate
a deterministic speech-like signal: voiced stretches (glottal pulse
train through a resonant vocal-tract filter) alternating with unvoiced
noise — enough spectral structure for LPC to achieve real prediction
gain, so encoder/decoder quality is measurable.
"""

import numpy as np

from repro.apps.vocoder.dsp import FRAME_LEN

SAMPLE_RATE = 8000
#: one frame is 20 ms
FRAME_PERIOD_NS = 20_000_000


def speech_signal(n_frames, seed=2003):
    """A deterministic speech-like waveform of ``n_frames`` frames."""
    rng = np.random.default_rng(seed)
    total = n_frames * FRAME_LEN
    signal = np.zeros(total)
    position = 0
    voiced = True
    while position < total:
        span = min(int(rng.integers(3, 7)) * FRAME_LEN, total - position)
        if voiced:
            segment = _voiced_segment(span, rng)
        else:
            segment = _unvoiced_segment(span, rng)
        signal[position : position + span] = segment
        position += span
        voiced = not voiced
    # gentle amplitude envelope so frames differ in energy
    envelope = 0.6 + 0.4 * np.sin(np.linspace(0, 3.1, total))
    return signal * envelope


def _voiced_segment(n, rng):
    """Pulse train through a two-resonance vocal-tract filter."""
    pitch = int(rng.integers(40, 90))  # 89..200 Hz
    excitation = np.zeros(n)
    excitation[::pitch] = 1.0
    excitation += 0.02 * rng.standard_normal(n)
    formants = [(500 + 200 * rng.random(), 0.95), (1500 + 500 * rng.random(), 0.9)]
    return _resonate(excitation, formants) * 0.8


def _unvoiced_segment(n, rng):
    noise = rng.standard_normal(n)
    return _resonate(noise, [(2500 + 500 * rng.random(), 0.85)]) * 0.15


def _resonate(signal, formants):
    out = signal
    for freq, radius in formants:
        theta = 2 * np.pi * freq / SAMPLE_RATE
        a1 = 2 * radius * np.cos(theta)
        a2 = -radius * radius
        filtered = np.empty(len(out))
        y1 = y2 = 0.0
        for i, x in enumerate(out):
            y = x + a1 * y1 + a2 * y2
            filtered[i] = y
            y2, y1 = y1, y
        out = filtered
    peak = np.max(np.abs(out))
    return out / peak if peak > 0 else out


def frames_of(signal):
    """Split a waveform into FRAME_LEN-sample frames."""
    n_frames = len(signal) // FRAME_LEN
    return [
        signal[i * FRAME_LEN : (i + 1) * FRAME_LEN].copy()
        for i in range(n_frames)
    ]


def speech_frames(n_frames, seed=2003):
    return frames_of(speech_signal(n_frames, seed))
