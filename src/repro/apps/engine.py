"""Engine-control case study: mixed periodic/sporadic hard real time.

The paper motivates the RTOS model with "the dynamic real-time behavior
often found in embedded software"; this application is the classic
automotive shape of that behavior on one ECU:

* **injection** — sporadic task released by the crank-shaft interrupt;
  its deadline is a fraction of the (speed-dependent!) crank period;
* **speed control** — 10 ms periodic control-loop task;
* **diagnostics** — background task that must not disturb the others.

The crank interrupt rate follows an RPM profile, so the workload
exercises exactly what the abstract RTOS model exists to evaluate
early: schedulability of sporadic load against periodic load under a
chosen scheduler, long before an implementation exists.

Times are nanoseconds.
"""

from dataclasses import dataclass, field

from repro.channels import RTOSSemaphore
from repro.kernel import Simulator, WaitFor
from repro.platform import InterruptController, IrqLine
from repro.rtos import APERIODIC, PERIODIC, RTOSModel

MS = 1_000_000


@dataclass
class EngineConfig:
    """Workload parameters of the ECU model."""

    #: RPM profile as (duration_ns, rpm) segments
    profile: tuple = ((100 * MS, 1500), (100 * MS, 4500), (100 * MS, 3000))
    #: injection computation per crank event
    injection_exec: int = 2 * MS
    #: injection deadline as a fraction of the current crank period
    injection_deadline_frac: float = 0.3
    #: control-loop period and execution time
    control_period: int = 10 * MS
    control_exec: int = 3 * MS
    #: delay-annotation granularity of the control task (the preemption
    #: resolution injection sees, per the paper's accuracy discussion)
    control_granularity: int = 1 * MS
    #: diagnostics chunk length (runs forever in the background)
    diag_chunk: int = 1 * MS
    sched: str = "priority"
    preemption: str = "step"

    def crank_period(self, rpm):
        """Nanoseconds between crank interrupts (one per revolution)."""
        return int(60e9 / rpm)


@dataclass
class EngineResult:
    sim: object
    os: object
    injection_latencies: list
    injection_deadline_misses: int
    control_response_times: list
    control_deadline_misses: int
    diag_chunks: int
    crank_events: int
    extra: dict = field(default_factory=dict)

    @property
    def worst_injection_latency(self):
        return max(self.injection_latencies) if self.injection_latencies else 0


def run_engine(config=None, priorities=(1, 2, 9)):
    """Simulate the ECU; ``priorities`` = (injection, control, diag)."""
    config = config or EngineConfig()
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched=config.sched, preemption=config.preemption,
                    name="ecu.os")
    crank_line = IrqLine(sim, "crank")
    crank_sem = RTOSSemaphore(os_, 0, "crank-sem")
    pic = InterruptController(sim, "ecu.pic")

    def crank_isr():
        yield from crank_sem.release()
        os_.interrupt_return()

    pic.register(crank_line, crank_isr)

    # crank interrupt generator following the RPM profile
    crank_times = []
    t = 0
    horizon = 0
    for duration, rpm in config.profile:
        horizon += duration
        period = config.crank_period(rpm)
        if t < horizon - duration:
            t = horizon - duration
        while t < horizon:
            crank_times.append((t, period))
            t += period
    for time, _ in crank_times:
        sim.schedule_at(time, crank_line.raise_irq)
    deadline_of = dict(crank_times)

    injection_latencies = []
    injection_misses = 0

    def injection_body():
        nonlocal injection_misses
        for _ in range(len(crank_times)):
            yield from crank_sem.acquire()
            released = _latest_crank(sim.now)
            yield from os_.time_wait(config.injection_exec)
            latency = sim.now - released
            injection_latencies.append(latency)
            budget = int(
                deadline_of[released] * config.injection_deadline_frac
            )
            if latency > budget:
                injection_misses += 1

    def _latest_crank(now):
        candidates = [time for time, _ in crank_times if time <= now]
        return candidates[-1] if candidates else 0

    def control_body():
        cycles = sum(d for d, _ in config.profile) // config.control_period
        for _ in range(cycles - 1):
            remaining = config.control_exec
            while remaining > 0:
                step = min(config.control_granularity, remaining)
                yield from os_.time_wait(step)
                remaining -= step
            yield from os_.task_endcycle()

    diag_state = {"chunks": 0}

    def diag_body():
        while True:
            yield from os_.time_wait(config.diag_chunk)
            diag_state["chunks"] += 1

    inj_prio, ctl_prio, diag_prio = priorities
    injection = os_.task_create("injection", APERIODIC, 0,
                                config.injection_exec, priority=inj_prio)
    control = os_.task_create("control", PERIODIC, config.control_period,
                              config.control_exec, priority=ctl_prio)
    diag = os_.task_create("diag", APERIODIC, 0, 0, priority=diag_prio)
    sim.spawn(os_.task_body(injection, injection_body()), name="injection")
    sim.spawn(os_.task_body(control, control_body()), name="control")
    sim.spawn(os_.task_body(diag, diag_body()), name="diag")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run(until=sum(d for d, _ in config.profile))
    return EngineResult(
        sim=sim,
        os=os_,
        injection_latencies=injection_latencies,
        injection_deadline_misses=injection_misses,
        control_response_times=list(control.stats.response_times),
        control_deadline_misses=control.stats.deadline_misses,
        diag_chunks=diag_state["chunks"],
        crank_events=len(crank_times),
        extra={"metrics": os_.metrics.as_dict()},
    )
