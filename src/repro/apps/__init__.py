"""Applications: the Figure-3 example and the Table-1 vocoder."""
