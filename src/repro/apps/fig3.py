"""The paper's running example (Figures 3 and 8).

One PE executes behavior ``B1`` followed by the parallel composition of
``B2`` and ``B3``. B2 and B3 communicate through two rendezvous channels
``c1`` and ``c2``; B3 additionally receives data from another PE through
a bus driver whose ISR signals a semaphore (``sem``).

The behaviors below are written once, specification-style. They run

* directly on the SLDL kernel — the **unscheduled model** whose trace is
  Figure 8(a) (B2 and B3 truly parallel, delays overlapping); and
* through :class:`~repro.refinement.auto.DynamicSchedulingRefinement`
  onto an RTOS model — the **architecture model** of Figure 8(b)
  (priority scheduling, B3 more urgent, interrupt at t4 with the task
  switch deferred to t4').

Default delays are chosen so that, as in the paper's figure, the
external interrupt arrives in the middle of a delay step of the running
low-priority task (t4 = 450, inside Task_B2's d6 step [400, 500) of the
architecture model).
"""

from dataclasses import dataclass, field

from repro.analysis.trace_analysis import mark_time
from repro.channels import Handshake, Semaphore
from repro.kernel import Behavior, Par, Port, Simulator, WaitFor
from repro.platform import Bus, BusLink, InterruptController, InterruptDriver, IrqLine
from repro.refinement import DynamicSchedulingRefinement, RefinementSpec


@dataclass
class Fig3Delays:
    """The d0..d8 delay annotations of Figure 8 (d0 is B1's time)."""

    d0: int = 100  # B1
    d1: int = 50   # B3 before waiting on c1
    d2: int = 100  # B3 between c1 and the bus data
    d3: int = 100  # B3 after the interrupt, before sending c2
    d4: int = 50   # B3 tail
    d5: int = 150  # B2 before sending c1
    d6: int = 100  # B2 first step after c1 (the step the irq lands in)
    d7: int = 100  # B2 second step, before waiting on c2
    d8: int = 100  # B2 tail
    #: when the external PE starts its bus transfer; the interrupt is
    #: raised transfer_time later (t4 = irq_send_time + bus time)
    irq_send_time: int = 430
    msg_bytes: int = 8
    bus_width: int = 4
    bus_cycle_time: int = 10

    @property
    def irq_time(self):
        cycles = -(-self.msg_bytes // self.bus_width)
        return self.irq_send_time + cycles * self.bus_cycle_time


#: default priorities of the refined tasks (lower = more urgent);
#: Task_B3 is the high-priority task, as in Figure 8(b)
DEFAULT_PRIORITIES = {"Task_PE": 0, "B3": 1, "B2": 2}


class B1(Behavior):
    """Initial sequential behavior of the PE."""

    def __init__(self, delays, record_exec, name="B1"):
        super().__init__(name)
        self.delays = delays
        self.record_exec = record_exec

    def main(self):
        yield from _execute(self, self.delays.d0)
        self.sim.trace.record(self.sim.now, "user", self.name, "b1-done")


class B2(Behavior):
    """Producer/consumer partner of B3 (lower priority when refined)."""

    c1 = Port("c1")
    c2 = Port("c2")

    def __init__(self, delays, record_exec, name="B2"):
        super().__init__(name)
        self.delays = delays
        self.record_exec = record_exec

    def main(self):
        d = self.delays
        yield from _execute(self, d.d5)
        yield from self.c1.send("msg-from-b2")
        self.sim.trace.record(self.sim.now, "user", self.name, "sent-c1")
        yield from _execute(self, d.d6)
        yield from _execute(self, d.d7)
        self.sim.trace.record(self.sim.now, "user", self.name, "wait-c2")
        result = yield from self.c2.recv()
        self.sim.trace.record(
            self.sim.now, "user", self.name, "got-c2", data=result
        )
        yield from _execute(self, d.d8)
        self.sim.trace.record(self.sim.now, "user", self.name, "b2-done")


class B3(Behavior):
    """Consumer with external input (higher priority when refined)."""

    c1 = Port("c1")
    c2 = Port("c2")
    driver = Port("driver")

    def __init__(self, delays, record_exec, name="B3"):
        super().__init__(name)
        self.delays = delays
        self.record_exec = record_exec

    def main(self):
        d = self.delays
        yield from _execute(self, d.d1)
        self.sim.trace.record(self.sim.now, "user", self.name, "t1-wait-c1")
        msg = yield from self.c1.recv()
        self.sim.trace.record(
            self.sim.now, "user", self.name, "t2-got-c1", data=msg
        )
        yield from _execute(self, d.d2)
        self.sim.trace.record(self.sim.now, "user", self.name, "t3-wait-bus")
        data = yield from self.driver.recv()
        self.sim.trace.record(
            self.sim.now, "user", self.name, "t4-got-data", data=data
        )
        yield from _execute(self, d.d3)
        self.sim.trace.record(self.sim.now, "user", self.name, "t5-send-c2")
        yield from self.c2.send("result-from-b3")
        self.sim.trace.record(self.sim.now, "user", self.name, "t6-sent-c2")
        yield from _execute(self, d.d4)
        self.sim.trace.record(self.sim.now, "user", self.name, "t7-b3-done")


class Fig3Top(Behavior):
    """PE top level: B1 ; par { B2 || B3 } (Figure 3)."""

    def __init__(self, b1, b2, b3, name="Task_PE"):
        super().__init__(name)
        self.b1 = b1
        self.b2 = b2
        self.b3 = b3

    def main(self):
        yield from self.b1.main()
        yield Par(self.b2, self.b3)


def _execute(behavior, duration):
    """One computation step: a delay, recorded as an execution segment in
    the unscheduled model (the RTOS records segments in the refined one)."""
    start = behavior.sim.now
    yield WaitFor(duration)
    if behavior.record_exec:
        behavior.sim.trace.segment(behavior.name, start, behavior.sim.now)


@dataclass
class Fig3Result:
    """Everything the Figure-8 experiments need from one run."""

    sim: object
    trace: object
    os: object = None
    tasks: dict = field(default_factory=dict)

    @property
    def end_time(self):
        return self.sim.now

    @property
    def context_switches(self):
        return self.os.metrics.context_switches if self.os else 0

    def times(self):
        """The t1..t7 instants of Figure 8 extracted from the trace."""
        labels = {
            "t1": "t1-wait-c1",
            "t2": "t2-got-c1",
            "t3": "t3-wait-bus",
            "t5": "t5-send-c2",
            "t6": "t6-sent-c2",
            "t7": "t7-b3-done",
        }
        times = {k: mark_time(self.trace, v) for k, v in labels.items()}
        irq = [r for r in self.trace.by_category("irq") if r.info == "raise"]
        times["t4"] = irq[0].time if irq else None
        return times


def _build_platform(sim, delays, external_payload):
    """Bus, IRQ line, link and the external sender PE (common to both
    models)."""
    bus = Bus(sim, name="bus", width=delays.bus_width,
              cycle_time=delays.bus_cycle_time)
    line = IrqLine(sim, "bus-irq")
    link = BusLink(sim, bus, line, name="ext-link")

    def external_pe():
        yield WaitFor(delays.irq_send_time)
        yield from link.send(external_payload, nbytes=delays.msg_bytes)

    sim.spawn(external_pe(), name="PE2")
    return bus, line, link


def run_unscheduled(delays=None, payload="ext-data", trace=None,
                    registry=None, profile=False):
    """Execute the unscheduled (specification) model — Figure 8(a).

    ``trace=`` injects a pre-built :class:`~repro.kernel.trace.Trace`
    (e.g. one backed by a streaming or ring-buffer sink); ``registry=``
    attaches channel metrics to a
    :class:`~repro.obs.metrics.MetricsRegistry`; ``profile=True`` turns
    on the simulator's wall-clock profiler for the run.
    """
    delays = delays or Fig3Delays()
    sim = Simulator(trace=trace)
    if profile:
        sim.enable_profiling()
    _, line, link = _build_platform(sim, delays, payload)
    sem = Semaphore(0, name="sem")
    driver = InterruptDriver(link, sem, name="driver")
    pic = InterruptController(sim, name="pe.pic")
    pic.register(line, driver.isr)

    c1 = Handshake(name="c1")
    c2 = Handshake(name="c2")
    if registry is not None:
        for channel in (sem, c1, c2):
            channel.attach_metrics(registry)
    b1 = B1(delays, record_exec=True).bind(sim)
    b2 = B2(delays, record_exec=True).bind(sim)
    b3 = B3(delays, record_exec=True).bind(sim)
    b2.c1, b2.c2 = c1, c2
    b3.c1, b3.c2, b3.driver = c1, c2, driver
    top = Fig3Top(b1, b2, b3).bind(sim)
    sim.spawn(top, name="Task_PE")
    sim.run()
    return Fig3Result(sim=sim, trace=sim.trace)


def run_architecture(delays=None, payload="ext-data", sched="priority",
                     preemption="step", priorities=None, trace=None,
                     registry=None, profile=False):
    """Refine the same behaviors onto an RTOS model — Figure 8(b).

    The refinement is fully automatic: the unchanged behavior generators
    are translated command-by-command onto the RTOS interface, and the
    driver's ISR is refined to notify through the RTOS and end with
    ``interrupt_return``. ``trace=`` injects a pre-built trace recorder
    (e.g. one backed by a streaming or ring-buffer sink); ``registry=``
    attaches OS-service and channel metrics to a
    :class:`~repro.obs.metrics.MetricsRegistry`; ``profile=True`` turns
    on the simulator's wall-clock profiler for the run.
    """
    from repro.rtos import RTOSModel

    delays = delays or Fig3Delays()
    sim = Simulator(trace=trace)
    if profile:
        sim.enable_profiling()
    os_ = RTOSModel(sim, sched=sched, preemption=preemption, name="pe.os",
                    registry=registry)
    ref = DynamicSchedulingRefinement(
        os_, RefinementSpec(priorities=dict(priorities or DEFAULT_PRIORITIES))
    )

    _, line, link = _build_platform(sim, delays, payload)
    sem = Semaphore(0, name="sem")  # spec channel; auto-refined in use
    driver = InterruptDriver(link, sem, name="driver")
    pic = InterruptController(sim, name="pe.pic")
    pic.register(line, ref.refine_isr(driver.isr))

    c1 = Handshake(name="c1")
    c2 = Handshake(name="c2")
    if registry is not None:
        for channel in (sem, c1, c2):
            channel.attach_metrics(registry)
    b1 = B1(delays, record_exec=False).bind(sim)
    b2 = B2(delays, record_exec=False).bind(sim)
    b3 = B3(delays, record_exec=False).bind(sim)
    b2.c1, b2.c2 = c1, c2
    b3.c1, b3.c2, b3.driver = c1, c2, driver
    top = Fig3Top(b1, b2, b3).bind(sim)

    wrapped, pe_task = ref.refine_task(top, name="Task_PE")
    sim.spawn(wrapped, name="Task_PE")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run()
    tasks = {t.name: t for t in ref.tasks}
    return Fig3Result(sim=sim, trace=sim.trace, os=os_, tasks=tasks)
