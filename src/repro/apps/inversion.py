"""Seeded span-analytics demo models (``pi-demo`` / ``fault-demo``).

:func:`run_inversion` is the classic three-task priority-inversion
scenario (the Mars-Pathfinder shape): a low-priority task holds a
mutex, the high-priority task blocks on it, and a medium-priority task
— needing no shared resource at all — preempts the holder and
stretches the high-priority task's wait. Without priority inheritance
(``pi=False``, the default) every round produces one inversion
incident that :class:`~repro.obs.analyzers.InversionDetector` names
exactly (task, holder, resource, inverting task, duration); with
``pi=True`` the holder inherits the blocked task's priority, the
medium task cannot preempt it, and no incident is detected — the same
ablation as ``examples/scheduler_comparison.py``, but read off the
causal span stream instead of response-time tables.

:func:`run_fault_demo` is an overloaded, watched, fault-injected
periodic task set (the campaign shape of :mod:`repro.faults`): a
deterministic overrun plus a seeded mid-run crash under a ``kill``
watchdog policy — the trace the CI obs-smoke job feeds to
``python -m repro.obs report`` to prove killed/hung tasks close their
spans with terminal watchdog edges.

:func:`run_mc_demo` is the mixed-criticality shape of
:mod:`repro.rtos.mc`: two LO tasks outrank one HI task whose execution
alternates between its optimistic and pessimistic budget, so every
other HI job overruns, raises the mode, sheds the LO load and (after
the hysteresis window) recovers — the trace carries ``mode`` records
and the report grows criticality-mode, watchdog and MC sections.

All runners follow the ``fig3`` runner contract (``trace=``,
``registry=``, ``profile=``) so the obs CLI treats them as bundled
models; all arm the span sources by default (``spans=False`` opts
out).
"""

from repro.apps.fig3 import Fig3Result
from repro.channels.mutex import RTOSMutex
from repro.kernel import Simulator, WaitFor
from repro.rtos import APERIODIC, PERIODIC, RTOSModel

__all__ = ["run_inversion", "run_fault_demo", "run_mc_demo"]

#: one inversion round: lo holds the lock this long...
HOLD = 40
#: ...the medium task computes this long inside the window
MID_WORK = 30
#: round period (every task resynchronizes on this)
ROUND = 200


def run_inversion(rounds=3, pi=False, sched="priority", trace=None,
                  registry=None, profile=False, spans=True):
    """Run the seeded priority-inversion scenario; returns a
    :class:`~repro.apps.fig3.Fig3Result`.

    Per round: ``lo`` locks the mutex at the round start and computes
    for :data:`HOLD` units in granularity-5 steps; ``hi`` wakes 10
    units in and blocks on the lock; ``mid`` wakes 12 units in and
    computes :data:`MID_WORK` units, preempting ``lo`` (unless ``pi``
    boosted it). ``hi``'s block span therefore ends with a ``notify``
    edge from ``lo`` — a lower-urgency holder — and ``mid`` is the
    inverting task the detector must name.
    """
    sim = Simulator(trace=trace)
    os_ = RTOSModel(sim, sched=sched, name="pi.os")
    if spans:
        os_.trace_spans(True)
    if registry is not None:
        os_.observe(registry)
    if profile:
        sim.enable_profiling()
    mutex = RTOSMutex(os_, name="shared", priority_inheritance=pi)
    pause = os_.event_new("pause.evt")  # never notified: pure delays

    hi = os_.task_create("hi", APERIODIC, 0, 5, priority=10)
    mid = os_.task_create("mid", APERIODIC, 0, MID_WORK, priority=20)
    lo = os_.task_create("lo", APERIODIC, 0, HOLD, priority=30)

    def compute(amount, step=5):
        while amount > 0:
            chunk = min(step, amount)
            yield from os_.time_wait(chunk)
            amount -= chunk

    def hi_body():
        yield from os_.task_activate(hi)
        for round_start in range(0, rounds * ROUND, ROUND):
            yield from os_.event_wait(
                pause, timeout=max(0, round_start + 10 - sim.now))
            yield from mutex.lock()
            yield from compute(5)
            yield from mutex.unlock()
        yield from os_.task_terminate()

    def mid_body():
        yield from os_.task_activate(mid)
        for round_start in range(0, rounds * ROUND, ROUND):
            yield from os_.event_wait(
                pause, timeout=max(0, round_start + 12 - sim.now))
            yield from compute(MID_WORK)
        yield from os_.task_terminate()

    def lo_body():
        yield from os_.task_activate(lo)
        for round_start in range(0, rounds * ROUND, ROUND):
            if sim.now < round_start:
                yield from os_.event_wait(pause, timeout=round_start - sim.now)
            yield from mutex.lock()
            yield from compute(HOLD)
            yield from mutex.unlock()
        yield from os_.task_terminate()

    sim.spawn(os_.task_body(hi, hi_body()), name="hi")
    sim.spawn(os_.task_body(mid, mid_body()), name="mid")
    sim.spawn(os_.task_body(lo, lo_body()), name="lo")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run(until=rounds * ROUND + ROUND)
    return Fig3Result(sim=sim, trace=sim.trace, os=os_,
                      tasks={"hi": hi, "mid": mid, "lo": lo})


#: fault-demo task set: utilization ~1.17 — overloaded by design
_FAULT_TASKS = (
    ("t1", 4_000, 1_000),
    ("t2", 5_000, 1_200),
    ("t3", 7_500, 5_000),
)
_FAULT_HORIZON = 60_000


def run_fault_demo(sched="priority", seed=1, horizon=_FAULT_HORIZON,
                   trace=None, registry=None, profile=False, spans=True):
    """Overloaded watched task set with a seeded crash; returns a
    :class:`~repro.apps.fig3.Fig3Result`.

    ``t3`` systematically overruns (the task set is infeasible), all
    tasks run under a ``kill`` deadline watchdog, and ``t1`` crashes
    mid-run through the fault injector — so the trace contains
    deadline misses, watchdog kills and an injected-fault kill, each
    of which must close its task's spans with a terminal edge.
    """
    from repro.faults.inject import FaultInjector
    from repro.faults.plan import FaultPlan

    sim = Simulator(trace=trace)
    os_ = RTOSModel(sim, sched=sched, name="fault.os")
    if spans:
        os_.trace_spans(True)
    if registry is not None:
        os_.observe(registry)
    if profile:
        sim.enable_profiling()
    tasks = {}
    for index, (name, period, exec_time) in enumerate(_FAULT_TASKS):
        task = os_.task_create(
            name, PERIODIC, period, exec_time, priority=index + 1
        )
        os_.task_watch(task, policy="kill")
        tasks[name] = task

        def body(exec_time=exec_time):
            while True:
                remaining = exec_time
                while remaining > 0:
                    step = min(500, remaining)
                    yield from os_.time_wait(step)
                    remaining -= step
                yield from os_.task_endcycle()

        sim.spawn(os_.task_body(task, body()), name=name)

    # the crash must land *inside* a t1 job (t1 is the highest-priority
    # task: released every 4000, executing [r, r+1000]) so the injected
    # kill closes an open job span rather than hitting an idle task
    plan = FaultPlan((
        {"kind": "task_crash", "task": "t1", "at": horizon // 2 + 2_500},
    ))
    FaultInjector(sim, plan, seed=seed).arm(model=os_)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run(until=horizon)
    return Fig3Result(sim=sim, trace=sim.trace, os=os_, tasks=tasks)


#: mc-demo task set: (name, period, wcet levels, priority, criticality)
_MC_TASKS = (
    ("lo1", 2_000, 400, 1, "LO"),
    ("lo2", 2_000, 400, 2, "LO"),
    ("hi", 4_000, (1_000, 2_000), 3, "HI"),
)
_MC_HORIZON = 40_000
#: overrun-free time before the mode steps back down
_MC_RECOVERY = 6_000


def run_mc_demo(sched="priority", horizon=_MC_HORIZON, degrade="drop",
                recovery_window=_MC_RECOVERY, trace=None, registry=None,
                profile=False, spans=True):
    """Mixed-criticality raise/recover demo; returns a
    :class:`~repro.apps.fig3.Fig3Result`.

    Two LO tasks outrank the HI task (the classic MC shape: the HI
    task only meets its deadline at the pessimistic budget because the
    mode switch sheds LO load). The HI body alternates between its LO
    budget (1000) and its HI budget (2000), so every other job
    overruns: budget watchdog -> mode raise -> LO releases degraded ->
    hysteresis recovery once the window passes -- a full raise/recover
    cycle roughly every two HI periods, with zero HI deadline misses.
    """
    sim = Simulator(trace=trace)
    os_ = RTOSModel(sim, sched=sched, preemption="immediate", name="mc.os")
    if spans:
        os_.trace_spans(True)
    if registry is not None:
        os_.observe(registry)
    if profile:
        sim.enable_profiling()
    os_.mc_configure(degrade=degrade, recovery_window=recovery_window)
    tasks = {}
    for name, period, wcet, priority, criticality in _MC_TASKS:
        task = os_.task_create(
            name, PERIODIC, period, wcet,
            priority=priority, criticality=criticality,
        )
        tasks[name] = task
        if isinstance(wcet, tuple):
            lo_exec, hi_exec = wcet[0], wcet[-1]

            def body(lo_exec=lo_exec, hi_exec=hi_exec):
                cycle = 0
                while True:
                    yield from os_.time_wait(
                        hi_exec if cycle % 2 else lo_exec
                    )
                    cycle += 1
                    yield from os_.task_endcycle()

        else:

            def body(exec_time=wcet):
                while True:
                    yield from os_.time_wait(exec_time)
                    yield from os_.task_endcycle()

        sim.spawn(os_.task_body(task, body()), name=name)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run(until=horizon)
    return Fig3Result(sim=sim, trace=sim.trace, os=os_, tasks=tasks)
