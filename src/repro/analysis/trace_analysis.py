"""Trace queries used by the experiments.

Works on the :class:`~repro.kernel.trace.Trace` records emitted by the
kernel, the RTOS model and the applications.
"""


def exec_segments(trace, actor=None, merge=False):
    """Execution segments ``(actor, start, end, info)``; optionally merge
    back-to-back segments of the same actor."""
    segments = [s for s in trace.segments(actor) if s[2] > s[1]]
    if not merge:
        return segments
    merged = []
    for seg in segments:
        if merged and merged[-1][0] == seg[0] and merged[-1][2] == seg[1]:
            prev = merged.pop()
            merged.append((prev[0], prev[1], seg[2], prev[3]))
        else:
            merged.append(seg)
    return merged


def exec_time_per_actor(trace):
    """Total execution time accumulated by each actor."""
    totals = {}
    for actor, start, end, _ in trace.segments():
        totals[actor] = totals.get(actor, 0) + (end - start)
    return totals


def completion_time(trace, actor):
    """End of the last execution segment of ``actor`` (None if absent)."""
    segs = trace.segments(actor)
    return segs[-1][2] if segs else None


def first_start(trace, actor):
    """Start of the first non-empty execution segment of ``actor``."""
    for _, start, end, _ in trace.segments(actor):
        if end > start:
            return start
    return None


def marks(trace, actor=None):
    """Application 'user' records as ``(time, actor, info)`` tuples."""
    return [
        (r.time, r.actor, r.info)
        for r in trace.by_category("user")
        if actor is None or r.actor == actor
    ]


def mark_time(trace, info, actor=None, occurrence=0):
    """Time of the n-th 'user' mark with the given info label."""
    found = [m for m in marks(trace, actor) if m[2] == info]
    if occurrence >= len(found):
        raise ValueError(f"mark {info!r} occurrence {occurrence} not found")
    return found[occurrence][0]


def response_latencies(trace, stimulus_actor, completion_info, actor=None):
    """Pair each IRQ raise of ``stimulus_actor`` with the next user mark
    ``completion_info`` and return the latency list.

    Measures interrupt-to-completion response times (the property the
    paper's preemption modeling exists to estimate).
    """
    raises = [
        r.time
        for r in trace.by_category("irq")
        if r.actor == stimulus_actor and r.info == "raise"
    ]
    completions = [m[0] for m in marks(trace, actor) if m[2] == completion_info]
    latencies = []
    for t_raise in raises:
        after = [t for t in completions if t >= t_raise]
        if after:
            latencies.append(after[0] - t_raise)
    return latencies


def context_switch_times(trace, os_name=None):
    """Times of scheduler 'switch' records."""
    return [
        r.time
        for r in trace.by_category("sched")
        if r.info == "switch" and (os_name is None or r.actor == os_name)
    ]


def overlap_exists(trace, actor_a, actor_b):
    """True if any execution segments of the two actors overlap in time.

    Distinguishes the unscheduled model (true parallelism — Figure 8(a))
    from the serialized architecture model (Figure 8(b): never overlaps).
    """
    segs_a = exec_segments(trace, actor_a)
    segs_b = exec_segments(trace, actor_b)
    for _, sa, ea, _ in segs_a:
        for _, sb, eb, _ in segs_b:
            if sa < eb and sb < ea:
                return True
    return False
