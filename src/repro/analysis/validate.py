"""Cross-model validation helpers.

Refinement must preserve functionality and total computation while
changing only the schedule; these checks formalize that.
"""

from repro.analysis.trace_analysis import exec_time_per_actor, marks


def same_functional_marks(trace_a, trace_b, actors=None):
    """True if both traces contain the same user marks per actor, in the
    same per-actor order (timestamps are allowed to differ — scheduling
    moves work in time, never changes it)."""
    return _marks_by_actor(trace_a, actors) == _marks_by_actor(trace_b, actors)


def _marks_by_actor(trace, actors):
    by_actor = {}
    for _, actor, info in marks(trace):
        if actors is not None and actor not in actors:
            continue
        by_actor.setdefault(actor, []).append(info)
    return by_actor


def exec_time_preserved(trace_a, trace_b, actors):
    """True if each actor accumulated identical execution time in both
    traces (delays are annotated per behavior, so serialization must not
    change totals)."""
    totals_a = exec_time_per_actor(trace_a)
    totals_b = exec_time_per_actor(trace_b)
    return all(totals_a.get(a, 0) == totals_b.get(a, 0) for a in actors)


def serialized(trace, actors):
    """True if no two actors' execution segments ever overlap — the
    defining property of the RTOS-scheduled architecture model."""
    from repro.analysis.trace_analysis import overlap_exists

    for i, a in enumerate(actors):
        for b in actors[i + 1:]:
            if overlap_exists(trace, a, b):
                return False
    return True
