"""ASCII Gantt rendering of execution traces.

Used by the examples and benches to print Figure-8-style timelines:

::

    B3   |  ████·······████████····████  |
    B2   |  ········████····█████████··  |
"""

from repro.analysis.trace_analysis import exec_segments

FILL = "#"
IDLE = "."


def render(trace, actors=None, width=72, t_end=None, markers=None):
    """Render execution segments as an ASCII Gantt chart.

    Parameters
    ----------
    actors:
        Row order; defaults to actors in order of first appearance.
    width:
        Number of character cells the time axis is quantized into.
    t_end:
        Time span to show; defaults to the last segment end.
    markers:
        Optional ``{label: time}`` drawn as a ruler row underneath.
    """
    segments = exec_segments(trace)
    if actors is None:
        actors = []
        for actor, *_ in segments:
            if actor not in actors:
                actors.append(actor)
    if t_end is None:
        t_end = max((s[2] for s in segments), default=0)
    if t_end <= 0:
        return "(empty trace)"
    scale = width / t_end
    name_width = max((len(a) for a in actors), default=4) + 1
    lines = []
    for actor in actors:
        row = [IDLE] * width
        for _, start, end, _ in exec_segments(trace, actor):
            lo = int(start * scale)
            hi = max(lo + 1, int(end * scale))
            for i in range(lo, min(hi, width)):
                row[i] = FILL
        lines.append(f"{actor:<{name_width}}|{''.join(row)}|")
    axis = f"{'':<{name_width}}|{_axis(width, t_end)}|"
    lines.append(axis)
    if markers:
        lines.append(_marker_row(markers, name_width, width, scale))
    return "\n".join(lines)


def _axis(width, t_end):
    row = [" "] * width
    for frac in (0.0, 0.25, 0.5, 0.75):
        pos = int(frac * width)
        label = str(int(frac * t_end))
        for i, ch in enumerate(label):
            if pos + i < width:
                row[pos + i] = ch
    tail = str(t_end)
    for i, ch in enumerate(reversed(tail)):
        row[width - 1 - i] = ch
    return "".join(row)


def _marker_row(markers, name_width, width, scale):
    row = [" "] * width
    for label, time in markers.items():
        pos = min(int(time * scale), width - 1)
        row[pos] = "^"
    legend = " ".join(f"{label}={time}" for label, time in markers.items())
    return f"{'':<{name_width}}|{''.join(row)}|  {legend}"
