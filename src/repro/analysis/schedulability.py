"""Analytic schedulability for hierarchically scheduled multi-PE systems.

A second ground truth besides simulation: classic compositional
real-time analysis over the same system the simulator executes
(:mod:`repro.rtos.sched.hier` + :mod:`repro.platform`). The
cross-validation harness (:mod:`repro.analysis.crossval`) asserts the
two agree — no analytically-schedulable task may miss a deadline in
simulation.

The math is the periodic resource model (a component is a server
supplying ``Θ`` units of CPU every ``Π``) and its linear BDR bound:

* **demand-bound function** ``dbf(W, t)`` — the maximum execution demand
  a taskset ``W`` can release and require finished inside any window of
  length ``t`` (EDF viewpoint);
* **supply-bound function** ``sbf(Θ, Π, t)`` — the minimum CPU supply a
  periodic server guarantees in any window of length ``t``; the
  worst-case blackout is ``2(Π − Θ)`` (budget given at the start of one
  period, then at the end of the next);
* a component's taskset is schedulable iff demand never exceeds supply:
  ``dbf(t) ≤ sbf(t)`` at every deadline-aligned test point (EDF), or per
  task via time-demand analysis against ``sbf`` (fixed priority);
* the **top level** treats each server as a periodic task
  ``(C=Θ, T=Π, D=Π)`` on the full CPU: utilization bound for an EDF top
  level, response-time analysis for a fixed-priority top level.

The analysis is deliberately *conservative* where it must truncate
(hyperperiod caps): it may call a schedulable system unschedulable,
never the reverse — the direction the cross-validation contract needs.

All times are integers in the simulator's time unit. Heterogeneous
cores are handled exactly like the platform layer: per-PE ``speed``
scales WCETs via ``ceil(wcet / speed)``.
"""

import math
from dataclasses import dataclass, field

__all__ = [
    "TaskSpec",
    "ComponentSpec",
    "PESpec",
    "SystemSpec",
    "TaskVerdict",
    "ComponentVerdict",
    "SystemVerdict",
    "MCTaskSpec",
    "MCTaskVerdict",
    "MCVerdict",
    "bdr_interface",
    "check_amc_rtb",
    "check_component",
    "check_edf_vd",
    "check_system",
    "dbf",
    "sbf_bdr",
    "sbf_full",
    "sbf_periodic",
]

#: cap on analysis horizons when the taskset hyperperiod explodes; a
#: truncated check reports unschedulable (conservative), never the reverse
MAX_TEST_POINTS = 50_000


# ---------------------------------------------------------------------------
# system specification (mirrors the runtime objects, but pure data)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaskSpec:
    """A periodic task: release every ``period``, run ``wcet``, finish
    within ``deadline`` (constrained: ``deadline <= period``)."""

    name: str
    period: int
    wcet: int
    deadline: int = None
    priority: int = None

    def __post_init__(self):
        if self.period <= 0 or self.wcet <= 0:
            raise ValueError(f"task {self.name!r}: period and wcet must be > 0")
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if not 0 < self.deadline <= self.period:
            raise ValueError(
                f"task {self.name!r}: need 0 < deadline <= period "
                f"(got D={self.deadline}, T={self.period})"
            )

    def scaled(self, speed):
        """This task's demand on a core with the given speed factor."""
        if speed == 1.0:
            return self
        return TaskSpec(self.name, self.period, math.ceil(self.wcet / speed),
                        self.deadline, self.priority)

    @property
    def utilization(self):
        return self.wcet / self.period


@dataclass(frozen=True)
class ComponentSpec:
    """A resource server: ``budget`` units of CPU per ``period``, local
    policy ``"edf"`` or ``"priority"``. ``budget=None`` models the
    unbounded background server (best effort — excluded from
    guarantees)."""

    name: str
    budget: int = None
    period: int = None
    policy: str = "edf"
    priority: int = 0
    tasks: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "tasks", tuple(self.tasks))
        if self.policy not in ("edf", "priority", "rms"):
            raise ValueError(
                f"component {self.name!r}: unsupported local policy "
                f"{self.policy!r}"
            )
        if self.budget is not None:
            if self.period is None or self.period <= 0 or self.budget <= 0:
                raise ValueError(
                    f"component {self.name!r}: need positive budget and period"
                )
            if self.budget > self.period:
                raise ValueError(
                    f"component {self.name!r}: budget exceeds period"
                )

    @property
    def bounded(self):
        return self.budget is not None

    @property
    def server_utilization(self):
        return self.budget / self.period if self.bounded else 0.0


@dataclass(frozen=True)
class PESpec:
    """One core: top-level server policy, speed factor, components."""

    name: str
    top: str = "priority"
    speed: float = 1.0
    components: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "components", tuple(self.components))
        if self.top not in ("priority", "edf"):
            raise ValueError(f"PE {self.name!r}: unknown top policy {self.top!r}")
        if self.speed <= 0:
            raise ValueError(f"PE {self.name!r}: speed must be positive")


@dataclass(frozen=True)
class SystemSpec:
    """A multi-PE system (PEs are analyzed independently — tasks are
    statically mapped, no migration)."""

    name: str
    pes: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "pes", tuple(self.pes))


# ---------------------------------------------------------------------------
# verdicts
# ---------------------------------------------------------------------------


@dataclass
class TaskVerdict:
    task: str
    schedulable: bool
    #: analysis guarantees only hold for tasks in bounded components
    guaranteed: bool
    reason: str = ""


@dataclass
class ComponentVerdict:
    component: str
    pe: str
    schedulable: bool
    #: background servers are best-effort: never *guaranteed* schedulable
    best_effort: bool
    utilization: float
    tasks: list = field(default_factory=list)
    reason: str = ""


@dataclass
class SystemVerdict:
    system: str
    schedulable: bool
    components: list = field(default_factory=list)
    #: per-PE top-level verdicts: pe name -> (ok, reason)
    top_level: dict = field(default_factory=dict)

    @property
    def guaranteed_tasks(self):
        """Names of tasks the analysis certifies to always meet deadlines."""
        names = []
        for comp in self.components:
            for task in comp.tasks:
                if task.guaranteed and task.schedulable:
                    names.append(task.task)
        return names

    def task_verdict(self, name):
        for comp in self.components:
            for task in comp.tasks:
                if task.task == name:
                    return task
        raise KeyError(f"no task named {name!r} in the verdict")


# ---------------------------------------------------------------------------
# bound functions
# ---------------------------------------------------------------------------


def sbf_periodic(budget, period, t):
    """Minimum supply of a periodic server ``(Θ=budget, Π=period)`` over
    any interval of length ``t`` (Shin & Lee's periodic resource model).

    Worst case: the interval starts right after a full budget was
    delivered at the *start* of a period, and the next budget is
    delivered at the *end* of the following one — a blackout of
    ``2(Π − Θ)`` — then ``Θ`` per period, delivered as late as possible.
    """
    if t <= 0:
        return 0
    if budget >= period:
        return t  # degenerate: the server owns the CPU
    s = t - 2 * (period - budget)
    if s <= 0:
        return 0
    k = s // period
    return k * budget + min(s - k * period, budget)


def sbf_full(t):
    """Supply of a dedicated CPU."""
    return max(0, t)


def bdr_interface(budget, period):
    """The server's bounded-delay-resource abstraction ``(α, Δ)``:
    availability factor and worst-case supply delay."""
    return budget / period, 2 * (period - budget)


def sbf_bdr(alpha, delta, t):
    """Linear BDR lower bound on supply: ``α · (t − Δ)``.

    ``sbf_bdr(*bdr_interface(Θ, Π), t) <= sbf_periodic(Θ, Π, t)`` for
    all t — the property test pins this.
    """
    if t <= delta:
        return 0.0
    return alpha * (t - delta)


def dbf(tasks, t):
    """EDF demand bound of ``tasks`` over any interval of length ``t``:
    total work that can be both released and due within the interval."""
    demand = 0
    for task in tasks:
        jobs = (t - task.deadline) // task.period + 1
        if jobs > 0:
            demand += jobs * task.wcet
    return demand


def _dbf_test_points(tasks, bound):
    """Deadline-aligned step points of ``dbf`` up to ``bound``:
    ``{D_i + k·T_i}``. Returns None if the point set would exceed
    MAX_TEST_POINTS (caller must treat as "analysis truncated")."""
    points = set()
    for task in tasks:
        d = task.deadline
        while d <= bound:
            points.add(d)
            d += task.period
            if len(points) > MAX_TEST_POINTS:
                return None
    return sorted(points)


def _analysis_bound(tasks, server_period):
    """Horizon for the EDF demand check: the taskset hyperperiod plus
    one server period covers every alignment of demand vs supply."""
    bound = math.lcm(*(task.period for task in tasks))
    if server_period:
        bound += server_period
    return bound


# ---------------------------------------------------------------------------
# component-level checks
# ---------------------------------------------------------------------------


def check_component(comp, speed=1.0, supply=None):
    """Check one component's taskset against its server supply.

    ``supply`` is a function ``t -> minimum CPU time`` (defaults to the
    component's own periodic-server ``sbf``; pass :func:`sbf_full` for a
    dedicated core). Returns a :class:`ComponentVerdict`.
    """
    tasks = [task.scaled(speed) for task in comp.tasks]
    utilization = sum(task.utilization for task in tasks)
    if not comp.bounded:
        # background server: whatever slack exists, no guarantee
        verdict = ComponentVerdict(
            comp.name, "?", schedulable=True, best_effort=True,
            utilization=utilization,
            reason="background server: best effort, no guarantee",
        )
        verdict.tasks = [
            TaskVerdict(task.name, True, guaranteed=False,
                        reason="background server")
            for task in tasks
        ]
        return verdict
    if supply is None:
        budget, period = comp.budget, comp.period

        def supply(t):
            return sbf_periodic(budget, period, t)

    if not tasks:
        return ComponentVerdict(comp.name, "?", True, False, 0.0,
                                reason="empty taskset")
    if comp.policy == "edf":
        ok, task_verdicts, reason = _check_edf(tasks, supply, comp.period)
    else:  # "priority" / "rms"
        ok, task_verdicts, reason = _check_fp(tasks, supply,
                                              rms=comp.policy == "rms")
    verdict = ComponentVerdict(comp.name, "?", ok, False, utilization,
                               reason=reason)
    verdict.tasks = task_verdicts
    return verdict


def _check_edf(tasks, supply, server_period):
    """EDF demand check: ``dbf(t) <= supply(t)`` at every step point."""
    bound = _analysis_bound(tasks, server_period)
    points = _dbf_test_points(tasks, bound)
    if points is None:
        return False, [
            TaskVerdict(task.name, False, True, reason="analysis truncated")
            for task in tasks
        ], (
            f"hyperperiod needs more than {MAX_TEST_POINTS} test points; "
            f"conservatively unschedulable"
        )
    for t in points:
        demand = dbf(tasks, t)
        if demand > supply(t):
            # under EDF an overload is a taskset-wide property: every
            # task may be the one that misses
            reason = f"dbf({t})={demand} > sbf({t})={supply(t)}"
            return False, [
                TaskVerdict(task.name, False, True, reason=reason)
                for task in tasks
            ], reason
    return True, [
        TaskVerdict(task.name, True, True) for task in tasks
    ], ""


def _check_fp(tasks, supply, rms=False):
    """Fixed-priority time-demand analysis against the supply bound.

    For each task (priority order; lower value = more urgent): find a
    point ``t <= D_i`` where its WCET plus all higher-priority
    interference fits into the guaranteed supply.
    """
    def prio(task):
        if rms:
            return (task.period, task.name)
        p = task.priority if task.priority is not None else 10**9
        return (p, task.name)

    ordered = sorted(tasks, key=prio)
    verdicts = []
    all_ok = True
    first_reason = ""
    for i, task in enumerate(ordered):
        higher = ordered[:i]
        ok, reason = _tda_fits(task, higher, supply)
        if not ok:
            all_ok = False
            if not first_reason:
                first_reason = f"{task.name}: {reason}"
        verdicts.append(TaskVerdict(task.name, ok, True, reason=reason))
    order = {task.name: j for j, task in enumerate(tasks)}
    verdicts.sort(key=lambda v: order[v.task])
    return all_ok, verdicts, first_reason


def _tda_fits(task, higher, supply):
    """Does ``task``'s demand fit the supply at some ``t <= D``?"""
    def demand(t):
        return task.wcet + sum(
            math.ceil(t / h.period) * h.wcet for h in higher
        )

    # testing points: multiples of higher-priority periods in (0, D],
    # plus the deadline itself
    points = {task.deadline}
    for h in higher:
        m = h.period
        while m < task.deadline:
            points.add(m)
            m += h.period
        if len(points) > MAX_TEST_POINTS:
            return False, "analysis truncated"
    for t in sorted(points):
        if demand(t) <= supply(t):
            return True, ""
    t = task.deadline
    return False, f"demand({t})={demand(t)} > sbf({t})={supply(t)}"


# ---------------------------------------------------------------------------
# top level: servers as periodic tasks on the full CPU
# ---------------------------------------------------------------------------


def _check_top_level(pe):
    """Can the PE's servers all deliver their budgets on time?"""
    servers = [comp for comp in pe.components if comp.bounded]
    if not servers:
        return True, "no bounded servers"
    utilization = sum(s.server_utilization for s in servers)
    if pe.top == "edf":
        if utilization > 1.0 + 1e-9:
            return False, (
                f"server utilization {utilization:.3f} > 1 under EDF"
            )
        return True, f"server utilization {utilization:.3f} <= 1"
    # fixed-priority top level: response-time fixed point per server
    ordered = sorted(servers, key=lambda s: (s.priority, s.name))
    for i, server in enumerate(ordered):
        higher = ordered[:i]
        r = server.budget
        for _ in range(MAX_TEST_POINTS):
            interference = sum(
                math.ceil(r / h.period) * h.budget for h in higher
            )
            nxt = server.budget + interference
            if nxt == r:
                break
            r = nxt
            if r > server.period:
                break
        if r > server.period:
            return False, (
                f"server {server.name!r}: worst-case budget delivery "
                f"{r} > period {server.period}"
            )
    return True, "all server response times within periods"


# ---------------------------------------------------------------------------
# mixed criticality: AMC-rtb (fixed priority) and EDF-VD (EDF)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MCTaskSpec:
    """A dual-criticality sporadic/periodic task (Vestal model).

    ``wcet_lo`` is the optimistic (LO-mode) budget, ``wcet_hi`` the
    pessimistic (HI-mode) one; LO tasks default ``wcet_hi`` to
    ``wcet_lo`` (they receive no HI-mode allowance). ``priority``
    (lower = more urgent) is used by :func:`check_amc_rtb` only.
    """

    name: str
    period: int
    wcet_lo: int
    wcet_hi: int = None
    criticality: str = "LO"
    deadline: int = None
    priority: int = None

    def __post_init__(self):
        if self.period <= 0 or self.wcet_lo <= 0:
            raise ValueError(
                f"task {self.name!r}: period and wcet_lo must be > 0"
            )
        if self.criticality not in ("LO", "HI"):
            raise ValueError(
                f"task {self.name!r}: criticality must be 'LO' or 'HI', "
                f"got {self.criticality!r}"
            )
        if self.wcet_hi is None:
            object.__setattr__(self, "wcet_hi", self.wcet_lo)
        if self.wcet_hi < self.wcet_lo:
            raise ValueError(
                f"task {self.name!r}: need wcet_lo <= wcet_hi "
                f"(got {self.wcet_lo} > {self.wcet_hi})"
            )
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if not 0 < self.deadline <= self.period:
            raise ValueError(
                f"task {self.name!r}: need 0 < deadline <= period "
                f"(got D={self.deadline}, T={self.period})"
            )

    @property
    def is_hi(self):
        return self.criticality == "HI"

    def utilization(self, level):
        wcet = self.wcet_hi if level == "HI" else self.wcet_lo
        return wcet / self.period


@dataclass
class MCTaskVerdict:
    task: str
    criticality: str
    schedulable: bool
    #: worst-case response times per analyzed phase (AMC-rtb);
    #: ``None`` for phases the task does not participate in
    response_lo: int = None
    response_hi: int = None
    response_switch: int = None
    reason: str = ""


@dataclass
class MCVerdict:
    """Outcome of one mixed-criticality schedulability test.

    ``schedulable`` means *certified*: every task meets its deadline in
    LO mode, and every HI task also meets it in steady HI mode and
    across the mode switch — the property the MC cross-validation
    asserts against simulation.
    """

    test: str
    schedulable: bool
    tasks: list = field(default_factory=list)
    #: utilization summary: (level of task, level of budget) -> value
    utilization: dict = field(default_factory=dict)
    #: EDF-VD deadline-scaling factor (None for AMC / unused)
    x_factor: float = None
    reason: str = ""

    def task_verdict(self, name):
        for tv in self.tasks:
            if tv.task == name:
                return tv
        raise KeyError(f"no task named {name!r} in the verdict")

    @property
    def hi_tasks(self):
        return [tv for tv in self.tasks if tv.criticality == "HI"]


def _rta(own_wcet, deadline, interference):
    """Response-time fixed point ``R = own_wcet + interference(R)``.

    Returns the converged response time, or ``None`` when it exceeds
    ``deadline`` (busy-window divergence included).
    """
    r = own_wcet
    for _ in range(MAX_TEST_POINTS):
        nxt = own_wcet + interference(r)
        if nxt == r:
            # converged — but the fixed point itself must meet the
            # deadline (own_wcet alone can already exceed it)
            return r if r <= deadline else None
        r = nxt
        if r > deadline:
            return None
    return None  # did not converge: conservatively unschedulable


def check_amc_rtb(tasks, lo_period_scale=None):
    """Adaptive mixed criticality, response-time-bound flavor (AMC-rtb).

    Fixed-priority scheduling (explicit ``priority``, lower = more
    urgent), the Baruah/Burns/Davis 2011 sufficient test, three phases:

    1. **LO mode**: every task's response with all tasks at their LO
       budgets must meet its deadline;
    2. **steady HI mode**: every HI task's response with only HI tasks
       (at HI budgets) interfering must meet its deadline — LO tasks
       receive no further releases after the switch;
    3. **mode switch** (the rtb bound): every HI task's response with
       HI interference at HI budgets *plus* LO carry-over interference
       capped at its own LO-mode response time must meet its deadline::

           R*_i = C_i(HI) + Σ_{j∈hpH(i)} ⌈R*_i/T_j⌉·C_j(HI)
                          + Σ_{k∈hpL(i)} ⌈R^LO_i/T_k⌉·C_k(LO)

    ``lo_period_scale`` adapts the test to degradation policies that
    *slow* LO tasks instead of stopping them (``skip``'s release
    decimation, ``elastic``'s period stretch): phases 2 and 3 then add
    post-switch LO interference at periods scaled by that factor (on
    top of the unscaled carry-over term — conservatively counting
    both). ``None`` models ``drop`` (classical AMC: no LO releases
    after the switch).

    Sufficient, not necessary: certified ⇒ no HI-task deadline miss no
    matter when (or whether) the switch happens.
    """
    tasks = list(tasks)
    if lo_period_scale is not None and lo_period_scale < 1:
        raise ValueError(
            f"lo_period_scale must be >= 1, got {lo_period_scale!r}"
        )
    if any(task.priority is None for task in tasks):
        raise ValueError("AMC-rtb needs an explicit priority on every task")
    ordered = sorted(tasks, key=lambda t: (t.priority, t.name))
    verdict = MCVerdict("amc-rtb", True)
    verdict.utilization = _mc_utilization(tasks)
    by_name = {}
    for i, task in enumerate(ordered):
        higher = ordered[:i]
        tv = MCTaskVerdict(task.name, task.criticality, True)
        by_name[task.name] = tv

        tv.response_lo = _rta(
            task.wcet_lo, task.deadline,
            lambda r, higher=higher: sum(
                math.ceil(r / h.period) * h.wcet_lo for h in higher
            ),
        )
        if tv.response_lo is None:
            tv.schedulable = False
            tv.reason = "LO-mode response exceeds deadline"
        if task.is_hi and tv.schedulable:
            hp_hi = [h for h in higher if h.is_hi]
            hp_lo = [h for h in higher if not h.is_hi]

            def hi_interference(r, hp_hi=hp_hi, hp_lo=hp_lo):
                total = sum(
                    math.ceil(r / h.period) * h.wcet_hi for h in hp_hi
                )
                if lo_period_scale is not None:
                    # degraded LO tasks keep releasing, slower
                    total += sum(
                        math.ceil(r / (k.period * lo_period_scale))
                        * k.wcet_lo
                        for k in hp_lo
                    )
                return total

            tv.response_hi = _rta(task.wcet_hi, task.deadline,
                                  hi_interference)
            if tv.response_hi is None:
                tv.schedulable = False
                tv.reason = "steady HI-mode response exceeds deadline"
            else:
                r_lo = tv.response_lo
                carry = sum(
                    math.ceil(r_lo / k.period) * k.wcet_lo for k in hp_lo
                )
                tv.response_switch = _rta(
                    task.wcet_hi + carry, task.deadline, hi_interference,
                )
                if tv.response_switch is None:
                    tv.schedulable = False
                    tv.reason = "mode-switch response exceeds deadline"
        if not tv.schedulable:
            verdict.schedulable = False
            if not verdict.reason:
                verdict.reason = f"{task.name}: {tv.reason}"
    verdict.tasks = [by_name[task.name] for task in tasks]
    return verdict


def check_edf_vd(tasks):
    """EDF with virtual deadlines, utilization-based sufficient test.

    Baruah et al. 2012: with ``U_LO^LO`` (LO tasks at LO budgets),
    ``U_HI^LO`` and ``U_HI^HI`` (HI tasks at LO / HI budgets):

    * ``U_LO^LO + U_HI^HI <= 1`` — schedulable by plain EDF, no
      deadline scaling needed (``x = 1``);
    * otherwise schedulable by EDF-VD iff
      ``x := U_HI^LO / (1 − U_LO^LO)`` satisfies
      ``x·U_LO^LO + U_HI^HI <= ...`` i.e.
      ``U_HI^LO / (1 − U_LO^LO) <= (1 − U_HI^HI) / U_LO^LO`` —
      HI deadlines are then scaled by ``x`` in LO mode.

    Analytic certificate only: the runtime model enforces budgets and
    modes but does not scale deadlines (documented scope boundary).
    """
    tasks = list(tasks)
    u = _mc_utilization(tasks)
    u_lo_lo = u[("LO", "LO")]
    u_hi_lo = u[("HI", "LO")]
    u_hi_hi = u[("HI", "HI")]
    verdict = MCVerdict("edf-vd", True)
    verdict.utilization = u
    verdict.tasks = [
        MCTaskVerdict(task.name, task.criticality, True) for task in tasks
    ]

    def fail(reason):
        verdict.schedulable = False
        verdict.reason = reason
        for tv in verdict.tasks:
            tv.schedulable = False
            tv.reason = reason
        return verdict

    if u_lo_lo + u_hi_lo > 1.0 + 1e-9:
        return fail(
            f"LO-mode utilization {u_lo_lo + u_hi_lo:.3f} > 1"
        )
    if u_hi_hi > 1.0 + 1e-9:
        return fail(f"HI-mode utilization {u_hi_hi:.3f} > 1")
    if u_lo_lo + u_hi_hi <= 1.0 + 1e-9:
        verdict.x_factor = 1.0
        verdict.reason = "plain EDF sufficient (U_LO^LO + U_HI^HI <= 1)"
        return verdict
    if u_lo_lo >= 1.0:
        return fail(f"LO-task utilization {u_lo_lo:.3f} leaves no slack")
    x = u_hi_lo / (1.0 - u_lo_lo)
    if x * u_lo_lo + u_hi_hi <= 1.0 + 1e-9:
        verdict.x_factor = round(x, 6)
        verdict.reason = f"EDF-VD with deadline scale x={x:.3f}"
        return verdict
    return fail(
        f"EDF-VD condition violated: x·U_LO^LO + U_HI^HI = "
        f"{x * u_lo_lo + u_hi_hi:.3f} > 1"
    )


def _mc_utilization(tasks):
    u = {("LO", "LO"): 0.0, ("HI", "LO"): 0.0, ("HI", "HI"): 0.0}
    for task in tasks:
        if task.is_hi:
            u[("HI", "LO")] += task.wcet_lo / task.period
            u[("HI", "HI")] += task.wcet_hi / task.period
        else:
            u[("LO", "LO")] += task.wcet_lo / task.period
    return {key: round(value, 6) for key, value in u.items()}


def check_system(spec):
    """Analyze every PE of ``spec``; returns a :class:`SystemVerdict`.

    The system is *schedulable* iff every top level delivers its server
    budgets and every bounded component's taskset fits its supply.
    Background components never affect the verdict (best effort).
    """
    verdict = SystemVerdict(spec.name, True)
    for pe in spec.pes:
        top_ok, top_reason = _check_top_level(pe)
        verdict.top_level[pe.name] = (top_ok, top_reason)
        for comp in pe.components:
            cv = check_component(comp, speed=pe.speed)
            cv.pe = pe.name
            if comp.bounded and not top_ok:
                # supply promise broken upstream: nothing downstream holds
                cv.schedulable = False
                if not cv.reason:
                    cv.reason = f"top level: {top_reason}"
                for tv in cv.tasks:
                    tv.schedulable = False
                    if not tv.reason:
                        tv.reason = f"top level: {top_reason}"
            if not cv.best_effort and not cv.schedulable:
                verdict.schedulable = False
            verdict.components.append(cv)
        if not top_ok:
            verdict.schedulable = False
    return verdict
