"""Cross-validation: simulator vs analytic schedulability.

The contract this module enforces — the repo's second ground truth
besides the ISS comparison of the paper:

    If :func:`repro.analysis.schedulability.check_system` certifies a
    task schedulable, then simulating the same system spec (hierarchical
    scheduler, immediate preemption, deadline watchdogs armed) must show
    **zero** deadline misses for that task.

The reverse direction is not a theorem (the analysis is conservative:
worst-case release alignment may not occur in one finite simulation),
but the generated matrix includes grossly overloaded configurations that
demonstrably miss, so both verdicts stay exercised.

Usage::

    PYTHONPATH=src python -m repro.analysis.crossval --count 20 --seed 7

exits non-zero on any contract violation.
"""

import argparse
import json
import math
import random

from repro.analysis.schedulability import (
    ComponentSpec,
    MCTaskSpec,
    PESpec,
    SystemSpec,
    TaskSpec,
    check_amc_rtb,
    check_edf_vd,
    check_system,
)
from repro.platform.architecture import Architecture
from repro.rtos.sched.hier import Component
from repro.rtos.task import PERIODIC

__all__ = [
    "build_architecture",
    "cross_validate",
    "cross_validate_mc",
    "generate_matrix",
    "generate_mc_matrix",
    "run_matrix",
    "run_mc_matrix",
    "simulate",
    "simulate_mc",
]


# ---------------------------------------------------------------------------
# spec -> runtime system
# ---------------------------------------------------------------------------


def _periodic_body(os_model, wcet):
    """Standard periodic task body: execute, end the cycle, repeat."""

    def body():
        while True:
            yield from os_model.time_wait(wcet)
            yield from os_model.task_endcycle()

    return body()


def build_architecture(spec, preemption="immediate"):
    """Instantiate the runtime system a :class:`SystemSpec` describes.

    Immediate preemption by default: budget enforcement is then exact
    (no step-granularity overrun), matching the analysis' supply model.
    Every task is watched with a ``"log"`` deadline watchdog
    (:mod:`repro.faults`), so misses are detected eagerly at the missed
    deadline — not lazily at the task's next ``endcycle``.
    """
    arch = Architecture(name=spec.name)
    arch.sim.trace.enabled = False
    for pe_spec in spec.pes:
        components = [
            Component(c.name, c.budget, c.period, policy=c.policy,
                      priority=c.priority)
            for c in pe_spec.components
        ]
        pe = arch.add_pe(pe_spec.name, sched=pe_spec.top,
                         preemption=preemption, speed=pe_spec.speed,
                         components=components)
        for comp_spec in pe_spec.components:
            for task_spec in comp_spec.tasks:
                task = pe.add_task(
                    task_spec.name,
                    _periodic_body(pe.os, pe.scaled_wcet(task_spec.wcet)),
                    tasktype=PERIODIC,
                    period=task_spec.period,
                    wcet=task_spec.wcet,
                    priority=task_spec.priority,
                    rel_deadline=(
                        task_spec.deadline
                        if task_spec.deadline != task_spec.period else None
                    ),
                    component=comp_spec.name,
                )
                pe.os.task_watch(task, policy="log")
    return arch


def _horizon_for(spec, cap=2_000_000):
    """Simulation length: two hyperperiods (all task and server periods),
    at least ten of the largest period, capped to keep runs fast."""
    periods = [1]
    for pe in spec.pes:
        for comp in pe.components:
            if comp.bounded:
                periods.append(comp.period)
            periods.extend(task.period for task in comp.tasks)
    horizon = min(2 * math.lcm(*periods), cap)
    return max(horizon, 10 * max(periods))


def simulate(spec, horizon=None, preemption="immediate"):
    """Run ``spec`` and return per-task simulation results.

    Returns a dict ``task name -> {"misses", "releases", "cycles",
    "worst_response", "component", "pe"}`` plus per-component budget
    stats under the ``"__components__"`` key.
    """
    if horizon is None:
        horizon = _horizon_for(spec)
    arch = build_architecture(spec, preemption=preemption)
    arch.run(until=horizon)
    results = {}
    comp_stats = {}
    for pe_spec in spec.pes:
        pe = arch.pes[pe_spec.name]
        by_name = {task.name: task for task in pe.tasks}
        for comp_spec in pe_spec.components:
            comp = pe.component(comp_spec.name)
            comp_stats[f"{pe_spec.name}.{comp_spec.name}"] = {
                "throttles": comp.stats.throttles,
                "max_window_consumption": comp.stats.max_window_consumption,
                "budget": comp.budget,
            }
            for task_spec in comp_spec.tasks:
                task = by_name[task_spec.name]
                results[task_spec.name] = {
                    "misses": task.stats.deadline_misses,
                    "releases": task.stats.activations + task.stats.cycles_completed,
                    "cycles": task.stats.cycles_completed,
                    "worst_response": task.stats.worst_response,
                    "component": comp_spec.name,
                    "pe": pe_spec.name,
                }
    results["__components__"] = comp_stats
    return results


# ---------------------------------------------------------------------------
# the contract
# ---------------------------------------------------------------------------


def cross_validate(spec, horizon=None):
    """Run ``spec`` through analysis *and* simulation; compare.

    Returns a dict with the analytic verdict, the simulated miss counts,
    and ``"consistent"`` — False iff a task the analysis guarantees
    missed a deadline in simulation (the contract violation).
    """
    verdict = check_system(spec)
    sim_results = simulate(spec, horizon=horizon)
    guaranteed = set(verdict.guaranteed_tasks)
    violations = []
    missed_tasks = []
    for name, row in sim_results.items():
        if name == "__components__":
            continue
        if row["misses"] > 0:
            missed_tasks.append(name)
            if name in guaranteed:
                violations.append(
                    f"task {name!r} certified schedulable but missed "
                    f"{row['misses']} deadlines in simulation"
                )
    return {
        "system": spec.name,
        "analysis_schedulable": verdict.schedulable,
        "guaranteed_tasks": sorted(guaranteed),
        "simulated_misses": {
            name: row["misses"]
            for name, row in sim_results.items()
            if name != "__components__"
        },
        "missed_tasks": sorted(missed_tasks),
        "component_stats": sim_results["__components__"],
        "violations": violations,
        "consistent": not violations,
    }


# ---------------------------------------------------------------------------
# generated configuration matrix
# ---------------------------------------------------------------------------

#: harmonic period menu keeps hyperperiods (and therefore both the
#: analysis point sets and the simulation horizon) small
_PERIODS = (1000, 2000, 4000, 8000)


def _random_component(rng, index, server_util, overload):
    # server periods an order of magnitude below the task periods keep
    # the supply blackout 2(Π−Θ) far under every deadline — the regime
    # hierarchical systems are designed in
    period = rng.choice((100, 200, 250))
    budget = max(1, int(period * server_util))
    if overload:
        # demand clearly above the full server supply: these must miss
        target_util = server_util * rng.uniform(1.5, 2.0)
    else:
        # demand well under the BDR availability factor, so the
        # conservative analysis certifies it
        target_util = server_util * rng.uniform(0.35, 0.6)
    policy = rng.choice(("edf", "priority"))
    tasks = []
    remaining = target_util
    n_tasks = rng.randint(1, 3)
    for t in range(n_tasks):
        share = remaining / (n_tasks - t)
        task_period = rng.choice(_PERIODS)
        wcet = max(1, int(task_period * share))
        tasks.append(TaskSpec(
            name=f"c{index}t{t}",
            period=task_period,
            wcet=wcet,
            priority=t if policy == "priority" else None,
        ))
        remaining -= share
    return ComponentSpec(
        name=f"comp{index}",
        budget=budget,
        period=period,
        policy=policy,
        priority=index,
        tasks=tuple(tasks),
    )


def generate_matrix(count=20, seed=7):
    """Deterministically generate ``count`` system configurations.

    Roughly 60% aim to be schedulable (low demand vs supply), 40% are
    grossly overloaded inside at least one component. The split is a
    target, not a promise — the analysis is the judge; the harness only
    requires that both verdicts occur and the contract holds.
    """
    rng = random.Random(seed)
    specs = []
    for i in range(count):
        overload = rng.random() < 0.4
        n_pes = rng.randint(1, 2)
        pes = []
        for p in range(n_pes):
            n_comps = rng.randint(1, 2)
            # total server utilization stays under ~0.85 so the
            # fixed-priority top level always delivers the budgets
            shares = [rng.uniform(0.25, 0.4) for _ in range(n_comps)]
            scale = min(1.0, 0.85 / sum(shares))
            comps = tuple(
                _random_component(rng, c, shares[c] * scale,
                                  overload and p == 0 and c == 0)
                for c in range(n_comps)
            )
            pes.append(PESpec(
                name=f"pe{p}",
                top="priority",
                speed=rng.choice((1.0, 1.0, 2.0)),
                components=comps,
            ))
        specs.append(SystemSpec(name=f"gen{i}", pes=tuple(pes)))
    return specs


def run_matrix(count=20, seed=7, horizon=None):
    """Cross-validate a generated matrix; returns the summary dict."""
    reports = [
        cross_validate(spec, horizon=horizon)
        for spec in generate_matrix(count, seed)
    ]
    schedulable = [r for r in reports if r["analysis_schedulable"]]
    unschedulable = [r for r in reports if not r["analysis_schedulable"]]
    witnesses = [r for r in unschedulable if r["missed_tasks"]]
    return {
        "count": len(reports),
        "seed": seed,
        "schedulable": len(schedulable),
        "unschedulable": len(unschedulable),
        "unschedulable_with_misses": len(witnesses),
        "violations": [v for r in reports for v in r["violations"]],
        "consistent": all(r["consistent"] for r in reports),
        "reports": reports,
    }


# ---------------------------------------------------------------------------
# mixed criticality: AMC certificate vs MC-armed simulation
# ---------------------------------------------------------------------------
#
# The MC contract extends the hierarchical one:
#
#     If :func:`check_amc_rtb` certifies a HI task, then simulating the
#     task set with the MC controller armed (flat fixed-priority,
#     immediate preemption, sticky mode raise — recovery disabled to
#     match the single-switch AMC model) and every HI task *always*
#     executing its HI budget (the injected overrun) must show zero
#     deadline misses for that task.
#
# The no-MC baseline run of the same set is the witness: with LO tasks
# never degraded the same overrunning workload demonstrably drives HI
# tasks into misses, proving the degradation — not slack — shields them.


def simulate_mc(tasks, degrade="drop", with_mc=True, horizon=None):
    """Simulate one MC task set; HI tasks always execute ``wcet_hi``.

    With ``with_mc`` the model's :class:`~repro.rtos.mc.MCController`
    is armed (no recovery window: the raise is sticky, matching the
    AMC analysis); without it the same workload runs undefended, every
    task merely watched for eager miss detection. Returns per-task
    ``{"misses", "releases", "cycles"}`` plus MC counters under
    ``"__mc__"``.
    """
    from repro.kernel import Simulator, WaitFor
    from repro.rtos import RTOSModel

    if horizon is None:
        periods = [spec.period for spec in tasks]
        horizon = max(min(2 * math.lcm(*periods), 200_000),
                      10 * max(periods))
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched="priority", preemption="immediate")
    if with_mc:
        os_.mc_configure(degrade=degrade)
    handles = []
    for spec in tasks:
        rel_deadline = (
            spec.deadline if spec.deadline != spec.period else None
        )
        if with_mc:
            task = os_.task_create(
                spec.name, PERIODIC, spec.period,
                [spec.wcet_lo, spec.wcet_hi], priority=spec.priority,
                rel_deadline=rel_deadline, criticality=spec.criticality,
            )
        else:
            task = os_.task_create(
                spec.name, PERIODIC, spec.period, spec.wcet_lo,
                priority=spec.priority, rel_deadline=rel_deadline,
            )
            os_.task_watch(task, policy="log")
        handles.append(task)
        exec_time = spec.wcet_hi if spec.is_hi else spec.wcet_lo
        sim.spawn(
            os_.task_body(task, _periodic_body(os_, exec_time)),
            name=spec.name,
        )

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run(until=horizon)
    results = {
        task.name: {
            "misses": task.stats.deadline_misses,
            "releases": task.stats.activations + task.stats.cycles_completed,
            "cycles": task.stats.cycles_completed,
        }
        for task in handles
    }
    results["__mc__"] = {
        "mode": os_.mc_mode(),
        "mode_raises": os_.metrics.mode_raises,
        "jobs_degraded": os_.metrics.jobs_degraded,
        "budget_overruns": os_.metrics.budget_overruns,
    }
    return results


def cross_validate_mc(tasks, degrade="drop", horizon=None):
    """AMC-rtb certificate vs MC-armed simulation, plus the baseline.

    Returns a dict with both analytic verdicts (AMC-rtb drives the
    contract; EDF-VD rides along as a second certificate), the
    MC-armed and no-MC simulated miss counts, the violation list, and:

    * ``"consistent"`` — no certified HI task missed with MC armed;
    * ``"shielded"`` — at least one certified HI task missed in the
      *baseline* but not with MC armed: degradation, not slack, is
      what saved it (the CI witness).
    """
    tasks = list(tasks)
    # drop matches classical AMC (LO tasks stop after the switch);
    # skip / elastic leave LO tasks releasing at twice their period
    # (the controller's default skip_factor / elastic_factor), which
    # the policy-aware rtb bound must account for
    amc = check_amc_rtb(
        tasks, lo_period_scale=None if degrade == "drop" else 2
    )
    edf_vd = check_edf_vd(tasks)
    mc_run = simulate_mc(tasks, degrade=degrade, horizon=horizon)
    baseline = simulate_mc(tasks, degrade=degrade, with_mc=False,
                           horizon=horizon)
    certified_hi = sorted(
        tv.task for tv in amc.hi_tasks if tv.schedulable
    )
    violations = []
    for name in certified_hi:
        misses = mc_run[name]["misses"]
        if misses:
            violations.append(
                f"HI task {name!r} certified by AMC-rtb but missed "
                f"{misses} deadlines with MC armed"
            )
    hi_names = [spec.name for spec in tasks if spec.is_hi]
    baseline_hi_misses = {
        name: baseline[name]["misses"] for name in hi_names
    }
    shielded = sorted(
        name for name in certified_hi
        if baseline_hi_misses[name] and not mc_run[name]["misses"]
    )
    return {
        "tasks": [spec.name for spec in tasks],
        "degrade": degrade,
        "amc_schedulable": amc.schedulable,
        "edf_vd_schedulable": edf_vd.schedulable,
        "certified_hi": certified_hi,
        "mc_misses": {
            name: row["misses"] for name, row in mc_run.items()
            if name != "__mc__"
        },
        "baseline_hi_misses": baseline_hi_misses,
        "mc_state": mc_run["__mc__"],
        "shielded": shielded,
        "violations": violations,
        "consistent": not violations,
    }


def generate_mc_matrix(count=12, seed=7):
    """Deterministically generate ``count`` dual-criticality task sets.

    Each set interleaves LO and HI tasks in priority order (LO tasks
    above *and* below HI ones — the regime AMC is about) with a
    baseline utilization ``U_LO^LO + U_HI^HI`` above 1, so undefended
    overruns demonstrably overload the set. Roughly a third get a HI
    budget so large that even the steady HI mode overloads — the
    analysis is the judge; the harness only needs both verdicts and
    the contract to hold.
    """
    rng = random.Random(seed)
    sets = []
    for i in range(count):
        overload = i % 3 == 2
        scale = rng.choice((1, 2, 5))
        jitter = rng.uniform(0.9, 1.1)
        hi2_budget = 1500 if overload else 700
        sets.append((
            MCTaskSpec(f"s{i}_lo1", 400 * scale,
                       int(100 * scale * jitter), criticality="LO",
                       priority=1),
            MCTaskSpec(f"s{i}_hi1", 800 * scale, int(80 * scale * jitter),
                       int(240 * scale * jitter), criticality="HI",
                       priority=2),
            MCTaskSpec(f"s{i}_lo2", 1000 * scale,
                       int(150 * scale * jitter), criticality="LO",
                       priority=3),
            MCTaskSpec(f"s{i}_hi2", 2000 * scale,
                       int(200 * scale * jitter),
                       int(hi2_budget * scale * jitter), criticality="HI",
                       priority=4),
        ))
    return sets


def run_mc_matrix(count=12, seed=7, degrade="drop", horizon=None):
    """Cross-validate a generated MC matrix; returns the summary dict."""
    reports = [
        cross_validate_mc(tasks, degrade=degrade, horizon=horizon)
        for tasks in generate_mc_matrix(count, seed)
    ]
    certified = [r for r in reports if r["certified_hi"]]
    shielded = [r for r in reports if r["shielded"]]
    uncertified = [r for r in reports if not r["amc_schedulable"]]
    uncertified_with_misses = [
        r for r in uncertified if any(r["baseline_hi_misses"].values())
    ]
    return {
        "count": len(reports),
        "seed": seed,
        "degrade": degrade,
        "certified": len(certified),
        "uncertified": len(uncertified),
        "uncertified_with_misses": len(uncertified_with_misses),
        "shielded": len(shielded),
        "violations": [v for r in reports for v in r["violations"]],
        "consistent": all(r["consistent"] for r in reports),
        "reports": reports,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.crossval",
        description="Cross-validate the RTOS simulator against the "
                    "analytic schedulability checker.",
    )
    parser.add_argument("--count", type=int, default=None,
                        help="number of generated configurations "
                             "(default: 20, or 12 with --mc)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--horizon", type=int, default=None,
                        help="simulation horizon override (time units)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON")
    parser.add_argument("--require-witness", action="store_true",
                        help="also fail unless at least one analytically-"
                             "unschedulable config misses in simulation")
    parser.add_argument("--mc", action="store_true",
                        help="run the mixed-criticality matrix instead: "
                             "AMC-rtb certificates vs MC-armed simulation "
                             "under always-overrunning HI tasks")
    parser.add_argument("--degrade", default="drop",
                        choices=("drop", "skip", "elastic"),
                        help="LO degradation policy for the MC matrix")
    args = parser.parse_args(argv)

    if args.mc:
        return _main_mc(args)
    count = args.count if args.count is not None else 20
    summary = run_matrix(count, args.seed, args.horizon)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
    print(
        f"{summary['count']} configs: {summary['schedulable']} schedulable, "
        f"{summary['unschedulable']} unschedulable "
        f"({summary['unschedulable_with_misses']} with simulated misses)"
    )
    status = 0
    for violation in summary["violations"]:
        print(f"VIOLATION: {violation}")
        status = 1
    if not summary["violations"]:
        print("contract holds: no guaranteed task missed in simulation")
    if args.require_witness and not summary["unschedulable_with_misses"]:
        print("no unschedulable configuration produced a simulated miss")
        status = 1
    return status


def _main_mc(args):
    count = args.count if args.count is not None else 12
    summary = run_mc_matrix(count, args.seed, args.degrade, args.horizon)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
    print(
        f"{summary['count']} MC sets ({summary['degrade']}): "
        f"{summary['certified']} with certified HI tasks, "
        f"{summary['uncertified']} uncertified "
        f"({summary['uncertified_with_misses']} with baseline HI misses), "
        f"{summary['shielded']} shielded by degradation"
    )
    status = 0
    for violation in summary["violations"]:
        print(f"VIOLATION: {violation}")
        status = 1
    if not summary["violations"]:
        print("MC contract holds: no certified HI task missed with MC armed")
    if args.require_witness:
        if not summary["shielded"]:
            print("no certified set demonstrated degradation shielding "
                  "(baseline HI miss vs MC-armed clean)")
            status = 1
        if not summary["uncertified_with_misses"]:
            print("no uncertified set produced a baseline HI miss")
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
