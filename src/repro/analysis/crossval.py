"""Cross-validation: simulator vs analytic schedulability.

The contract this module enforces — the repo's second ground truth
besides the ISS comparison of the paper:

    If :func:`repro.analysis.schedulability.check_system` certifies a
    task schedulable, then simulating the same system spec (hierarchical
    scheduler, immediate preemption, deadline watchdogs armed) must show
    **zero** deadline misses for that task.

The reverse direction is not a theorem (the analysis is conservative:
worst-case release alignment may not occur in one finite simulation),
but the generated matrix includes grossly overloaded configurations that
demonstrably miss, so both verdicts stay exercised.

Usage::

    PYTHONPATH=src python -m repro.analysis.crossval --count 20 --seed 7

exits non-zero on any contract violation.
"""

import argparse
import json
import math
import random

from repro.analysis.schedulability import (
    ComponentSpec,
    PESpec,
    SystemSpec,
    TaskSpec,
    check_system,
)
from repro.platform.architecture import Architecture
from repro.rtos.sched.hier import Component
from repro.rtos.task import PERIODIC

__all__ = [
    "build_architecture",
    "cross_validate",
    "generate_matrix",
    "simulate",
]


# ---------------------------------------------------------------------------
# spec -> runtime system
# ---------------------------------------------------------------------------


def _periodic_body(os_model, wcet):
    """Standard periodic task body: execute, end the cycle, repeat."""

    def body():
        while True:
            yield from os_model.time_wait(wcet)
            yield from os_model.task_endcycle()

    return body()


def build_architecture(spec, preemption="immediate"):
    """Instantiate the runtime system a :class:`SystemSpec` describes.

    Immediate preemption by default: budget enforcement is then exact
    (no step-granularity overrun), matching the analysis' supply model.
    Every task is watched with a ``"log"`` deadline watchdog
    (:mod:`repro.faults`), so misses are detected eagerly at the missed
    deadline — not lazily at the task's next ``endcycle``.
    """
    arch = Architecture(name=spec.name)
    arch.sim.trace.enabled = False
    for pe_spec in spec.pes:
        components = [
            Component(c.name, c.budget, c.period, policy=c.policy,
                      priority=c.priority)
            for c in pe_spec.components
        ]
        pe = arch.add_pe(pe_spec.name, sched=pe_spec.top,
                         preemption=preemption, speed=pe_spec.speed,
                         components=components)
        for comp_spec in pe_spec.components:
            for task_spec in comp_spec.tasks:
                task = pe.add_task(
                    task_spec.name,
                    _periodic_body(pe.os, pe.scaled_wcet(task_spec.wcet)),
                    tasktype=PERIODIC,
                    period=task_spec.period,
                    wcet=task_spec.wcet,
                    priority=task_spec.priority,
                    rel_deadline=(
                        task_spec.deadline
                        if task_spec.deadline != task_spec.period else None
                    ),
                    component=comp_spec.name,
                )
                pe.os.task_watch(task, policy="log")
    return arch


def _horizon_for(spec, cap=2_000_000):
    """Simulation length: two hyperperiods (all task and server periods),
    at least ten of the largest period, capped to keep runs fast."""
    periods = [1]
    for pe in spec.pes:
        for comp in pe.components:
            if comp.bounded:
                periods.append(comp.period)
            periods.extend(task.period for task in comp.tasks)
    horizon = min(2 * math.lcm(*periods), cap)
    return max(horizon, 10 * max(periods))


def simulate(spec, horizon=None, preemption="immediate"):
    """Run ``spec`` and return per-task simulation results.

    Returns a dict ``task name -> {"misses", "releases", "cycles",
    "worst_response", "component", "pe"}`` plus per-component budget
    stats under the ``"__components__"`` key.
    """
    if horizon is None:
        horizon = _horizon_for(spec)
    arch = build_architecture(spec, preemption=preemption)
    arch.run(until=horizon)
    results = {}
    comp_stats = {}
    for pe_spec in spec.pes:
        pe = arch.pes[pe_spec.name]
        by_name = {task.name: task for task in pe.tasks}
        for comp_spec in pe_spec.components:
            comp = pe.component(comp_spec.name)
            comp_stats[f"{pe_spec.name}.{comp_spec.name}"] = {
                "throttles": comp.stats.throttles,
                "max_window_consumption": comp.stats.max_window_consumption,
                "budget": comp.budget,
            }
            for task_spec in comp_spec.tasks:
                task = by_name[task_spec.name]
                results[task_spec.name] = {
                    "misses": task.stats.deadline_misses,
                    "releases": task.stats.activations + task.stats.cycles_completed,
                    "cycles": task.stats.cycles_completed,
                    "worst_response": task.stats.worst_response,
                    "component": comp_spec.name,
                    "pe": pe_spec.name,
                }
    results["__components__"] = comp_stats
    return results


# ---------------------------------------------------------------------------
# the contract
# ---------------------------------------------------------------------------


def cross_validate(spec, horizon=None):
    """Run ``spec`` through analysis *and* simulation; compare.

    Returns a dict with the analytic verdict, the simulated miss counts,
    and ``"consistent"`` — False iff a task the analysis guarantees
    missed a deadline in simulation (the contract violation).
    """
    verdict = check_system(spec)
    sim_results = simulate(spec, horizon=horizon)
    guaranteed = set(verdict.guaranteed_tasks)
    violations = []
    missed_tasks = []
    for name, row in sim_results.items():
        if name == "__components__":
            continue
        if row["misses"] > 0:
            missed_tasks.append(name)
            if name in guaranteed:
                violations.append(
                    f"task {name!r} certified schedulable but missed "
                    f"{row['misses']} deadlines in simulation"
                )
    return {
        "system": spec.name,
        "analysis_schedulable": verdict.schedulable,
        "guaranteed_tasks": sorted(guaranteed),
        "simulated_misses": {
            name: row["misses"]
            for name, row in sim_results.items()
            if name != "__components__"
        },
        "missed_tasks": sorted(missed_tasks),
        "component_stats": sim_results["__components__"],
        "violations": violations,
        "consistent": not violations,
    }


# ---------------------------------------------------------------------------
# generated configuration matrix
# ---------------------------------------------------------------------------

#: harmonic period menu keeps hyperperiods (and therefore both the
#: analysis point sets and the simulation horizon) small
_PERIODS = (1000, 2000, 4000, 8000)


def _random_component(rng, index, server_util, overload):
    # server periods an order of magnitude below the task periods keep
    # the supply blackout 2(Π−Θ) far under every deadline — the regime
    # hierarchical systems are designed in
    period = rng.choice((100, 200, 250))
    budget = max(1, int(period * server_util))
    if overload:
        # demand clearly above the full server supply: these must miss
        target_util = server_util * rng.uniform(1.5, 2.0)
    else:
        # demand well under the BDR availability factor, so the
        # conservative analysis certifies it
        target_util = server_util * rng.uniform(0.35, 0.6)
    policy = rng.choice(("edf", "priority"))
    tasks = []
    remaining = target_util
    n_tasks = rng.randint(1, 3)
    for t in range(n_tasks):
        share = remaining / (n_tasks - t)
        task_period = rng.choice(_PERIODS)
        wcet = max(1, int(task_period * share))
        tasks.append(TaskSpec(
            name=f"c{index}t{t}",
            period=task_period,
            wcet=wcet,
            priority=t if policy == "priority" else None,
        ))
        remaining -= share
    return ComponentSpec(
        name=f"comp{index}",
        budget=budget,
        period=period,
        policy=policy,
        priority=index,
        tasks=tuple(tasks),
    )


def generate_matrix(count=20, seed=7):
    """Deterministically generate ``count`` system configurations.

    Roughly 60% aim to be schedulable (low demand vs supply), 40% are
    grossly overloaded inside at least one component. The split is a
    target, not a promise — the analysis is the judge; the harness only
    requires that both verdicts occur and the contract holds.
    """
    rng = random.Random(seed)
    specs = []
    for i in range(count):
        overload = rng.random() < 0.4
        n_pes = rng.randint(1, 2)
        pes = []
        for p in range(n_pes):
            n_comps = rng.randint(1, 2)
            # total server utilization stays under ~0.85 so the
            # fixed-priority top level always delivers the budgets
            shares = [rng.uniform(0.25, 0.4) for _ in range(n_comps)]
            scale = min(1.0, 0.85 / sum(shares))
            comps = tuple(
                _random_component(rng, c, shares[c] * scale,
                                  overload and p == 0 and c == 0)
                for c in range(n_comps)
            )
            pes.append(PESpec(
                name=f"pe{p}",
                top="priority",
                speed=rng.choice((1.0, 1.0, 2.0)),
                components=comps,
            ))
        specs.append(SystemSpec(name=f"gen{i}", pes=tuple(pes)))
    return specs


def run_matrix(count=20, seed=7, horizon=None):
    """Cross-validate a generated matrix; returns the summary dict."""
    reports = [
        cross_validate(spec, horizon=horizon)
        for spec in generate_matrix(count, seed)
    ]
    schedulable = [r for r in reports if r["analysis_schedulable"]]
    unschedulable = [r for r in reports if not r["analysis_schedulable"]]
    witnesses = [r for r in unschedulable if r["missed_tasks"]]
    return {
        "count": len(reports),
        "seed": seed,
        "schedulable": len(schedulable),
        "unschedulable": len(unschedulable),
        "unschedulable_with_misses": len(witnesses),
        "violations": [v for r in reports for v in r["violations"]],
        "consistent": all(r["consistent"] for r in reports),
        "reports": reports,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.crossval",
        description="Cross-validate the RTOS simulator against the "
                    "analytic schedulability checker.",
    )
    parser.add_argument("--count", type=int, default=20,
                        help="number of generated configurations")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--horizon", type=int, default=None,
                        help="simulation horizon override (time units)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON")
    parser.add_argument("--require-witness", action="store_true",
                        help="also fail unless at least one analytically-"
                             "unschedulable config misses in simulation")
    args = parser.parse_args(argv)

    summary = run_matrix(args.count, args.seed, args.horizon)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
    print(
        f"{summary['count']} configs: {summary['schedulable']} schedulable, "
        f"{summary['unschedulable']} unschedulable "
        f"({summary['unschedulable_with_misses']} with simulated misses)"
    )
    status = 0
    for violation in summary["violations"]:
        print(f"VIOLATION: {violation}")
        status = 1
    if not summary["violations"]:
        print("contract holds: no guaranteed task missed in simulation")
    if args.require_witness and not summary["unschedulable_with_misses"]:
        print("no unschedulable configuration produced a simulated miss")
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
