"""Schedule reports: per-task tables from an RTOS model run.

Turns one :class:`~repro.rtos.model.RTOSModel` (plus its simulator) into
the textual summary a designer wants after a design-space-exploration
run: per-task execution/response statistics and the global scheduler
counters.
"""


def task_table(os_model):
    """Per-task statistics as a list of dict rows."""
    rows = []
    for task in os_model.tasks:
        stats = task.stats
        rows.append(
            {
                "task": task.name,
                "type": "periodic" if task.is_periodic else "aperiodic",
                "priority": task.priority,
                "state": task.state.value,
                "activations": stats.activations,
                "cycles": stats.cycles_completed,
                "exec_time": stats.exec_time,
                "dispatches": stats.dispatches,
                "preemptions": stats.preemptions,
                "misses": stats.deadline_misses,
                "worst_response": stats.worst_response,
                "avg_response": stats.avg_response,
            }
        )
    return rows


def schedule_report(os_model, sim, title="schedule report"):
    """A printable report for one PE's RTOS model."""
    total = sim.now
    metrics = os_model.metrics
    lines = [
        title,
        "=" * len(title),
        f"simulated time      : {total}",
        f"scheduler           : {type(os_model.scheduler).__name__}",
        f"preemption mode     : {os_model.preemption}",
        f"CPU utilization     : {metrics.utilization(total):.1%}"
        f" (busy {metrics.busy_time}, idle {metrics.idle_time(total)})",
        f"context switches    : {metrics.context_switches}"
        + (f" (overhead {metrics.overhead_time})" if metrics.overhead_time else ""),
        f"preemptions         : {metrics.preemptions}",
        f"interrupts serviced : {metrics.interrupts}",
        f"deadline misses     : {metrics.deadline_misses}",
        "",
        f"{'task':<14}{'prio':>5}{'state':>12}{'act':>5}{'exec':>10}"
        f"{'disp':>6}{'preempt':>8}{'worst resp':>12}",
    ]
    for row in task_table(os_model):
        worst = row["worst_response"]
        lines.append(
            f"{row['task']:<14}{row['priority']:>5}{row['state']:>12}"
            f"{row['activations']:>5}{row['exec_time']:>10}"
            f"{row['dispatches']:>6}{row['preemptions']:>8}"
            f"{worst if worst is not None else '-':>12}"
        )
    return "\n".join(lines)
