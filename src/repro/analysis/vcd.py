"""Value-change-dump (VCD) export of execution traces.

Emits the task/behavior occupancy of a trace as IEEE-1364 VCD so
schedules can be inspected in any waveform viewer (GTKWave etc.) —
the natural interchange format for this EDA-flavored simulator.

Each actor becomes a one-bit wire that is high while the actor executes;
an optional string variable carries scheduler events.

Edge ordering: a wire is high while its actor has at least one *open*
segment (segment starts count +1, ends count -1), and within one
timestamp falling edges are emitted before rising edges. Zero-width
segments and back-to-back segments therefore net out — neither can
leave a wire stuck high (or glitching low) in the dump.
"""

from collections import defaultdict

_IDENT_CHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _identifier(index):
    """Short VCD identifier codes: !, ", #, ... then two-char codes."""
    base = len(_IDENT_CHARS)
    if index < base:
        return _IDENT_CHARS[index]
    return _IDENT_CHARS[index // base - 1] + _IDENT_CHARS[index % base]


def to_vcd(trace, actors=None, timescale="1 ns", module="system"):
    """Render the trace as a VCD document (returned as a string)."""
    segments = trace.segments()
    if actors is None:
        actors = []
        for actor, *_ in segments:
            if actor not in actors:
                actors.append(actor)
    idents = {actor: _identifier(i) for i, actor in enumerate(actors)}

    # signed edge deltas per (time, wire): +1 opens a segment, -1
    # closes one; the wire level is "open-segment depth > 0"
    deltas = defaultdict(lambda: defaultdict(int))
    for actor, start, end, _ in segments:
        ident = idents.get(actor)
        if ident is None:
            continue
        deltas[start][ident] += 1
        deltas[end][ident] -= 1

    lines = [
        "$date reproduced RTOS-model trace $end",
        "$version repro (RTOS Modeling for System Level Design) $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for actor in actors:
        safe = actor.replace(" ", "_")
        lines.append(f"$var wire 1 {idents[actor]} {safe} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    lines.append("$dumpvars")
    for actor in actors:
        lines.append(f"0{idents[actor]}")
    lines.append("$end")

    depth = {ident: 0 for ident in idents.values()}
    state = {ident: 0 for ident in idents.values()}
    for time in sorted(deltas):
        falling, rising = [], []
        for ident, delta in deltas[time].items():
            if not delta:
                continue
            depth[ident] += delta
            value = 1 if depth[ident] > 0 else 0
            if value == state[ident]:
                continue
            state[ident] = value
            (rising if value else falling).append(ident)
        if falling or rising:
            lines.append(f"#{time}")
            # falling edges strictly before rising edges at one
            # timestamp: a viewer replaying the dump in order never
            # sees a wire spuriously held high
            for ident in falling:
                lines.append(f"0{ident}")
            for ident in rising:
                lines.append(f"1{ident}")
    return "\n".join(lines) + "\n"


def write_vcd(trace, path, **kwargs):
    """Write the VCD rendering of ``trace`` to ``path``."""
    document = to_vcd(trace, **kwargs)
    with open(path, "w") as handle:
        handle.write(document)
    return path
