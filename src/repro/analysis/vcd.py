"""Value-change-dump (VCD) export of execution traces.

Emits the task/behavior occupancy of a trace as IEEE-1364 VCD so
schedules can be inspected in any waveform viewer (GTKWave etc.) —
the natural interchange format for this EDA-flavored simulator.

Each actor becomes a one-bit wire that is high while the actor executes;
an optional string variable carries scheduler events.
"""

from repro.analysis.trace_analysis import exec_segments

_IDENT_CHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _identifier(index):
    """Short VCD identifier codes: !, ", #, ... then two-char codes."""
    base = len(_IDENT_CHARS)
    if index < base:
        return _IDENT_CHARS[index]
    return _IDENT_CHARS[index // base - 1] + _IDENT_CHARS[index % base]


def to_vcd(trace, actors=None, timescale="1 ns", module="system"):
    """Render the trace as a VCD document (returned as a string)."""
    segments = exec_segments(trace)
    if actors is None:
        actors = []
        for actor, *_ in segments:
            if actor not in actors:
                actors.append(actor)
    idents = {actor: _identifier(i) for i, actor in enumerate(actors)}

    # change list: (time, ident, value)
    changes = []
    for actor in actors:
        for _, start, end, _ in exec_segments(trace, actor):
            changes.append((start, idents[actor], 1))
            changes.append((end, idents[actor], 0))
    changes.sort(key=lambda c: c[0])

    lines = [
        "$date reproduced RTOS-model trace $end",
        "$version repro (RTOS Modeling for System Level Design) $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for actor in actors:
        safe = actor.replace(" ", "_")
        lines.append(f"$var wire 1 {idents[actor]} {safe} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    lines.append("$dumpvars")
    for actor in actors:
        lines.append(f"0{idents[actor]}")
    lines.append("$end")

    current_time = None
    state = {ident: 0 for ident in idents.values()}
    for time, ident, value in changes:
        if state[ident] == value:
            continue
        if time != current_time:
            lines.append(f"#{time}")
            current_time = time
        lines.append(f"{value}{ident}")
        state[ident] = value
    return "\n".join(lines) + "\n"


def write_vcd(trace, path, **kwargs):
    """Write the VCD rendering of ``trace`` to ``path``."""
    document = to_vcd(trace, **kwargs)
    with open(path, "w") as handle:
        handle.write(document)
    return path
