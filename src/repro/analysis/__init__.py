"""Analysis: trace queries, Gantt rendering, validation, LoC metrics,
analytic schedulability + simulator cross-validation."""

from repro.analysis import (
    crossval,
    gantt,
    loc,
    report,
    schedulability,
    trace_analysis,
    validate,
    vcd,
)
from repro.analysis.crossval import cross_validate, generate_matrix, simulate
from repro.analysis.gantt import render as render_gantt
from repro.analysis.report import schedule_report, task_table
from repro.analysis.schedulability import (
    ComponentSpec,
    PESpec,
    SystemSpec,
    TaskSpec,
    bdr_interface,
    check_component,
    check_system,
    dbf,
    sbf_bdr,
    sbf_full,
    sbf_periodic,
)
from repro.analysis.vcd import to_vcd, write_vcd
from repro.analysis.trace_analysis import (
    completion_time,
    context_switch_times,
    exec_segments,
    exec_time_per_actor,
    first_start,
    mark_time,
    marks,
    overlap_exists,
    response_latencies,
)
from repro.analysis.validate import (
    exec_time_preserved,
    same_functional_marks,
    serialized,
)

__all__ = [
    "ComponentSpec",
    "PESpec",
    "SystemSpec",
    "TaskSpec",
    "bdr_interface",
    "check_component",
    "check_system",
    "completion_time",
    "context_switch_times",
    "cross_validate",
    "crossval",
    "dbf",
    "exec_segments",
    "exec_time_per_actor",
    "exec_time_preserved",
    "first_start",
    "gantt",
    "generate_matrix",
    "loc",
    "mark_time",
    "marks",
    "overlap_exists",
    "render_gantt",
    "response_latencies",
    "report",
    "same_functional_marks",
    "sbf_bdr",
    "sbf_full",
    "sbf_periodic",
    "schedulability",
    "schedule_report",
    "serialized",
    "simulate",
    "task_table",
    "to_vcd",
    "trace_analysis",
    "validate",
    "vcd",
    "write_vcd",
]
