"""Analysis: trace queries, Gantt rendering, validation, LoC metrics."""

from repro.analysis import gantt, loc, report, trace_analysis, validate, vcd
from repro.analysis.gantt import render as render_gantt
from repro.analysis.report import schedule_report, task_table
from repro.analysis.vcd import to_vcd, write_vcd
from repro.analysis.trace_analysis import (
    completion_time,
    context_switch_times,
    exec_segments,
    exec_time_per_actor,
    first_start,
    mark_time,
    marks,
    overlap_exists,
    response_latencies,
)
from repro.analysis.validate import (
    exec_time_preserved,
    same_functional_marks,
    serialized,
)

__all__ = [
    "completion_time",
    "context_switch_times",
    "exec_segments",
    "exec_time_per_actor",
    "exec_time_preserved",
    "first_start",
    "gantt",
    "loc",
    "mark_time",
    "marks",
    "overlap_exists",
    "render_gantt",
    "response_latencies",
    "report",
    "same_functional_marks",
    "schedule_report",
    "serialized",
    "task_table",
    "to_vcd",
    "trace_analysis",
    "validate",
    "vcd",
    "write_vcd",
]
