"""Lines-of-code accounting for the Table-1 model-size comparison.

Counts non-blank, non-comment source lines — of Python modules (the
executable specification/architecture models) and of generated assembly
listings (the implementation model).
"""

import inspect


def count_source_lines(text, comment_prefixes=("#", ";")):
    """Count non-blank lines that are not pure comments."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if any(stripped.startswith(p) for p in comment_prefixes):
            continue
        count += 1
    return count


def module_loc(module):
    """LoC of one imported Python module."""
    return count_source_lines(inspect.getsource(module))


def modules_loc(modules):
    """Total LoC over several imported modules (deduplicated)."""
    seen = set()
    total = 0
    for module in modules:
        if module.__name__ in seen:
            continue
        seen.add(module.__name__)
        total += module_loc(module)
    return total


def package_modules(package):
    """All already-imported modules of a package (by name prefix)."""
    import sys

    prefix = package.__name__ + "."
    mods = [package]
    for name, module in sys.modules.items():
        if module is None:
            continue
        if name.startswith(prefix):
            mods.append(module)
    return mods


def package_loc(package):
    """Total LoC of a package's imported modules."""
    return modules_loc(package_modules(package))
