"""Communication library: channels in specification and refined flavors.

Specification-model channels (SLDL events): :class:`Semaphore`,
:class:`Mutex`, :class:`Queue`, :class:`Handshake`, :class:`Mailbox`.

Architecture-model channels (RTOS calls): :class:`RTOSSemaphore`,
:class:`RTOSMutex`, :class:`RTOSQueue`, :class:`RTOSHandshake`,
:class:`RTOSMailbox` — what the paper's synchronization refinement
(Figure 7) produces.

All potentially blocking channel methods are generators invoked with
``yield from`` inside behaviors/tasks.
"""

from repro.channels.handshake import Handshake, HandshakeBase, RTOSHandshake
from repro.channels.mailbox import Mailbox, MailboxBase, RTOSMailbox
from repro.channels.mutex import Mutex, MutexBase, RTOSMutex
from repro.channels.queue import Queue, QueueBase, RTOSQueue
from repro.channels.semaphore import RTOSSemaphore, Semaphore, SemaphoreBase
from repro.channels.sync import RTOSSync, SpecSync

__all__ = [
    "Handshake",
    "HandshakeBase",
    "Mailbox",
    "MailboxBase",
    "Mutex",
    "MutexBase",
    "Queue",
    "QueueBase",
    "RTOSHandshake",
    "RTOSMailbox",
    "RTOSMutex",
    "RTOSQueue",
    "RTOSSemaphore",
    "RTOSSync",
    "Semaphore",
    "SemaphoreBase",
    "SpecSync",
]
