"""Unbounded mailbox channel.

Non-blocking ``post`` (usable from ISR context in the refined flavor,
where it degenerates to an event notify) plus blocking ``collect``.
"""

from collections import deque

from repro.kernel.channel import Channel
from repro.kernel.commands import TIMEOUT
from repro.channels.sync import RTOSSync, SpecSync, wait_until


class MailboxBase(Channel):
    """Unbounded message box over a pluggable synchronization backend."""

    def __init__(self, sync, name=None):
        super().__init__(name)
        self._sync = sync
        self.messages = deque()
        self.erdy = sync.new_event(f"{self.name}.erdy")

    def attach_metrics(self, registry):
        """Register occupancy gauge + posted/collected counters."""
        from repro.obs.instruments import QueueObs

        self._obs = QueueObs(registry, self.name)
        return self._obs

    def post(self, message):
        """Deposit a message; never blocks (generator for the notify)."""
        self.messages.append(message)
        obs = self._obs
        if obs is not None:
            obs.sent.inc()
            obs.occupancy.set(len(self.messages))
        yield from self._sync.signal(self.erdy)

    def collect(self, timeout=None):
        """Block until a message is available, then take it (generator).

        With ``timeout=`` an empty mailbox is waited on for at most that
        much simulated time; on expiry the call evaluates to the kernel's
        :data:`~repro.kernel.commands.TIMEOUT` sentinel.
        """
        faults = self._faults
        if faults is not None:
            yield from faults.channel_gate(self, "collect", self._sync)
        if timeout is None:
            while not self.messages:
                yield from self._sync.wait(self.erdy)
        else:
            ready = yield from wait_until(
                self._sync, self.erdy, lambda: bool(self.messages), timeout
            )
            if not ready:
                return TIMEOUT
        message = self.messages.popleft()
        obs = self._obs
        if obs is not None:
            obs.received.inc()
            obs.occupancy.set(len(self.messages))
        return message

    def try_collect(self):
        """Non-blocking collect; returns the message or None."""
        if self.messages:
            message = self.messages.popleft()
            obs = self._obs
            if obs is not None:
                obs.received.inc()
                obs.occupancy.set(len(self.messages))
            return message
        return None

    def __len__(self):
        return len(self.messages)


class Mailbox(MailboxBase):
    """Specification-model mailbox (SLDL events)."""

    def __init__(self, name=None):
        super().__init__(SpecSync(), name)


class RTOSMailbox(MailboxBase):
    """Architecture-model mailbox (RTOS events)."""

    def __init__(self, os_model, name=None):
        super().__init__(RTOSSync(os_model), name)
