"""Counting semaphores.

The paper's Figure 3 uses a semaphore channel ``sem`` through which the
interrupt handler (ISR) signals the main bus driver. The refined flavor
is safe to ``release`` from ISR context (``event_notify`` supports it).
"""

from repro.kernel.channel import Channel
from repro.channels.sync import RTOSSync, SpecSync, wait_until


class SemaphoreBase(Channel):
    """Counting semaphore over a pluggable synchronization backend."""

    def __init__(self, sync, init=0, name=None):
        super().__init__(name)
        if init < 0:
            raise ValueError(f"negative initial count: {init}")
        self._sync = sync
        self.count = init
        self.evt = sync.new_event(f"{self.name}.evt")
        #: diagnostics: blocked acquires observed
        self.contentions = 0

    def attach_metrics(self, registry):
        """Register token-level gauge + contention counter."""
        from repro.obs.instruments import SemaphoreObs

        self._obs = SemaphoreObs(registry, self.name)
        return self._obs

    def acquire(self, timeout=None):
        """Take one token, blocking while the count is zero (generator).

        Evaluates to True. With ``timeout=`` the wait expires after that
        much simulated time and evaluates to False (no token taken); the
        budget spans re-waits after lost wakeup races.
        """
        faults = self._faults
        if faults is not None:
            yield from faults.channel_gate(self, "acquire", self._sync)
        obs = self._obs
        if timeout is None:
            while self.count <= 0:
                self.contentions += 1
                if obs is not None:
                    obs.contended.inc()
                yield from self._sync.wait(self.evt)
        else:
            if self.count <= 0:
                self.contentions += 1
                if obs is not None:
                    obs.contended.inc()
            got = yield from wait_until(
                self._sync, self.evt, lambda: self.count > 0, timeout
            )
            if not got:
                return False
        self.count -= 1
        if obs is not None:
            obs.tokens.set(self.count)
        return True

    def release(self):
        """Return one token and wake blocked acquirers (generator)."""
        self.count += 1
        obs = self._obs
        if obs is not None:
            obs.tokens.set(self.count)
        yield from self._sync.signal(self.evt)

    def try_acquire(self):
        """Non-blocking acquire; returns True on success."""
        if self.count > 0:
            self.count -= 1
            obs = self._obs
            if obs is not None:
                obs.tokens.set(self.count)
            return True
        return False


class Semaphore(SemaphoreBase):
    """Specification-model semaphore (SLDL events)."""

    def __init__(self, init=0, name=None):
        super().__init__(SpecSync(), init, name)


class RTOSSemaphore(SemaphoreBase):
    """Architecture-model semaphore (RTOS event calls, Figure 7 style)."""

    def __init__(self, os_model, init=0, name=None):
        super().__init__(RTOSSync(os_model), init, name)
