"""Mutual-exclusion locks, with optional priority inheritance.

The refined flavor can apply the priority-inheritance protocol: while a
task holds the lock and a more urgent task blocks on it, the holder
inherits the blocker's priority. This works naturally with the RTOS
model's schedulers because they evaluate priorities at scheduling points
rather than caching queue positions. Priority inversion (and its fix) is
demonstrated in ``examples/scheduler_comparison.py`` and tested in
``tests/channels/test_mutex.py``.

Both flavors share one ``lock``/``unlock`` template in
:class:`MutexBase`; the RTOS flavor customizes it only through the
``_blocked_on`` / ``_take_ownership`` / ``_check_unlock`` /
``_restore_owner`` hooks. Unlocking from a non-owner raises
(``RuntimeError`` in the spec flavor, :class:`~repro.rtos.errors.RTOSError`
in the refined one) — a silently tolerated foreign unlock would break
the mutual exclusion the channel exists to provide.
"""

from repro.kernel.channel import Channel
from repro.channels.sync import RTOSSync, SpecSync
from repro.rtos.errors import RTOSError


class MutexBase(Channel):
    """Lock over a pluggable synchronization backend."""

    def __init__(self, sync, name=None):
        super().__init__(name)
        self._sync = sync
        self.owner = None
        self.evt = sync.new_event(f"{self.name}.evt")

    def lock(self, who=None):
        """Acquire the lock (generator). ``who`` labels the owner."""
        while self.owner is not None:
            yield from self._blocked_on(self.owner, who)
            yield from self._sync.wait(self.evt)
        self.owner = self._take_ownership(who)

    def unlock(self, who=None):
        """Release the lock and wake waiters (generator).

        Raises when the mutex is not locked or when the caller
        (identified by ``who``, or by the calling task in the refined
        flavor) is not the owner.
        """
        if self.owner is None:
            raise RuntimeError(f"unlock of unlocked mutex {self.name!r}")
        self._check_unlock(who)
        self._restore_owner()
        self.owner = None
        yield from self._sync.signal(self.evt)

    def locked(self):
        return self.owner is not None

    # template hooks (priority inheritance, ownership checks) ----------

    def _blocked_on(self, owner, who):
        return iter(())  # no-op generator

    def _take_ownership(self, who):
        return who if who is not None else True

    def _check_unlock(self, who):
        if who is not None and self.owner is not True and who != self.owner:
            raise RuntimeError(
                f"unlock of mutex {self.name!r} owned by {self.owner!r} "
                f"from non-owner {who!r}"
            )

    def _restore_owner(self):
        pass


class Mutex(MutexBase):
    """Specification-model mutex (SLDL events)."""

    def __init__(self, name=None):
        super().__init__(SpecSync(), name)


class RTOSMutex(MutexBase):
    """Architecture-model mutex (RTOS events).

    With ``priority_inheritance=True`` the owning task inherits the
    priority of the most urgent task blocked on the lock, bounding
    priority inversion. The inherited priority survives partial
    releases correctly: a task's pre-inheritance priority is recorded
    once (``Task.base_priority``), and every unlock recomputes the
    effective priority over the waiters of the PI locks the task still
    holds — so releasing locks out of acquisition order, or after a
    second waiter raised the boost, restores exactly the right level.
    """

    def __init__(self, os_model, name=None, priority_inheritance=False):
        super().__init__(RTOSSync(os_model), name)
        self.os = os_model
        self.priority_inheritance = priority_inheritance
        self._owner_task = None
        #: tasks currently blocked in ``lock`` (inheritance recompute)
        self._waiters = []

    def _blocked_on(self, owner, who):
        task = self.os.self_task()
        if task is not None and task not in self._waiters:
            self._waiters.append(task)
        if self.priority_inheritance and self._owner_task is not None:
            owner_task = self._owner_task
            if task is not None and task.priority < owner_task.priority:
                if owner_task.base_priority is None:
                    owner_task.base_priority = owner_task.priority
                owner_task.priority = task.priority
        return iter(())

    def _take_ownership(self, who):
        task = self.os.self_task()
        self._owner_task = task
        if task is not None:
            try:
                self._waiters.remove(task)
            except ValueError:
                pass
            if self.priority_inheritance:
                task.pi_locks.append(self)
        if who is not None:
            return who
        return task.name if task else True

    def _check_unlock(self, who):
        task = self.os.self_task()
        if (
            task is not None
            and self._owner_task is not None
            and task is not self._owner_task
        ):
            raise RTOSError(
                f"unlock of mutex {self.name!r} owned by task "
                f"{self._owner_task.name!r} from non-owner {task.name!r}"
            )
        super()._check_unlock(who)

    def _restore_owner(self):
        task = self._owner_task
        self._owner_task = None
        if task is None or not self.priority_inheritance:
            return
        try:
            task.pi_locks.remove(self)
        except ValueError:
            pass
        if task.base_priority is None:
            return
        # recompute from the true base and the waiters of the PI locks
        # still held — an unlock must keep boosts owed to *other* locks
        priority = task.base_priority
        for mutex in task.pi_locks:
            for waiter in mutex._waiters:
                if not waiter.killed and waiter.priority < priority:
                    priority = waiter.priority
        task.priority = priority
        if not task.pi_locks:
            task.base_priority = None
