"""Mutual-exclusion locks, with optional priority inheritance.

The refined flavor can apply the priority-inheritance protocol: while a
task holds the lock and a more urgent task blocks on it, the holder
inherits the blocker's priority. This works naturally with the RTOS
model's schedulers because they evaluate priorities at scheduling points
rather than caching queue positions. Priority inversion (and its fix) is
demonstrated in ``examples/scheduler_comparison.py`` and tested in
``tests/channels/test_mutex.py``.
"""

from repro.kernel.channel import Channel
from repro.channels.sync import RTOSSync, SpecSync


class MutexBase(Channel):
    """Lock over a pluggable synchronization backend."""

    def __init__(self, sync, name=None):
        super().__init__(name)
        self._sync = sync
        self.owner = None
        self.evt = sync.new_event(f"{self.name}.evt")

    def lock(self, who=None):
        """Acquire the lock (generator). ``who`` labels the owner."""
        while self.owner is not None:
            yield from self._blocked_on(self.owner, who)
            yield from self._sync.wait(self.evt)
        self.owner = who if who is not None else True

    def unlock(self, who=None):
        """Release the lock and wake waiters (generator)."""
        if self.owner is None:
            raise RuntimeError(f"unlock of unlocked mutex {self.name!r}")
        self._restore_owner()
        self.owner = None
        yield from self._sync.signal(self.evt)

    def locked(self):
        return self.owner is not None

    # hooks for priority inheritance -----------------------------------

    def _blocked_on(self, owner, who):
        return iter(())  # no-op generator

    def _restore_owner(self):
        pass


class Mutex(MutexBase):
    """Specification-model mutex (SLDL events)."""

    def __init__(self, name=None):
        super().__init__(SpecSync(), name)


class RTOSMutex(MutexBase):
    """Architecture-model mutex (RTOS events).

    With ``priority_inheritance=True`` the owning task inherits the
    priority of the most urgent task blocked on the lock, bounding
    priority inversion.
    """

    def __init__(self, os_model, name=None, priority_inheritance=False):
        super().__init__(RTOSSync(os_model), name)
        self.os = os_model
        self.priority_inheritance = priority_inheritance
        self._owner_task = None
        self._base_priority = None

    def lock(self, who=None):
        task = self.os.self_task()
        while self.owner is not None:
            if self.priority_inheritance and self._owner_task is not None:
                if task is not None and task.priority < self._owner_task.priority:
                    self._owner_task.priority = task.priority
            yield from self._sync.wait(self.evt)
        self.owner = who if who is not None else (task.name if task else True)
        self._owner_task = task
        if task is not None:
            self._base_priority = task.priority

    def _restore_owner(self):
        if self._owner_task is not None and self._base_priority is not None:
            self._owner_task.priority = self._base_priority
        self._owner_task = None
        self._base_priority = None
