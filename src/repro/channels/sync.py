"""Synchronization backends shared by all channel implementations.

Every channel in this library exists in two flavors, mirroring the
paper's design flow:

* the **specification** flavor synchronizes through SLDL events
  (``wait``/``notify`` kernel commands) and is used in the unscheduled
  model (Figure 2(a));
* the **refined** flavor synchronizes through RTOS-model calls
  (``event_wait``/``event_notify``) and is what synchronization
  refinement produces for the architecture model (Figures 2(b), 7).

The channel logic (buffering, counting, rendezvous) is identical in both
flavors, so it is written once against the two tiny backends below. Each
backend exposes generator methods ``wait(evt)`` and ``signal(evt)`` plus
an event factory, and the channel code delegates with ``yield from``.
"""

from repro.kernel.commands import Notify, Wait
from repro.kernel.events import Event


class SpecSync:
    """SLDL-event backend (specification model)."""

    flavor = "spec"

    def new_event(self, name):
        return Event(name)

    def wait(self, evt):
        yield Wait(evt)

    def signal(self, evt):
        yield Notify(evt)


class RTOSSync:
    """RTOS-model backend (architecture model)."""

    flavor = "rtos"

    def __init__(self, os_model):
        self.os = os_model

    def new_event(self, name):
        return self.os.event_new(name)

    def wait(self, evt):
        yield from self.os.event_wait(evt)

    def signal(self, evt):
        yield from self.os.event_notify(evt)
