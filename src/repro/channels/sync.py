"""Synchronization backends shared by all channel implementations.

Every channel in this library exists in two flavors, mirroring the
paper's design flow:

* the **specification** flavor synchronizes through SLDL events
  (``wait``/``notify`` kernel commands) and is used in the unscheduled
  model (Figure 2(a));
* the **refined** flavor synchronizes through RTOS-model calls
  (``event_wait``/``event_notify``) and is what synchronization
  refinement produces for the architecture model (Figures 2(b), 7).

The channel logic (buffering, counting, rendezvous) is identical in both
flavors, so it is written once against the two tiny backends below. Each
backend exposes generator methods ``wait(evt, timeout=None)`` and
``signal(evt)`` plus an event factory, and the channel code delegates
with ``yield from``.

Timed waits resolve to the same values in both flavors — the event that
fired, or the kernel's :data:`~repro.kernel.commands.TIMEOUT` sentinel —
because both layers sit on the shared wait core
(:mod:`repro.kernel.waitcore`): kernel ``Wait(timeout=)`` and RTOS
``event_wait(timeout=)`` arm the same timer queue, so same-instant
timeout-vs-notify races resolve identically in spec and refined models.

:func:`wait_until` is the deadline loop the timed channel operations
build on: channels re-wait after spurious wakeups (another consumer took
the token), so a fixed per-wait timeout would extend the total budget —
the helper charges every re-wait against one absolute deadline, reading
the clock through the sim-agnostic :data:`~repro.kernel.commands.NOW`
command.
"""

from repro.kernel.commands import NOW, Notify, Wait
from repro.kernel.events import Event


class SpecSync:
    """SLDL-event backend (specification model)."""

    flavor = "spec"

    def new_event(self, name):
        return Event(name)

    def wait(self, evt, timeout=None):
        if timeout is None:
            yield Wait(evt)
            return evt
        return (yield Wait(evt, timeout=timeout))

    def signal(self, evt):
        yield Notify(evt)


class RTOSSync:
    """RTOS-model backend (architecture model)."""

    flavor = "rtos"

    def __init__(self, os_model):
        self.os = os_model

    def new_event(self, name):
        return self.os.event_new(name)

    def wait(self, evt, timeout=None):
        if timeout is None:
            yield from self.os.event_wait(evt)
            return evt
        return (yield from self.os.event_wait(evt, timeout=timeout))

    def signal(self, evt):
        yield from self.os.event_notify(evt)


def wait_until(sync, evt, predicate, timeout):
    """Wait on ``evt`` until ``predicate()`` holds or the deadline passes.

    Generator; evaluates to the final ``predicate()`` value (so ``False``
    means the timeout budget ran out first). ``timeout`` is a relative
    budget in simulated time units; every re-wait after a spurious wakeup
    consumes the remainder of the same budget. ``timeout=0`` polls.
    """
    timeout = int(timeout)
    if timeout < 0:
        raise ValueError(f"negative timeout: {timeout}")
    deadline = None
    while not predicate():
        now = yield NOW
        if deadline is None:
            deadline = now + timeout
        remaining = deadline - now
        if remaining <= 0:
            return False
        yield from sync.wait(evt, timeout=remaining)
    return True
