"""Double-handshake rendezvous channel.

A ``send`` completes only after the matching ``recv`` consumed the item
(sender and receiver rendezvous), modeling unbuffered synchronous
communication between behaviors — the blocking channel semantics of the
paper's Figure 8 example (B3 "waits until it receives a message from B2
through the channel c1").
"""

from repro.kernel.channel import Channel
from repro.channels.sync import RTOSSync, SpecSync


class HandshakeBase(Channel):
    """Unbuffered rendezvous over a pluggable synchronization backend."""

    def __init__(self, sync, name=None):
        super().__init__(name)
        self._sync = sync
        self._item = None
        self._full = False
        self.erdy = sync.new_event(f"{self.name}.erdy")
        self.eack = sync.new_event(f"{self.name}.eack")
        self.transfers = 0

    def send(self, item=None):
        """Offer ``item`` and block until a receiver took it (generator)."""
        while self._full:
            yield from self._sync.wait(self.eack)
        self._item = item
        self._full = True
        yield from self._sync.signal(self.erdy)
        while self._full:
            yield from self._sync.wait(self.eack)

    def recv(self):
        """Block for an offered item and consume it (generator)."""
        while not self._full:
            yield from self._sync.wait(self.erdy)
        item = self._item
        self._item = None
        self._full = False
        self.transfers += 1
        yield from self._sync.signal(self.eack)
        return item


class Handshake(HandshakeBase):
    """Specification-model rendezvous (SLDL events)."""

    def __init__(self, name=None):
        super().__init__(SpecSync(), name)


class RTOSHandshake(HandshakeBase):
    """Architecture-model rendezvous (RTOS events)."""

    def __init__(self, os_model, name=None):
        super().__init__(RTOSSync(os_model), name)
