"""Double-handshake rendezvous channel.

A ``send`` completes only after the matching ``recv`` consumed the item
(sender and receiver rendezvous), modeling unbuffered synchronous
communication between behaviors — the blocking channel semantics of the
paper's Figure 8 example (B3 "waits until it receives a message from B2
through the channel c1").
"""

from repro.kernel.channel import Channel
from repro.kernel.commands import NOW, TIMEOUT
from repro.channels.sync import RTOSSync, SpecSync, wait_until


class HandshakeBase(Channel):
    """Unbuffered rendezvous over a pluggable synchronization backend."""

    def __init__(self, sync, name=None):
        super().__init__(name)
        self._sync = sync
        self._item = None
        self._full = False
        self.erdy = sync.new_event(f"{self.name}.erdy")
        self.eack = sync.new_event(f"{self.name}.eack")
        self.transfers = 0

    def attach_metrics(self, registry):
        """Register the rendezvous-transfer counter."""
        from repro.obs.instruments import HandshakeObs

        self._obs = HandshakeObs(registry, self.name)
        return self._obs

    def send(self, item=None, timeout=None):
        """Offer ``item`` and block until a receiver took it (generator).

        Evaluates to True once the rendezvous completed. With ``timeout=``
        one budget covers both blocking phases (waiting for the slot and
        waiting for the receiver); on expiry the offer is *retracted* —
        the item is taken back out of the channel so a late receiver does
        not consume a transfer the sender already reported as failed —
        and the call evaluates to False.
        """
        if timeout is None:
            while self._full:
                yield from self._sync.wait(self.eack)
            self._item = item
            self._full = True
            yield from self._sync.signal(self.erdy)
            while self._full:
                yield from self._sync.wait(self.eack)
            return True
        start = yield NOW
        free = yield from wait_until(
            self._sync, self.eack, lambda: not self._full, timeout
        )
        if not free:
            return False
        self._item = item
        self._full = True
        # while our item occupies the slot no other sender can fill it,
        # so the next transfer to complete is necessarily ours
        placed_at = self.transfers
        yield from self._sync.signal(self.erdy)
        elapsed = (yield NOW) - start
        yield from wait_until(
            self._sync, self.eack,
            lambda: self.transfers > placed_at,
            max(0, timeout - elapsed),
        )
        if self.transfers == placed_at:
            # nobody took it in time: retract the offer and free the
            # slot for senders blocked behind us
            self._item = None
            self._full = False
            yield from self._sync.signal(self.eack)
            return False
        return True

    def recv(self, timeout=None):
        """Block for an offered item and consume it (generator).

        With ``timeout=`` the wait for an offer expires after that much
        simulated time and the call evaluates to the kernel's
        :data:`~repro.kernel.commands.TIMEOUT` sentinel.
        """
        if timeout is None:
            while not self._full:
                yield from self._sync.wait(self.erdy)
        else:
            offered = yield from wait_until(
                self._sync, self.erdy, lambda: self._full, timeout
            )
            if not offered:
                return TIMEOUT
        item = self._item
        self._item = None
        self._full = False
        self.transfers += 1
        obs = self._obs
        if obs is not None:
            obs.transfers.inc()
        yield from self._sync.signal(self.eack)
        return item


class Handshake(HandshakeBase):
    """Specification-model rendezvous (SLDL events)."""

    def __init__(self, name=None):
        super().__init__(SpecSync(), name)


class RTOSHandshake(HandshakeBase):
    """Architecture-model rendezvous (RTOS events)."""

    def __init__(self, os_model, name=None):
        super().__init__(RTOSSync(os_model), name)
