"""Bounded FIFO queue channel — the paper's ``c_queue`` (Figure 7).

``send`` blocks while the buffer is full; ``recv`` blocks while it is
empty. Synchronization uses a data-ready and a space-ready event, exactly
the ``erdy``/``eack`` pair of the paper's example.
"""

from collections import deque

from repro.kernel.channel import Channel
from repro.kernel.commands import TIMEOUT
from repro.channels.sync import RTOSSync, SpecSync, wait_until


class QueueBase(Channel):
    """Bounded FIFO over a pluggable synchronization backend."""

    def __init__(self, sync, capacity=1, name=None):
        super().__init__(name)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sync = sync
        self.capacity = capacity
        self.buffer = deque()
        self.erdy = sync.new_event(f"{self.name}.erdy")
        self.eack = sync.new_event(f"{self.name}.eack")
        self.sent = 0
        self.received = 0

    def attach_metrics(self, registry):
        """Register occupancy gauge + sent/received counters."""
        from repro.obs.instruments import QueueObs

        self._obs = QueueObs(registry, self.name)
        return self._obs

    def send(self, item, timeout=None):
        """Enqueue ``item``, blocking while the queue is full (generator).

        Evaluates to True. With ``timeout=`` the wait for space expires
        after that much simulated time and evaluates to False (nothing
        enqueued).
        """
        faults = self._faults
        if faults is not None:
            yield from faults.channel_gate(self, "send", self._sync)
        if timeout is None:
            while len(self.buffer) >= self.capacity:
                yield from self._sync.wait(self.eack)
        else:
            fits = yield from wait_until(
                self._sync, self.eack,
                lambda: len(self.buffer) < self.capacity, timeout,
            )
            if not fits:
                return False
        self.buffer.append(item)
        self.sent += 1
        obs = self._obs
        if obs is not None:
            obs.sent.inc()
            obs.occupancy.set(len(self.buffer))
        yield from self._sync.signal(self.erdy)
        return True

    def recv(self, timeout=None):
        """Dequeue one item, blocking while empty (generator).

        Evaluates to the item: ``item = yield from q.recv()``. With
        ``timeout=`` an empty queue is waited on for at most that much
        simulated time; on expiry the call evaluates to the kernel's
        :data:`~repro.kernel.commands.TIMEOUT` sentinel.
        """
        faults = self._faults
        if faults is not None:
            yield from faults.channel_gate(self, "recv", self._sync)
        if timeout is None:
            while not self.buffer:
                yield from self._sync.wait(self.erdy)
        else:
            ready = yield from wait_until(
                self._sync, self.erdy, lambda: bool(self.buffer), timeout
            )
            if not ready:
                return TIMEOUT
        item = self.buffer.popleft()
        self.received += 1
        obs = self._obs
        if obs is not None:
            obs.received.inc()
            obs.occupancy.set(len(self.buffer))
        yield from self._sync.signal(self.eack)
        return item

    def __len__(self):
        return len(self.buffer)


class Queue(QueueBase):
    """Specification-model bounded queue (SLDL events)."""

    def __init__(self, capacity=1, name=None):
        super().__init__(SpecSync(), capacity, name)


class RTOSQueue(QueueBase):
    """Architecture-model bounded queue (RTOS events, Figure 7)."""

    def __init__(self, os_model, capacity=1, name=None):
        super().__init__(RTOSSync(os_model), capacity, name)
