"""Bounded FIFO queue channel — the paper's ``c_queue`` (Figure 7).

``send`` blocks while the buffer is full; ``recv`` blocks while it is
empty. Synchronization uses a data-ready and a space-ready event, exactly
the ``erdy``/``eack`` pair of the paper's example.
"""

from collections import deque

from repro.kernel.channel import Channel
from repro.channels.sync import RTOSSync, SpecSync


class QueueBase(Channel):
    """Bounded FIFO over a pluggable synchronization backend."""

    def __init__(self, sync, capacity=1, name=None):
        super().__init__(name)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sync = sync
        self.capacity = capacity
        self.buffer = deque()
        self.erdy = sync.new_event(f"{self.name}.erdy")
        self.eack = sync.new_event(f"{self.name}.eack")
        self.sent = 0
        self.received = 0

    def send(self, item):
        """Enqueue ``item``, blocking while the queue is full (generator)."""
        while len(self.buffer) >= self.capacity:
            yield from self._sync.wait(self.eack)
        self.buffer.append(item)
        self.sent += 1
        yield from self._sync.signal(self.erdy)

    def recv(self):
        """Dequeue one item, blocking while empty (generator).

        Evaluates to the item: ``item = yield from q.recv()``.
        """
        while not self.buffer:
            yield from self._sync.wait(self.erdy)
        item = self.buffer.popleft()
        self.received += 1
        yield from self._sync.signal(self.eack)
        return item

    def __len__(self):
        return len(self.buffer)


class Queue(QueueBase):
    """Specification-model bounded queue (SLDL events)."""

    def __init__(self, capacity=1, name=None):
        super().__init__(SpecSync(), capacity, name)


class RTOSQueue(QueueBase):
    """Architecture-model bounded queue (RTOS events, Figure 7)."""

    def __init__(self, os_model, capacity=1, name=None):
        super().__init__(RTOSSync(os_model), capacity, name)
