"""Unified observability layer.

One subsystem spanning every layer of the reproduction:

* **trace sinks** (:mod:`repro.obs.sinks`) — where
  :class:`~repro.kernel.trace.Trace` records go: in-memory list
  (default), bounded ring buffer, streaming JSONL file, tee;
* **metrics registry** (:mod:`repro.obs.metrics`) — named
  counters/gauges/histograms instrumented throughout the RTOS services
  and the channel library, with cross-run aggregation for the farm;
* **simulation profiler** (:mod:`repro.obs.profiler`) — opt-in
  wall-clock attribution per command type and per process
  (``Simulator.enable_profiling()`` / ``profile_report()``);
* **exporters** (:mod:`repro.obs.ctf` plus the pre-existing VCD/Gantt
  renderers) — Chrome Trace Format / Perfetto JSON over the same trace
  query layer, with causal wake-edge flow arrows and per-task latency
  counter tracks;
* **causal spans** (:mod:`repro.obs.spans`) — streaming O(1)-memory
  reconstruction of task lifecycle and blocking spans with causal
  wake edges, over any sink/stream;
* **analyzers** (:mod:`repro.obs.analyzers`) — deterministic mergeable
  latency digests (p50/p95/p99), priority-inversion detection,
  worst-case witnesses, miss census; assembled into run health
  reports by :mod:`repro.obs.report`.

``python -m repro.obs`` is the command-line entry point (``export``,
``stats``, ``profile``, ``report`` subcommands).
"""

from repro.obs.analyzers import (
    InversionDetector,
    LatencyAnalyzer,
    LatencyDigest,
    MissSummary,
    WorstCaseTracker,
)
from repro.obs.ctf import to_ctf, validate_ctf, write_ctf
from repro.obs.instruments import (
    HandshakeObs,
    QueueObs,
    RTOSObs,
    SemaphoreObs,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import SimProfiler
from repro.obs.report import build_report, format_report
from repro.obs.spans import (
    BlockSpan,
    JobSpan,
    SpanAnalyzer,
    SpanBuilder,
    WakeEdge,
    build_spans,
)
from repro.obs.sinks import (
    JsonlSink,
    ListSink,
    RingBufferSink,
    TeeSink,
    TraceSink,
    iter_jsonl,
    load_jsonl,
)

__all__ = [
    "BlockSpan",
    "Counter",
    "Gauge",
    "HandshakeObs",
    "Histogram",
    "InversionDetector",
    "JobSpan",
    "JsonlSink",
    "LatencyAnalyzer",
    "LatencyDigest",
    "ListSink",
    "MetricsRegistry",
    "MissSummary",
    "QueueObs",
    "RTOSObs",
    "RingBufferSink",
    "SemaphoreObs",
    "SimProfiler",
    "SpanAnalyzer",
    "SpanBuilder",
    "TeeSink",
    "TraceSink",
    "WakeEdge",
    "WorstCaseTracker",
    "build_report",
    "build_spans",
    "format_report",
    "iter_jsonl",
    "load_jsonl",
    "to_ctf",
    "validate_ctf",
    "write_ctf",
]
