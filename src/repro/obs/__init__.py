"""Unified observability layer.

One subsystem spanning every layer of the reproduction:

* **trace sinks** (:mod:`repro.obs.sinks`) — where
  :class:`~repro.kernel.trace.Trace` records go: in-memory list
  (default), bounded ring buffer, streaming JSONL file, tee;
* **metrics registry** (:mod:`repro.obs.metrics`) — named
  counters/gauges/histograms instrumented throughout the RTOS services
  and the channel library, with cross-run aggregation for the farm;
* **simulation profiler** (:mod:`repro.obs.profiler`) — opt-in
  wall-clock attribution per command type and per process
  (``Simulator.enable_profiling()`` / ``profile_report()``);
* **exporters** (:mod:`repro.obs.ctf` plus the pre-existing VCD/Gantt
  renderers) — Chrome Trace Format / Perfetto JSON over the same trace
  query layer.

``python -m repro.obs`` is the command-line entry point (``export``,
``stats``, ``profile`` subcommands).
"""

from repro.obs.ctf import to_ctf, validate_ctf, write_ctf
from repro.obs.instruments import (
    HandshakeObs,
    QueueObs,
    RTOSObs,
    SemaphoreObs,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import SimProfiler
from repro.obs.sinks import (
    JsonlSink,
    ListSink,
    RingBufferSink,
    TeeSink,
    TraceSink,
    iter_jsonl,
    load_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "HandshakeObs",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "MetricsRegistry",
    "QueueObs",
    "RTOSObs",
    "RingBufferSink",
    "SemaphoreObs",
    "SimProfiler",
    "TeeSink",
    "TraceSink",
    "iter_jsonl",
    "load_jsonl",
    "to_ctf",
    "validate_ctf",
    "write_ctf",
]
