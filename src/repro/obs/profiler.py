"""Simulation profiler: wall-clock attribution inside the kernel.

Answers "where does simulator *host* time go?" — per command type (is
the cost in ``WaitFor`` handling or in ``Wait``/``Notify``?) and per
process (which model burns the cycles?). The data is sampled with the
monotonic ``time.perf_counter`` around every generator resume and every
command handler by the profiled stepping loop the simulator swaps in
(:meth:`repro.kernel.simulator.Simulator.enable_profiling`); when
profiling is off (the default) the hot path is byte-for-byte the
unprofiled ``_step`` — zero overhead.

Attribution model:

* **process time** — host seconds spent inside the process's generator
  (the model code between two ``yield``-s), plus its resume count;
* **command time** — host seconds spent in the kernel's handler for each
  command tag (``waitfor``, ``wait``, ``notify``, ...), plus call count.

The two views partition (almost all of) the stepping loop's wall time,
so comparing their totals against the end-to-end wall time also shows
the fixed per-step dispatch overhead.
"""


class SimProfiler:
    """Accumulated wall-clock attribution of one simulation run."""

    __slots__ = ("by_command", "by_process")

    def __init__(self):
        #: command tag -> [calls, seconds] (mutable cells: the stepping
        #: loop bumps them in place)
        self.by_command = {}
        #: process name -> [resumes, seconds]
        self.by_process = {}

    # -- export ------------------------------------------------------------

    @property
    def command_seconds(self):
        return sum(cell[1] for cell in self.by_command.values())

    @property
    def process_seconds(self):
        return sum(cell[1] for cell in self.by_process.values())

    def as_dict(self):
        return {
            "by_command": {
                tag: {"calls": calls, "seconds": seconds}
                for tag, (calls, seconds) in sorted(
                    self.by_command.items(),
                    key=lambda item: -item[1][1],
                )
            },
            "by_process": {
                name: {"resumes": resumes, "seconds": seconds}
                for name, (resumes, seconds) in sorted(
                    self.by_process.items(),
                    key=lambda item: -item[1][1],
                )
            },
            "command_seconds": self.command_seconds,
            "process_seconds": self.process_seconds,
        }

    def reset(self):
        self.by_command.clear()
        self.by_process.clear()

    def report(self, limit=15):
        """Human-readable two-section profile table."""
        lines = []
        total_cmd = self.command_seconds
        total_proc = self.process_seconds
        lines.append("simulation profile")
        lines.append("==================")
        lines.append(
            f"model code (processes): {total_proc:.6f} s, "
            f"kernel handlers (commands): {total_cmd:.6f} s"
        )
        lines.append("")
        lines.append(f"{'command':<12}{'calls':>12}{'seconds':>12}{'share':>9}")
        for tag, (calls, seconds) in sorted(
            self.by_command.items(), key=lambda item: -item[1][1]
        )[:limit]:
            share = seconds / total_cmd if total_cmd else 0.0
            lines.append(
                f"{tag:<12}{calls:>12,}{seconds:>12.6f}{share:>8.1%}"
            )
        lines.append("")
        lines.append(
            f"{'process':<24}{'resumes':>10}{'seconds':>12}{'share':>9}"
        )
        for name, (resumes, seconds) in sorted(
            self.by_process.items(), key=lambda item: -item[1][1]
        )[:limit]:
            share = seconds / total_proc if total_proc else 0.0
            lines.append(
                f"{str(name):<24}{resumes:>10,}{seconds:>12.6f}{share:>8.1%}"
            )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"SimProfiler(commands={len(self.by_command)}, "
            f"processes={len(self.by_process)}, "
            f"seconds={self.command_seconds + self.process_seconds:.6f})"
        )
