"""Pluggable trace sinks beyond the in-memory default.

The sink *protocol* (:class:`~repro.kernel.trace.TraceSink`) and the
default in-memory :class:`~repro.kernel.trace.ListSink` live in the
kernel — the bottom layer stays self-contained. This module adds the
sinks that make observability scale past toy runs and re-exports the
kernel pair so ``repro.obs`` is the one-stop import:

:class:`RingBufferSink`
    a bounded ring that keeps only the newest ``capacity`` records;
    million-event simulations keep a recent window in O(capacity)
    memory (``evicted`` counts what was dropped).
:class:`JsonlSink`
    a streaming JSON-lines file writer: O(1) memory regardless of trace
    length; :func:`load_jsonl` reloads the file into an in-memory trace
    for the analysis/export tooling.
:class:`TeeSink`
    fans one record stream out to several sinks (e.g. keep an in-memory
    view for queries *and* stream to disk).

Sink contract (duck-typed, no registration): ``emit(record)`` appends
one record, ``records`` is an iterable view of what is still held in
memory, ``clear()`` resets the sink (including any backing file),
``close()`` releases resources. ``emit`` is looked up **once** by the
recorder and called directly, so a sink's ``emit`` should be as cheap
as possible.
"""

import json
from collections import deque

from repro.kernel.trace import ListSink, Trace, TraceRecord, TraceSink

__all__ = [
    "JsonlSink",
    "ListSink",
    "RingBufferSink",
    "TeeSink",
    "TraceSink",
    "dumps_record",
    "iter_jsonl",
    "load_jsonl",
    "obj_to_record",
    "record_to_obj",
]


class RingBufferSink(TraceSink):
    """Bounded sink keeping the newest ``capacity`` records."""

    def __init__(self, capacity):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records = deque(maxlen=capacity)
        self._emitted = 0

    def emit(self, record):
        self._emitted += 1
        self._records.append(record)

    @property
    def records(self):
        return self._records

    @property
    def emitted(self):
        return self._emitted

    @property
    def evicted(self):
        """Records dropped because the ring was full."""
        return self._emitted - len(self._records)

    def clear(self):
        self._records.clear()
        self._emitted = 0


class JsonlSink(TraceSink):
    """Streaming JSON-lines file sink: O(1) memory for any trace length.

    Each record becomes one JSON object per line (see
    :func:`record_to_obj` for the key scheme). Nothing is retained in
    memory — ``records`` is empty; reload the file with
    :func:`load_jsonl` to query or export it.

    ``emit`` encodes the record and appends it to a small line buffer;
    the buffer is written out every ``buffer_records`` lines (one
    syscall per batch instead of two per record — this is what keeps
    the hot-path overhead near the in-memory sinks, see the
    EXPERIMENTS.md sink-overhead table). Call :meth:`flush` to push
    buffered lines to the OS mid-run; :meth:`close` flushes
    automatically. A reader that needs every record *as it happens*
    (live tailing) can pass ``buffer_records=1``.

    Usable as a context manager (the :class:`TraceSink` base closes on
    exit); ``emit`` after ``close`` raises :class:`RuntimeError` rather
    than hitting the closed file object.
    """

    def __init__(self, path, buffer_records=256):
        self.path = path
        self._fh = open(path, "w")
        self._emitted = 0
        self._buffer = []
        self._limit = max(1, int(buffer_records))

    def emit(self, record):
        if self._fh.closed:
            raise RuntimeError(
                f"emit() on closed JsonlSink({self.path!r}); "
                "the sink cannot be reused after close()"
            )
        buffer = self._buffer
        buffer.append(dumps_record(record))
        self._emitted += 1
        if len(buffer) >= self._limit:
            self._fh.write("\n".join(buffer) + "\n")
            buffer.clear()

    @property
    def emitted(self):
        return self._emitted

    def clear(self):
        """Truncate the backing file and restart the stream."""
        self._buffer.clear()
        self._fh.seek(0)
        self._fh.truncate()
        self._emitted = 0

    def flush(self):
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._fh.flush()

    def close(self):
        if not self._fh.closed:
            self.flush()
            self._fh.close()


class TeeSink(TraceSink):
    """Fan one record stream out to several sinks.

    ``records`` (and the query layer on top of it) reads from the first
    sink, so ``TeeSink(ListSink(), JsonlSink(path))`` gives an in-memory
    view *and* a streamed file.
    """

    def __init__(self, *sinks):
        if not sinks:
            raise ValueError("TeeSink needs at least one sink")
        self.sinks = sinks

    def emit(self, record):
        for sink in self.sinks:
            sink.emit(record)

    @property
    def records(self):
        return self.sinks[0].records

    @property
    def emitted(self):
        return self.sinks[0].emitted

    def clear(self):
        for sink in self.sinks:
            sink.clear()

    def flush(self):
        for sink in self.sinks:
            sink.flush()

    def close(self):
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# JSONL record codec
# ----------------------------------------------------------------------

def record_to_obj(record):
    """``TraceRecord`` -> plain dict with short keys (t/c/a/i/d)."""
    obj = {"t": record.time, "c": record.category, "a": record.actor}
    if record.info:
        obj["i"] = record.info
    if record.data:
        obj["d"] = record.data
    return obj


# ``default=str`` defeats json.dumps' cached-encoder fast path, so one
# precompiled encoder serves every record instead of building a fresh
# JSONEncoder per line
_ENCODE = json.JSONEncoder(separators=(",", ":"), default=str).encode


def dumps_record(record):
    """One compact JSON line for ``record`` (no trailing newline).

    Non-JSON payload values in ``data`` are stringified — the trace
    stream must never fail because an application put an object into a
    user mark.
    """
    return _ENCODE(record_to_obj(record))


def obj_to_record(obj):
    """Inverse of :func:`record_to_obj`."""
    return TraceRecord(
        obj["t"], obj["c"], obj["a"], obj.get("i", ""), obj.get("d", {})
    )


def iter_jsonl(path, strict=False):
    """Yield :class:`TraceRecord` objects from a JSONL trace file.

    A crashed or killed run leaves a cut-off final line — undecodable
    *and* missing its newline terminator. By default that tail is
    tolerated (iteration simply ends at the last complete record — the
    natural contract for post-mortem analysis of exactly such runs).
    ``strict=True`` restores the raise. A malformed but *complete*
    line (newline-terminated, or followed by more data) is real
    corruption and always raises :class:`json.JSONDecodeError`.
    """
    with open(path) as fh:
        lines = iter(fh)
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                obj = json.loads(stripped)
            except json.JSONDecodeError:
                if strict or line.endswith("\n"):
                    raise  # complete line that isn't JSON: corrupt
                for rest in lines:
                    if rest.strip():
                        raise  # not the final line: corrupt mid-file
                return
            yield obj_to_record(obj)


def load_jsonl(path, strict=False):
    """Load a JSONL trace file into a fresh in-memory ``Trace``.

    The result supports the full query layer (``segments``, ``count``,
    ...) and every exporter (VCD, Gantt, Chrome Trace Format).
    ``strict=`` is :func:`iter_jsonl`'s truncated-tail behavior.
    """
    trace = Trace()
    records = trace.records
    for record in iter_jsonl(path, strict=strict):
        records.append(record)
    return trace
