"""Pluggable trace sinks beyond the in-memory default.

The sink *protocol* (:class:`~repro.kernel.trace.TraceSink`) and the
default in-memory :class:`~repro.kernel.trace.ListSink` live in the
kernel — the bottom layer stays self-contained. This module adds the
sinks that make observability scale past toy runs and re-exports the
kernel pair so ``repro.obs`` is the one-stop import:

:class:`RingBufferSink`
    a bounded ring that keeps only the newest ``capacity`` records;
    million-event simulations keep a recent window in O(capacity)
    memory (``evicted`` counts what was dropped).
:class:`JsonlSink`
    a streaming JSON-lines file writer: O(1) memory regardless of trace
    length; :func:`load_jsonl` reloads the file into an in-memory trace
    for the analysis/export tooling.
:class:`TeeSink`
    fans one record stream out to several sinks (e.g. keep an in-memory
    view for queries *and* stream to disk).

Sink contract (duck-typed, no registration): ``emit(record)`` appends
one record, ``records`` is an iterable view of what is still held in
memory, ``clear()`` resets the sink (including any backing file),
``close()`` releases resources. ``emit`` is looked up **once** by the
recorder and called directly, so a sink's ``emit`` should be as cheap
as possible.
"""

import json
from collections import deque

from repro.kernel.trace import ListSink, Trace, TraceRecord, TraceSink

__all__ = [
    "JsonlSink",
    "ListSink",
    "RingBufferSink",
    "TeeSink",
    "TraceSink",
    "dumps_record",
    "iter_jsonl",
    "load_jsonl",
    "obj_to_record",
    "record_to_obj",
]


class RingBufferSink(TraceSink):
    """Bounded sink keeping the newest ``capacity`` records."""

    def __init__(self, capacity):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records = deque(maxlen=capacity)
        self._emitted = 0

    def emit(self, record):
        self._emitted += 1
        self._records.append(record)

    @property
    def records(self):
        return self._records

    @property
    def emitted(self):
        return self._emitted

    @property
    def evicted(self):
        """Records dropped because the ring was full."""
        return self._emitted - len(self._records)

    def clear(self):
        self._records.clear()
        self._emitted = 0


class JsonlSink(TraceSink):
    """Streaming JSON-lines file sink: O(1) memory for any trace length.

    Each record becomes one JSON object per line (see
    :func:`record_to_obj` for the key scheme). Nothing is retained in
    memory — ``records`` is empty; reload the file with
    :func:`load_jsonl` to query or export it.

    Usable as a context manager (the :class:`TraceSink` base closes on
    exit); ``emit`` after ``close`` raises :class:`RuntimeError` rather
    than hitting the closed file object.
    """

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w")
        self._emitted = 0

    def emit(self, record):
        fh = self._fh
        if fh.closed:
            raise RuntimeError(
                f"emit() on closed JsonlSink({self.path!r}); "
                "the sink cannot be reused after close()"
            )
        fh.write(dumps_record(record))
        fh.write("\n")
        self._emitted += 1

    @property
    def emitted(self):
        return self._emitted

    def clear(self):
        """Truncate the backing file and restart the stream."""
        self._fh.seek(0)
        self._fh.truncate()
        self._emitted = 0

    def flush(self):
        self._fh.flush()

    def close(self):
        if not self._fh.closed:
            self._fh.close()


class TeeSink(TraceSink):
    """Fan one record stream out to several sinks.

    ``records`` (and the query layer on top of it) reads from the first
    sink, so ``TeeSink(ListSink(), JsonlSink(path))`` gives an in-memory
    view *and* a streamed file.
    """

    def __init__(self, *sinks):
        if not sinks:
            raise ValueError("TeeSink needs at least one sink")
        self.sinks = sinks

    def emit(self, record):
        for sink in self.sinks:
            sink.emit(record)

    @property
    def records(self):
        return self.sinks[0].records

    @property
    def emitted(self):
        return self.sinks[0].emitted

    def clear(self):
        for sink in self.sinks:
            sink.clear()

    def flush(self):
        for sink in self.sinks:
            sink.flush()

    def close(self):
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# JSONL record codec
# ----------------------------------------------------------------------

def record_to_obj(record):
    """``TraceRecord`` -> plain dict with short keys (t/c/a/i/d)."""
    obj = {"t": record.time, "c": record.category, "a": record.actor}
    if record.info:
        obj["i"] = record.info
    if record.data:
        obj["d"] = record.data
    return obj


def dumps_record(record):
    """One compact JSON line for ``record`` (no trailing newline).

    Non-JSON payload values in ``data`` are stringified — the trace
    stream must never fail because an application put an object into a
    user mark.
    """
    return json.dumps(
        record_to_obj(record), separators=(",", ":"), default=str
    )


def obj_to_record(obj):
    """Inverse of :func:`record_to_obj`."""
    return TraceRecord(
        obj["t"], obj["c"], obj["a"], obj.get("i", ""), obj.get("d", {})
    )


def iter_jsonl(path):
    """Yield :class:`TraceRecord` objects from a JSONL trace file."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield obj_to_record(json.loads(line))


def load_jsonl(path):
    """Load a JSONL trace file into a fresh in-memory ``Trace``.

    The result supports the full query layer (``segments``, ``count``,
    ...) and every exporter (VCD, Gantt, Chrome Trace Format).
    """
    trace = Trace()
    records = trace.records
    for record in iter_jsonl(path):
        records.append(record)
    return trace
