"""Chrome Trace Format (Perfetto / ``chrome://tracing``) export.

Maps a :class:`~repro.kernel.trace.Trace` onto the Chrome Trace Format
JSON array-of-events dialect, loadable by Perfetto's legacy importer and
``chrome://tracing``:

* ``exec`` segments -> complete duration events (``ph: "X"``), one track
  (pid/tid pair) per actor under the "exec" process group;
* ``task`` state transitions -> thread-scoped instant events
  (``ph: "i"``) on the same actor track;
* ``sched`` records (dispatch/preempt/switch) -> instant events on the
  scheduler track of the "os" process group;
* ``irq`` records -> instant events on the "irq" group;
* ``fault`` records (injections, deadline misses, budget overruns) ->
  instant events on the "fault" group;
* ``mode`` records (criticality raises/recoveries, degraded releases) ->
  instant events on the "mode" group;
* ``user``/``chan``/other records -> instant events on the "app" group;
* a derived **counter track** (``ph: "C"``, name ``running``) stepping
  +1/-1 at every segment boundary — CPU/actor occupancy over time;
* reconstructed **causal wake edges** (:mod:`repro.obs.spans`) -> flow
  arrows (``ph: "s"``/``"f"``) from the waking actor's track to the
  woken task's track — Perfetto draws who ended each block;
* per-task **response-time counter tracks** (``ph: "C"``, name
  ``latency.<task>``) stepping at each job completion.

Timestamps are the simulator's integer time units passed through
unchanged (CTF nominally wants microseconds; for a relative timeline the
unit only affects the axis label).

:func:`validate_ctf` is the schema check the tests and the CLI run
before a document is written: required fields per phase type, and
monotone, non-overlapping durations per track.
"""

import json

from repro.analysis.trace_analysis import exec_segments

#: process-group ids (CTF "pid") used by the exporter
EXEC_PID = 1
OS_PID = 2
IRQ_PID = 3
APP_PID = 4
FAULT_PID = 5
MODE_PID = 6

_GROUP_NAMES = {
    EXEC_PID: "exec",
    OS_PID: "os",
    IRQ_PID: "irq",
    APP_PID: "app",
    FAULT_PID: "fault",
    MODE_PID: "mode",
}

#: trace category -> process group for instant events
_INSTANT_PID = {
    "sched": OS_PID, "irq": IRQ_PID, "fault": FAULT_PID, "mode": MODE_PID,
}


def to_ctf(trace, time_unit="ns", flows=True):
    """Render ``trace`` as a Chrome Trace Format document (a dict).

    The result is JSON-ready: ``json.dump(to_ctf(trace), fh)`` or use
    :func:`write_ctf`. ``flows=False`` skips the span reconstruction
    (no wake arrows, no latency counter tracks).
    """
    events = []
    segments = exec_segments(trace)
    actors = []
    for actor, *_ in segments:
        if actor not in actors:
            actors.append(actor)
    tids = {actor: index + 1 for index, actor in enumerate(actors)}

    for pid, label in _GROUP_NAMES.items():
        events.append(_meta("process_name", pid, 0, {"name": label}))
    for actor, tid in tids.items():
        events.append(_meta("thread_name", EXEC_PID, tid, {"name": actor}))
    events.append(_meta("thread_name", OS_PID, 0, {"name": "scheduler"}))

    # exec segments -> complete duration events + occupancy counter deltas
    deltas = {}
    for actor, start, end, info in segments:
        events.append({
            "name": actor,
            "cat": "exec",
            "ph": "X",
            "ts": start,
            "dur": end - start,
            "pid": EXEC_PID,
            "tid": tids[actor],
            "args": {"info": info},
        })
        deltas[start] = deltas.get(start, 0) + 1
        deltas[end] = deltas.get(end, 0) - 1

    # derived counter track: number of actors executing at each instant
    running = 0
    for time in sorted(deltas):
        running += deltas[time]
        events.append({
            "name": "running",
            "ph": "C",
            "ts": time,
            "pid": EXEC_PID,
            "tid": 0,
            "args": {"running": running},
        })

    # instant events: task states on the actor's exec track; sched/irq/
    # user/chan records on their own process groups
    for record in trace:
        category = record.category
        if category == "exec":
            continue
        if category == "task":
            pid = EXEC_PID
            tid = tids.get(record.actor, 0)
        else:
            pid = _INSTANT_PID.get(category, APP_PID)
            tid = 0
        events.append({
            "name": record.info or category,
            "cat": category,
            "ph": "i",
            "s": "t",
            "ts": record.time,
            "pid": pid,
            "tid": tid,
            "args": _jsonable(record.data),
        })

    if flows:
        events.extend(_flow_events(trace, tids))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro (RTOS Modeling for System Level Design)",
            "time_unit": time_unit,
        },
    }


def _flow_events(trace, tids):
    """Causal wake arrows + per-task latency counters from the span
    layer (works on armed and unarmed streams alike)."""
    from repro.obs.spans import build_spans

    builder = build_spans(trace.records)
    events = []
    flow_id = 0
    for block in builder.blocks:
        edge = block.edge
        if edge is None or not edge.source:
            continue
        source_tid = tids.get(edge.source)
        target_tid = tids.get(block.task)
        if source_tid is None or target_tid is None:
            continue
        flow_id += 1
        name = f"wake:{edge.kind}"
        finish = block.resumed if block.resumed is not None else edge.time
        events.append({
            "name": name, "cat": "wake", "ph": "s", "id": flow_id,
            "ts": edge.time, "pid": EXEC_PID, "tid": source_tid,
            "args": {"event": edge.event, "blocked": block.duration},
        })
        events.append({
            "name": name, "cat": "wake", "ph": "f", "bp": "e",
            "id": flow_id, "ts": finish, "pid": EXEC_PID,
            "tid": target_tid, "args": {},
        })
    for job in builder.jobs:
        if job.response is None:
            continue
        events.append({
            "name": f"latency.{job.task}", "ph": "C", "ts": job.end,
            "pid": EXEC_PID, "tid": 0,
            "args": {"response": job.response},
        })
    return events


def write_ctf(trace, path, validate=True, **kwargs):
    """Validate and write the CTF rendering of ``trace`` to ``path``."""
    document = to_ctf(trace, **kwargs)
    if validate:
        validate_ctf(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return path


def _meta(name, pid, tid, args):
    return {
        "name": name, "ph": "M", "pid": pid, "tid": tid, "args": args,
    }


def _jsonable(data):
    return {
        key: value
        if isinstance(value, (int, float, str, bool, type(None)))
        else str(value)
        for key, value in data.items()
    }


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------

_REQUIRED = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid", "s"),
    "C": ("name", "ts", "pid", "args"),
    "M": ("name", "pid", "args"),
    "s": ("name", "id", "ts", "pid", "tid"),
    "f": ("name", "id", "ts", "pid", "tid"),
}


def validate_ctf(document):
    """Check ``document`` against the Chrome Trace Format event schema.

    Raises :class:`ValueError` on the first violation; returns the
    number of events otherwise. Checked invariants:

    * the JSON-object dialect with a ``traceEvents`` list;
    * every event has a known ``ph`` and that phase's required fields;
    * ``ts``/``dur`` are non-negative numbers, ``pid``/``tid`` ints;
    * instant-event scope ``s`` is one of ``t``/``p``/``g``;
    * counter args are numeric;
    * flow events pair up: every start (``s``) id has a finish (``f``)
      and vice versa;
    * per (pid, tid) track, ``X`` durations are monotone and
      non-overlapping (sorted by ``ts``, each starts at or after the
      previous one's end).
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a CTF JSON-object document (no traceEvents)")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    tracks = {}
    flow_starts, flow_finishes = set(), set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{index} is not an object")
        phase = event.get("ph")
        if phase not in _REQUIRED:
            raise ValueError(f"event #{index}: unsupported ph {phase!r}")
        for field in _REQUIRED[phase]:
            if field not in event:
                raise ValueError(
                    f"event #{index} (ph={phase}): missing field {field!r}"
                )
        if phase != "M":
            ts = event["ts"]
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"event #{index}: bad ts {ts!r}")
        if "pid" in event and not isinstance(event["pid"], int):
            raise ValueError(f"event #{index}: non-int pid")
        if "tid" in event and not isinstance(event["tid"], int):
            raise ValueError(f"event #{index}: non-int tid")
        if phase == "X":
            dur = event["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event #{index}: bad dur {dur!r}")
            tracks.setdefault((event["pid"], event["tid"]), []).append(
                (event["ts"], dur, index)
            )
        elif phase == "i":
            if event["s"] not in ("t", "p", "g"):
                raise ValueError(
                    f"event #{index}: bad instant scope {event['s']!r}"
                )
        elif phase == "C":
            for key, value in event["args"].items():
                if not isinstance(value, (int, float)):
                    raise ValueError(
                        f"event #{index}: counter {key!r} not numeric"
                    )
        elif phase == "s":
            flow_starts.add(event["id"])
        elif phase == "f":
            flow_finishes.add(event["id"])
    unpaired = flow_starts ^ flow_finishes
    if unpaired:
        raise ValueError(
            f"unpaired flow ids: {sorted(unpaired)[:5]} "
            f"({len(unpaired)} total)"
        )
    for (pid, tid), spans in tracks.items():
        spans.sort(key=lambda span: (span[0], span[0] + span[1]))
        cursor = None
        for ts, dur, index in spans:
            if cursor is not None and ts < cursor:
                raise ValueError(
                    f"track pid={pid} tid={tid}: event #{index} at ts={ts} "
                    f"overlaps the previous duration ending at {cursor}"
                )
            cursor = ts + dur
    return len(events)
