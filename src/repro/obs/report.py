"""Run health reports: one deterministic verdict per trace.

:func:`build_report` streams a record iterable through a
:class:`~repro.obs.spans.SpanBuilder` wired to the full analyzer set
(:mod:`repro.obs.analyzers`) and returns a plain JSON-serializable
dict; :func:`format_report` renders it as fixed-width text. Both are
deterministic: the same trace produces byte-identical JSON (the CI
obs-smoke job diffs two runs).

The report answers the paper-level questions a designer asks of an
RTOS model run: per-task latency percentiles (response, scheduling
latency, blocking), the top blocking chains with their causal wake
edges, priority-inversion incidents (who held the resource, who
inverted, for how long), the worst-case witness chain per task, and
the job/miss census. ``python -m repro.obs report`` is the CLI front
end.
"""

from repro.obs.analyzers import (
    InversionDetector,
    LatencyAnalyzer,
    MissSummary,
    ModeTracker,
    WorstCaseTracker,
)
from repro.obs.spans import SpanBuilder

__all__ = ["build_report", "format_report"]


def build_report(records, top=10, monitor=None, mc=None):
    """Build the run-health report dict from a trace-record iterable.

    ``monitor`` (a :class:`~repro.faults.detect.FailureMonitor`) and
    ``mc`` (a :class:`~repro.rtos.mc.MCController`) are optional live
    handles from the run that produced ``records``; their ``snapshot``
    dicts join the report as ``"watchdogs"`` / ``"mc"`` — the CLI
    passes them for bundled-model runs, recorded-trace analysis leaves
    them out.
    """
    latency = LatencyAnalyzer()
    inversions = InversionDetector(top=top)
    worst = WorstCaseTracker()
    misses = MissSummary()
    modes = ModeTracker()
    builder = SpanBuilder(latency, inversions, worst, misses, modes)
    emit = builder.emit
    now = None
    for record in records:
        emit(record)
        now = record.time
    builder.finish(now)
    report = {
        "records": builder.emitted,
        "end_time": now,
        "tasks": builder.tasks,
        "latency": latency.summary(),
        "blocking_chains": inversions.chains(),
        "inversions": inversions.incidents,
        "worst_case": worst.as_dict(),
        "misses": misses.as_dict(),
        "modes": modes.as_dict(),
    }
    if monitor is not None:
        report["watchdogs"] = monitor.snapshot()
    if mc is not None:
        report["mc"] = mc.snapshot()
    return report


def _fmt(value):
    return "-" if value is None else str(value)


def _table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i])
                      for i, cell in enumerate(row)).rstrip()
        )
    return lines


def format_report(report):
    """Fixed-width text rendering of a :func:`build_report` dict."""
    lines = [
        f"run health report — {report['records']} records, "
        f"end time {_fmt(report['end_time'])}",
        "",
        "per-task latency (simulated time units)",
    ]
    latency = report["latency"]
    tasks = sorted(set(latency["response"]) | set(latency["sched_latency"])
                   | set(latency["blocking"]))
    rows = []
    for task in tasks:
        for kind, label in (("response", "response"),
                            ("sched_latency", "sched lat"),
                            ("blocking", "blocking")):
            cell = latency[kind].get(task)
            if cell is None or not cell["count"]:
                continue
            rows.append((
                task, label, str(cell["count"]), _fmt(cell["p50"]),
                _fmt(cell["p95"]), _fmt(cell["p99"]), _fmt(cell["max"]),
                _fmt(cell["mean"]),
            ))
    if rows:
        lines += _table(
            ("task", "metric", "n", "p50", "p95", "p99", "max", "mean"),
            rows,
        )
    else:
        lines.append("  (no completed spans)")

    misses = report["misses"]
    lines += ["", "job census"]
    rows = [
        (task, str(row["jobs"]), str(row["completed"]), str(row["missed"]),
         str(row["killed"]), str(row["open"]), str(row["skipped_cycles"]))
        for task, row in sorted(misses["tasks"].items())
    ]
    if rows:
        totals = misses["totals"]
        rows.append((
            "(total)", str(totals["jobs"]), str(totals["completed"]),
            str(totals["missed"]), str(totals["killed"]),
            str(totals["open"]), str(totals["skipped_cycles"]),
        ))
        lines += _table(
            ("task", "jobs", "done", "missed", "killed", "open", "skipped"),
            rows,
        )
    else:
        lines.append("  (no jobs)")

    modes = report.get("modes")
    if modes and (modes["transitions"] or modes["degraded"]):
        lines += [
            "",
            f"criticality modes: {modes['raises']} raises, "
            f"{modes['recoveries']} recoveries",
        ]
        for entry in modes["transitions"]:
            trigger = (
                f" (trigger {entry['trigger']})" if entry["trigger"] else ""
            )
            lines.append(
                f"  t={entry['time']} {entry['kind']} "
                f"{entry['prev']} -> {entry['level']}{trigger}"
            )
        for task, row in sorted(modes["degraded"].items()):
            lines.append(
                f"  {task}: {row['releases']} releases degraded "
                f"({row['policy']})"
            )

    watchdogs = report.get("watchdogs")
    if watchdogs and watchdogs["tasks"]:
        lines += ["", f"watchdogs (miss rate {watchdogs['miss_rate']})"]
        rows = [
            (task, _fmt(row["policy"]), str(row["releases"]),
             str(row["deadline_misses"]), str(row["budget_overruns"]),
             _fmt(row["budget"]), str(row["budget_used"]))
            for task, row in watchdogs["tasks"].items()
        ]
        lines += _table(
            ("task", "policy", "releases", "misses", "overruns",
             "budget", "used"),
            rows,
        )

    mc = report.get("mc")
    if mc:
        lines += [
            "",
            f"mixed-criticality: mode {mc['mode']} "
            f"(levels {'/'.join(mc['levels'])}, degrade {mc['degrade']})",
        ]
        for task, row in sorted(mc["tasks"].items()):
            wcet = "/".join(str(w) for w in row["wcet_levels"])
            degraded = " [degraded]" if row["degraded"] else ""
            lines.append(
                f"  {task}: {row['criticality']} wcet {wcet}{degraded}"
            )

    incidents = report["inversions"]
    lines += ["", f"priority-inversion incidents: {len(incidents)}"]
    for inc in incidents:
        lines.append(
            f"  {inc['task']} blocked {inc['duration']} on "
            f"{inc['resource']} held by {inc['holder']}; inverted by "
            f"{inc['inverter']} (ran {inc['inverter_time']}) "
            f"[{inc['start']}..{inc['end']}]"
        )

    chains = report["blocking_chains"]
    lines += ["", f"top blocking chains: {len(chains)}"]
    for chain in chains:
        edge = chain["edge"]
        cause = "open"
        if edge is not None:
            cause = edge["kind"]
            if edge["source"]:
                cause += f" from {edge['source']}"
            if edge["event"]:
                cause += f" on {edge['event']}"
        lines.append(
            f"  {chain['task']} {chain['reason']} {_fmt(chain['duration'])} "
            f"[{chain['start']}..{_fmt(chain['end'])}] ended by {cause}"
        )

    worst = report["worst_case"]
    lines += ["", "worst-case witnesses"]
    for task, job in sorted(worst.items()):
        lines.append(
            f"  {task}: response {job['response']} "
            f"(release {job['release']}, end {_fmt(job['end'])}, "
            f"{job['preemptions']} preemptions, "
            f"blocked {job['blocked_time']}, outcome {job['outcome']})"
        )
        for entry in job["chain"]:
            lines.append("    " + " ".join(str(part) for part in entry))
        if job["chain_dropped"]:
            lines.append(f"    ... {job['chain_dropped']} entries dropped")
    return "\n".join(lines)
