"""Command-line entry point: ``python -m repro.obs``.

Subcommands
-----------
``export``
    Run a bundled model (or load a recorded JSONL trace) and write any
    combination of Chrome-Trace/Perfetto JSON (``--ctf``), VCD
    (``--vcd``), streaming JSONL (``--jsonl``) and an ASCII Gantt chart
    (``--gantt``).
``stats``
    Run a model with a metrics registry attached to every OS service and
    channel, and print the metric snapshot as JSON.
``profile``
    Run a model under the simulator's wall-clock profiler and print the
    per-command / per-process attribution report.
``report``
    Run a model (or load a recorded JSONL trace) through the causal
    span builder and print the run-health report — per-task latency
    percentiles, top blocking chains, priority-inversion incidents,
    worst-case witnesses and the job/miss census — as fixed-width text
    or (``--json``) deterministic JSON.

The bundled models are the paper's running example (Figure 3) —
``fig3-arch`` (the RTOS-refined architecture model, the default) and
``fig3-spec`` (the unscheduled specification model) — plus the span
demos of :mod:`repro.apps.inversion`: ``pi-demo`` (the seeded
priority-inversion scenario; ``pi-demo-pip`` is the same system healed
by priority inheritance), ``fault-demo`` (an overloaded, watched,
fault-injected task set) and ``mc-demo`` (a mixed-criticality set
cycling through overrun-triggered mode raises and hysteresis
recoveries).
"""

import argparse
import json
import sys

from repro.kernel.trace import ListSink, Trace
from repro.obs.ctf import write_ctf
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import JsonlSink, TeeSink, load_jsonl

MODELS = ("fig3-arch", "fig3-spec", "pi-demo", "pi-demo-pip", "fault-demo",
          "mc-demo")


def _run_model(model, trace=None, registry=None, profile=False):
    from repro.apps import fig3, inversion

    if model == "fig3-spec":
        return fig3.run_unscheduled(
            trace=trace, registry=registry, profile=profile
        )
    if model in ("pi-demo", "pi-demo-pip"):
        return inversion.run_inversion(
            pi=model.endswith("pip"), trace=trace, registry=registry,
            profile=profile,
        )
    if model == "fault-demo":
        return inversion.run_fault_demo(
            trace=trace, registry=registry, profile=profile
        )
    if model == "mc-demo":
        return inversion.run_mc_demo(
            trace=trace, registry=registry, profile=profile
        )
    return fig3.run_architecture(
        trace=trace, registry=registry, profile=profile
    )


def _default_path(model, suffix):
    return model.replace("-", "_") + suffix


def _add_model_argument(parser):
    parser.add_argument(
        "--model", choices=MODELS, default="fig3-arch",
        help="bundled model to run (default: %(default)s)",
    )


def cmd_export(args):
    if args.input is not None:
        try:
            trace = load_jsonl(args.input)
        except OSError as exc:
            detail = exc.strerror or exc
            print(f"error: cannot read trace {args.input}: {detail}",
                  file=sys.stderr)
            return 2
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: corrupt JSONL trace {args.input}: {exc}",
                  file=sys.stderr)
            return 2
        source = args.input
    else:
        # a Tee keeps the in-memory query view the exporters need while
        # the JSONL sink streams every record straight to disk
        sink = ListSink()
        if args.jsonl is not None:
            sink = TeeSink(sink, JsonlSink(args.jsonl))
        trace = Trace(sink=sink)
        _run_model(args.model, trace=trace)
        trace.close()
        source = args.model

    wrote = []
    if args.jsonl is not None and args.input is None:
        wrote.append(args.jsonl)
    if args.ctf is not None:
        path = args.ctf or (
            args.input + ".ctf.json" if args.input
            else _default_path(args.model, ".ctf.json")
        )
        write_ctf(trace, path)
        wrote.append(path)
    if args.vcd is not None:
        from repro.analysis.vcd import write_vcd

        path = args.vcd or (
            args.input + ".vcd" if args.input
            else _default_path(args.model, ".vcd")
        )
        write_vcd(trace, path)
        wrote.append(path)
    if args.gantt:
        from repro.analysis.gantt import render

        print(render(trace, width=args.width))

    for path in wrote:
        print(f"wrote {path}")
    if not wrote and not args.gantt:
        records = trace.records
        print(f"{source}: {len(records)} trace records "
              f"(no output selected; try --ctf, --vcd, --jsonl or --gantt)")
    return 0


def cmd_stats(args):
    registry = MetricsRegistry()
    result = _run_model(args.model, registry=registry)
    payload = {
        "model": args.model,
        "end_time": result.sim.now,
        "trace_records": len(result.trace.records),
        "metrics": registry.snapshot(),
    }
    if result.os is not None:
        payload["rtos"] = result.os.metrics.snapshot(result.sim.now)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_profile(args):
    result = _run_model(args.model, profile=True)
    print(result.sim.profile_report(limit=args.limit))
    return 0


def cmd_report(args):
    from repro.obs.report import build_report, format_report
    from repro.obs.sinks import iter_jsonl

    monitor = mc = None
    if args.input is not None:
        try:
            records = list(iter_jsonl(args.input, strict=args.strict))
        except OSError as exc:
            detail = exc.strerror or exc
            print(f"error: cannot read trace {args.input}: {detail}",
                  file=sys.stderr)
            return 2
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: corrupt JSONL trace {args.input}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        result = _run_model(args.model)
        records = result.trace.records
        monitor = result.os.monitor if result.os is not None else None
        mc = result.os.mc if result.os is not None else None
    report = build_report(records, top=args.top, monitor=monitor, mc=mc)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability toolbox: trace export, metric "
                    "snapshots and simulation profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser(
        "export", help="run a model (or load a JSONL trace) and export it"
    )
    _add_model_argument(export)
    export.add_argument(
        "--input", metavar="PATH", default=None,
        help="load a recorded JSONL trace instead of running a model",
    )
    export.add_argument(
        "--ctf", metavar="PATH", nargs="?", const="",
        help="write Chrome-Trace/Perfetto JSON (default name derived "
             "from the model)",
    )
    export.add_argument(
        "--vcd", metavar="PATH", nargs="?", const="",
        help="write an IEEE-1364 VCD waveform dump",
    )
    export.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="stream the trace to a JSONL file while the model runs",
    )
    export.add_argument(
        "--gantt", action="store_true",
        help="print an ASCII Gantt chart of the execution",
    )
    export.add_argument(
        "--width", type=int, default=72,
        help="Gantt chart width in cells (default: %(default)s)",
    )
    export.set_defaults(func=cmd_export)

    stats = sub.add_parser(
        "stats", help="run a model with metrics attached and print JSON"
    )
    _add_model_argument(stats)
    stats.set_defaults(func=cmd_stats)

    profile = sub.add_parser(
        "profile", help="run a model under the profiler and print a report"
    )
    _add_model_argument(profile)
    profile.add_argument(
        "--limit", type=int, default=15,
        help="rows per profile section (default: %(default)s)",
    )
    profile.set_defaults(func=cmd_profile)

    report = sub.add_parser(
        "report",
        help="span-based run health report (latency percentiles, "
             "blocking chains, inversions, miss census)",
    )
    _add_model_argument(report)
    report.add_argument(
        "--input", metavar="PATH", default=None,
        help="analyze a recorded JSONL trace instead of running a model",
    )
    report.add_argument(
        "--json", action="store_true",
        help="print deterministic JSON instead of the text tables",
    )
    report.add_argument(
        "--top", type=int, default=10,
        help="blocking chains to keep (default: %(default)s)",
    )
    report.add_argument(
        "--strict", action="store_true",
        help="reject truncated JSONL input instead of tolerating a "
             "cut-off final line",
    )
    report.set_defaults(func=cmd_report)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.command == "export" and args.input is not None and args.jsonl:
        print("--input and --jsonl are mutually exclusive", file=sys.stderr)
        return 2
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout piped into a pager/head that exited early: not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
