"""Online analyzers over the causal span stream.

Every analyzer here is a :class:`~repro.obs.spans.SpanAnalyzer`: it
subscribes to the hooks of a streaming
:class:`~repro.obs.spans.SpanBuilder` and keeps **O(1) state per
task** — no span list is ever retained, so analyzers ride along
million-record runs and farm workloads at fixed memory.

:class:`LatencyDigest`
    the building block: an integer quantile digest in the spirit of
    HDR histograms — exact below :data:`DIGEST_EXACT`, then
    logarithmic buckets with 6 sub-bucket bits (≤ 1.6 % relative
    error). Pure integer bucketing makes it fully **deterministic**
    (two runs of the same simulation produce byte-identical digests)
    and **mergeable** in any order (campaign aggregation merges
    per-run digests without re-simulating; merge is associative and
    commutative, so worker scheduling cannot change the result).
:class:`LatencyAnalyzer`
    per-task digests of response time, scheduling latency and blocking
    time.
:class:`InversionDetector`
    priority-inversion incidents (a task blocked on a resource held by
    a *less* urgent task while intermediate-priority tasks ran — the
    detector names the inverting task and the blocking duration) plus
    the top blocking chains by duration.
:class:`WorstCaseTracker`
    the max-response job per task, with its causal chain — the
    *witness* of the worst case.
:class:`MissSummary`
    per-task job outcome census (completed / missed / killed / open /
    skipped cycles).
:class:`ModeTracker`
    mixed-criticality mode history — every raise/recover transition
    with its trigger, plus the per-task degraded-release census.
"""

import heapq

__all__ = [
    "DIGEST_EXACT",
    "InversionDetector",
    "LatencyAnalyzer",
    "LatencyDigest",
    "MissSummary",
    "ModeTracker",
    "WorstCaseTracker",
]

from repro.obs.spans import SpanAnalyzer

#: values below this are bucketed exactly (one bucket per integer)
DIGEST_EXACT = 64
_SUB_BITS = 6  # log2(DIGEST_EXACT): sub-bucket resolution above EXACT


def _bucket(value):
    """Bucket index of a non-negative integer value."""
    if value < DIGEST_EXACT:
        return value
    shift = value.bit_length() - 1 - _SUB_BITS
    return (shift << _SUB_BITS) + (value >> shift)


def _bucket_floor(index):
    """Smallest value mapping to bucket ``index`` (its representative)."""
    if index < 2 * DIGEST_EXACT:  # shift 0: still exact
        return index
    shift = (index >> _SUB_BITS) - 1
    return (DIGEST_EXACT + (index & (DIGEST_EXACT - 1))) << shift


class LatencyDigest:
    """Deterministic, mergeable integer quantile digest.

    ``observe`` is O(1); memory is bounded by the number of distinct
    buckets (≤ 64 + 64·log2(max)). Quantiles return the floor of the
    containing bucket — exact for values < 64, within 1.6 % above.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = {}

    def observe(self, value):
        value = int(value)
        if value < 0:
            raise ValueError(f"negative latency sample: {value}")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = _bucket(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def quantile(self, q):
        """Value at quantile ``q`` in [0, 1] (None while empty)."""
        if not self.count:
            return None
        rank = max(1, -(-int(q * self.count * 1_000_000) // 1_000_000))
        rank = min(rank, self.count)
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(_bucket_floor(index), self.max)
        return self.max

    def merge(self, other):
        """Fold ``other`` (a digest or its ``as_dict`` form) into self."""
        if isinstance(other, dict):
            fresh = self.from_dict(other)
            return self.merge(fresh)
        if not other.count:
            return self
        self.count += other.count
        self.total += other.total
        if self.min is None or other.min < self.min:
            self.min = other.min
        if self.max is None or other.max > self.max:
            self.max = other.max
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        return self

    def as_dict(self):
        """JSON-ready form (bucket keys stringified, sorted)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_dict(cls, obj):
        digest = cls()
        digest.count = obj["count"]
        digest.total = obj["total"]
        digest.min = obj["min"]
        digest.max = obj["max"]
        digest.buckets = {int(k): v for k, v in obj["buckets"].items()}
        return digest

    def percentiles(self):
        """Report-ready summary: count/mean/p50/p95/p99/max.

        The mean is rounded to 3 decimals so the JSON form is stable
        across platforms; every other field is an exact integer.
        """
        if not self.count:
            return {"count": 0, "mean": None, "p50": None, "p95": None,
                    "p99": None, "max": None}
        return {
            "count": self.count,
            "mean": round(self.total / self.count, 3),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
        }


class LatencyAnalyzer(SpanAnalyzer):
    """Per-task response / scheduling-latency / blocking-time digests."""

    def __init__(self):
        self.response = {}
        self.sched_latency = {}
        self.blocking = {}

    def _digest(self, table, task):
        digest = table.get(task)
        if digest is None:
            digest = table[task] = LatencyDigest()
        return digest

    def on_job(self, job):
        if job.response is not None and job.outcome == "complete":
            self._digest(self.response, job.task).observe(job.response)
        if job.sched_latency is not None:
            self._digest(self.sched_latency, job.task).observe(
                job.sched_latency)

    def on_block(self, block):
        if block.duration is not None:
            self._digest(self.blocking, block.task).observe(block.duration)

    def as_dict(self):
        """Mergeable per-task digest dump (see :meth:`merge_dicts`)."""
        return {
            "response": {t: d.as_dict()
                         for t, d in sorted(self.response.items())},
            "sched_latency": {t: d.as_dict()
                              for t, d in sorted(self.sched_latency.items())},
            "blocking": {t: d.as_dict()
                         for t, d in sorted(self.blocking.items())},
        }

    def summary(self):
        """Percentile summary per task (the report's latency table)."""
        return {
            kind: {task: digest.percentiles()
                   for task, digest in sorted(table.items())}
            for kind, table in (
                ("response", self.response),
                ("sched_latency", self.sched_latency),
                ("blocking", self.blocking),
            )
        }

    @staticmethod
    def merge_dicts(dumps):
        """Merge ``as_dict`` dumps from many runs into one dump.

        Associative and order-insensitive: campaign aggregation calls
        this over whatever run order the farm produced and the result
        is byte-identical.
        """
        merged = {}
        for dump in dumps:
            for kind, table in dump.items():
                out = merged.setdefault(kind, {})
                for task, obj in table.items():
                    if task in out:
                        out[task].merge(obj)
                    else:
                        out[task] = LatencyDigest.from_dict(obj)
        return {
            kind: {task: digest.as_dict()
                   for task, digest in sorted(table.items())}
            for kind, table in sorted(merged.items())
        }

    @staticmethod
    def summarize_dump(dump):
        """Percentile summary of an ``as_dict`` / ``merge_dicts`` dump."""
        return {
            kind: {
                task: LatencyDigest.from_dict(obj).percentiles()
                for task, obj in sorted(table.items())
            }
            for kind, table in sorted(dump.items())
        }


class InversionDetector(SpanAnalyzer):
    """Priority-inversion incidents and top blocking chains.

    Needs task priorities, i.e. an armed span-source stream
    (``RTOSModel.trace_spans(True)``); on an unarmed stream it still
    collects blocking chains but cannot classify inversions.

    An *incident* is a block span of task ``T`` whose wake edge came
    from a task ``H`` with lower urgency (numerically larger priority)
    — ``H`` held the resource ``T`` waited for. Tasks with priorities
    strictly between that executed during the block window are the
    *inverting* tasks: they delayed ``H``'s release of the resource,
    making the inversion unbounded. The incident names them with their
    accumulated execution time inside the window.
    """

    def __init__(self, top=10, min_duration=1):
        self.top = top
        self.min_duration = min_duration
        self.priority = {}
        self.incidents = []
        self._open = {}     # task -> {"start", "runners": {name: time}}
        self._chains = []   # bounded heap of (duration, ...) entries
        self._seq = 0

    def on_meta(self, task, meta):
        if "priority" in meta:
            self.priority[task] = meta["priority"]

    def on_block_open(self, task, start, reason, events):
        self._open[task] = {"start": start, "runners": {}}

    def on_exec(self, actor, start, end):
        for task, window in self._open.items():
            if task == actor:
                continue
            overlap = end - max(start, window["start"])
            if overlap > 0:
                runners = window["runners"]
                runners[actor] = runners.get(actor, 0) + overlap

    def on_block(self, block):
        window = self._open.pop(block.task, None)
        if block.duration is None or block.duration < self.min_duration:
            return
        self._note_chain(block)
        edge = block.edge
        if edge is None or edge.kind != "notify":
            return
        blocked_prio = self.priority.get(block.task)
        holder_prio = self.priority.get(edge.source)
        if blocked_prio is None or holder_prio is None:
            return
        if holder_prio <= blocked_prio:
            return  # woken by an equally or more urgent task: no inversion
        runners = window["runners"] if window else {}
        inverters = {
            name: time for name, time in runners.items()
            if blocked_prio < self.priority.get(name, blocked_prio) < holder_prio
            and time > 0
        }
        if not inverters:
            return  # bounded (direct) blocking, not an inversion
        worst = max(inverters.items(), key=lambda item: (item[1], item[0]))
        self.incidents.append({
            "task": block.task,
            "holder": edge.source,
            "resource": edge.event,
            "start": block.start,
            "end": block.end,
            "duration": block.duration,
            "inverter": worst[0],
            "inverter_time": worst[1],
            "inverters": {name: inverters[name]
                          for name in sorted(inverters)},
        })

    def _note_chain(self, block):
        edge = block.edge
        entry = (
            block.duration, -block.start, block.task, self._seq,
            {
                "task": block.task,
                "start": block.start,
                "end": block.end,
                "duration": block.duration,
                "reason": block.reason,
                "events": list(block.events),
                "edge": edge.as_dict() if edge is not None else None,
            },
        )
        self._seq += 1
        if len(self._chains) < self.top:
            heapq.heappush(self._chains, entry)
        else:
            heapq.heappushpop(self._chains, entry)

    def chains(self):
        """Top blocking chains, longest first (deterministic order)."""
        ordered = sorted(self._chains,
                         key=lambda e: (-e[0], -e[1], e[2], e[3]))
        return [entry[4] for entry in ordered]

    def as_dict(self):
        return {
            "incidents": self.incidents,
            "chains": self.chains(),
        }


class WorstCaseTracker(SpanAnalyzer):
    """Max-response witness per task: the exact chain behind the worst
    job (first occurrence wins ties, so the result is deterministic)."""

    def __init__(self):
        self.worst = {}

    def on_job(self, job):
        if job.response is None:
            return
        best = self.worst.get(job.task)
        if best is None or job.response > best["response"]:
            self.worst[job.task] = job.as_dict()

    def as_dict(self):
        return {task: self.worst[task] for task in sorted(self.worst)}


class MissSummary(SpanAnalyzer):
    """Per-task job outcome census."""

    def __init__(self):
        self.tasks = {}

    def _row(self, task):
        row = self.tasks.get(task)
        if row is None:
            row = self.tasks[task] = {
                "jobs": 0, "completed": 0, "missed": 0, "killed": 0,
                "open": 0, "skipped_cycles": 0,
            }
        return row

    def on_job(self, job):
        row = self._row(job.task)
        row["jobs"] += 1
        if job.outcome == "complete":
            row["completed"] += 1
        elif job.outcome == "killed":
            row["killed"] += 1
        else:
            row["open"] += 1
        if job.missed:
            row["missed"] += 1

    def on_fault(self, task, kind, time, data):
        if kind == "skip_cycle":
            self._row(task)["skipped_cycles"] += data.get("skipped", 1)

    def as_dict(self):
        rows = {task: dict(self.tasks[task]) for task in sorted(self.tasks)}
        totals = {
            key: sum(row[key] for row in rows.values())
            for key in ("jobs", "completed", "missed", "killed", "open",
                        "skipped_cycles")
        }
        return {"tasks": rows, "totals": totals}


class ModeTracker(SpanAnalyzer):
    """Mixed-criticality mode history from ``mode`` trace records.

    Collects every raise/recover transition (time, direction, new
    level, previous level, triggering task) plus a per-task census of
    degraded releases. Empty on MC-unarmed runs — the text report then
    skips the section.
    """

    def __init__(self):
        self.transitions = []
        self.degraded = {}

    def on_mode(self, actor, kind, time, data):
        if kind in ("raise", "recover"):
            self.transitions.append({
                "time": time,
                "kind": kind,
                "level": data.get("level"),
                "prev": data.get("prev"),
                "trigger": data.get("trigger"),
            })
        elif kind == "degrade":
            row = self.degraded.setdefault(
                actor, {"releases": 0, "policy": data.get("policy")}
            )
            row["releases"] += 1

    def as_dict(self):
        return {
            "raises": sum(
                1 for t in self.transitions if t["kind"] == "raise"
            ),
            "recoveries": sum(
                1 for t in self.transitions if t["kind"] == "recover"
            ),
            "transitions": list(self.transitions),
            "degraded": {
                task: dict(self.degraded[task])
                for task in sorted(self.degraded)
            },
        }
