"""Metrics registry: counters, gauges and histograms by name.

:class:`~repro.rtos.metrics.RTOSMetrics` is a fixed slot struct — the
Table-1 numbers. This module is the *open* half of the metrics story:
any layer (RTOS services, channels, platform models, applications)
registers instruments by name in a :class:`MetricsRegistry` and bumps
them on the fly; ``snapshot()``/``as_dict()`` exports everything as one
JSON-friendly dict, and :func:`MetricsRegistry.aggregate` merges the
snapshots of many runs (the farm's cross-sweep aggregation).

Instruments are deliberately tiny (``__slots__``, no locks, no labels):
simulations are single-threaded per process, and a disabled
instrumentation path must stay one ``is None`` check away from free.

Histogram buckets are a fixed 1-2-5 geometric ladder by default, wide
enough for simulated-time latencies from 1 time unit up to ~10^12.
"""

from bisect import bisect_left

#: default histogram upper bounds: 1, 2, 5, 10, 20, 50, ... 5e12
DEFAULT_BOUNDS = tuple(
    m * 10 ** e for e in range(13) for m in (1, 2, 5)
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0

    def as_dict(self):
        return {"kind": "counter", "value": self.value}

    def __repr__(self):
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Last-written value, with min/max/sample bookkeeping."""

    kind = "gauge"
    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name):
        self.name = name
        self.reset()

    def set(self, value):
        self.value = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def reset(self):
        self.value = None
        self.min = None
        self.max = None
        self.samples = 0

    def as_dict(self):
        return {
            "kind": "gauge",
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }

    def __repr__(self):
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max.

    ``bounds`` are inclusive upper bounds; one overflow bucket catches
    everything above the last bound. ``observe`` is O(log n_buckets).
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name, bounds=None):
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        self.reset()

    def observe(self, value):
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def reset(self):
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    @property
    def mean(self):
        return self.total / self.count if self.count else None

    def as_dict(self):
        """JSON-friendly export; empty buckets are omitted.

        ``buckets`` maps the upper bound (stringified for JSON) to the
        count; the overflow bucket is keyed ``"inf"``.
        """
        buckets = {}
        for i, n in enumerate(self.counts):
            if n:
                key = "inf" if i == len(self.bounds) else str(self.bounds[i])
                buckets[key] = n
        return {
            "kind": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }

    def __repr__(self):
        return (
            f"Histogram({self.name!r}, count={self.count}, mean={self.mean})"
        )


class MetricsRegistry:
    """Named instruments with get-or-create registration.

    ``registry.counter("os.dispatches")`` returns the existing counter of
    that name or creates it; asking for the same name with a different
    instrument kind raises. Iteration order is registration order.
    """

    def __init__(self):
        self._metrics = {}

    def _get_or_create(self, name, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, *args)
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name):
        return self._get_or_create(name, Counter)

    def gauge(self, name):
        return self._get_or_create(name, Gauge)

    def histogram(self, name, bounds=None):
        if bounds is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, bounds)

    def get(self, name):
        return self._metrics.get(name)

    def names(self):
        return list(self._metrics)

    def __contains__(self, name):
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self):
        return len(self._metrics)

    def reset(self):
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self):
        """All instruments as one ``{name: metric.as_dict()}`` dict."""
        return {name: m.as_dict() for name, m in self._metrics.items()}

    as_dict = snapshot

    @staticmethod
    def aggregate(snapshots):
        """Merge many ``snapshot()`` dicts (one per run) into one.

        Counters sum; gauges keep min-of-mins / max-of-maxes and sum
        sample counts (``value`` becomes the mean of per-run last
        values); histograms sum counts/totals bucket-wise. Every merged
        entry carries ``runs`` — the number of snapshots the metric
        appeared in — so partial coverage across a sweep stays visible.
        """
        merged = {}
        gauge_values = {}
        for snap in snapshots:
            for name, data in snap.items():
                kind = data.get("kind")
                out = merged.get(name)
                if out is None:
                    out = merged[name] = {"kind": kind, "runs": 0}
                    if kind == "counter":
                        out["value"] = 0
                    elif kind == "gauge":
                        out.update(min=None, max=None, samples=0)
                        gauge_values[name] = []
                    elif kind == "histogram":
                        out.update(
                            count=0, total=0, min=None, max=None, buckets={}
                        )
                elif out["kind"] != kind:
                    raise ValueError(
                        f"metric {name!r} changes kind across runs"
                    )
                out["runs"] += 1
                if kind == "counter":
                    out["value"] += data["value"]
                elif kind == "gauge":
                    out["min"] = _merge_min(out["min"], data.get("min"))
                    out["max"] = _merge_max(out["max"], data.get("max"))
                    out["samples"] += data.get("samples", 0)
                    if data.get("value") is not None:
                        gauge_values[name].append(data["value"])
                elif kind == "histogram":
                    out["count"] += data["count"]
                    out["total"] += data["total"]
                    out["min"] = _merge_min(out["min"], data.get("min"))
                    out["max"] = _merge_max(out["max"], data.get("max"))
                    buckets = out["buckets"]
                    for key, n in data.get("buckets", {}).items():
                        buckets[key] = buckets.get(key, 0) + n
        for name, values in gauge_values.items():
            merged[name]["value"] = (
                sum(values) / len(values) if values else None
            )
        for data in merged.values():
            if data["kind"] == "histogram":
                data["mean"] = (
                    data["total"] / data["count"] if data["count"] else None
                )
        return merged


def _merge_min(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _merge_max(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)
