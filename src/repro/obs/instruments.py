"""Pre-bound instrument bundles for the hot layers.

The RTOS services and the channel library are instrumented through small
bundle objects created once per model/channel from a
:class:`~repro.obs.metrics.MetricsRegistry`. The call sites guard with a
single ``if obs is not None`` so the disabled path (the default — no
registry attached) costs one attribute load and a pointer compare.

Metric name scheme::

    <os-name>.ready_depth              gauge, sampled at each dispatch
    <os-name>.event_wait_latency      histogram, wait -> wake sim-time
    <os-name>.time_wait_calls         counter
    <os-name>.time_wait_delay         histogram of requested delays
    <os-name>.response_time.<task>    histogram per task
    <os-name>.component_budget.<c>    gauge, window consumption per server
    <os-name>.component_throttles.<c> counter, budget-exhaustion suspends
    chan.<name>.occupancy             gauge (queue/mailbox fill level)
    chan.<name>.sent / .received      counters
    chan.<name>.tokens                gauge (semaphore count)
    chan.<name>.contended             counter (blocked acquires)
    chan.<name>.transfers             counter (handshake rendezvous)
"""


class RTOSObs:
    """Instruments of one RTOS model (one PE)."""

    __slots__ = (
        "registry",
        "prefix",
        "ready_depth",
        "wait_latency",
        "time_wait_calls",
        "time_wait_delay",
        "_response",
        "_component_budget",
        "_component_throttles",
    )

    def __init__(self, registry, prefix):
        self.registry = registry
        self.prefix = prefix
        self.ready_depth = registry.gauge(f"{prefix}.ready_depth")
        self.wait_latency = registry.histogram(f"{prefix}.event_wait_latency")
        self.time_wait_calls = registry.counter(f"{prefix}.time_wait_calls")
        self.time_wait_delay = registry.histogram(f"{prefix}.time_wait_delay")
        self._response = {}
        self._component_budget = {}
        self._component_throttles = {}

    def response(self, task_name):
        """Per-task response-time histogram (created lazily)."""
        hist = self._response.get(task_name)
        if hist is None:
            hist = self._response[task_name] = self.registry.histogram(
                f"{self.prefix}.response_time.{task_name}"
            )
        return hist

    def component_budget(self, comp_name):
        """Per-component budget-consumption gauge (created lazily)."""
        gauge = self._component_budget.get(comp_name)
        if gauge is None:
            gauge = self._component_budget[comp_name] = self.registry.gauge(
                f"{self.prefix}.component_budget.{comp_name}"
            )
        return gauge

    def component_throttles(self, comp_name):
        """Per-component throttle counter (created lazily)."""
        counter = self._component_throttles.get(comp_name)
        if counter is None:
            counter = self._component_throttles[comp_name] = (
                self.registry.counter(
                    f"{self.prefix}.component_throttles.{comp_name}"
                )
            )
        return counter


class QueueObs:
    """Occupancy + throughput instruments of one buffered channel."""

    __slots__ = ("occupancy", "sent", "received")

    def __init__(self, registry, name):
        self.occupancy = registry.gauge(f"chan.{name}.occupancy")
        self.sent = registry.counter(f"chan.{name}.sent")
        self.received = registry.counter(f"chan.{name}.received")


class SemaphoreObs:
    """Token-level + contention instruments of one semaphore."""

    __slots__ = ("tokens", "contended")

    def __init__(self, registry, name):
        self.tokens = registry.gauge(f"chan.{name}.tokens")
        self.contended = registry.counter(f"chan.{name}.contended")


class HandshakeObs:
    """Rendezvous counter of one handshake channel."""

    __slots__ = ("transfers",)

    def __init__(self, registry, name):
        self.transfers = registry.counter(f"chan.{name}.transfers")
