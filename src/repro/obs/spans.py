"""Causal span reconstruction over the trace-record stream.

The trace layer records *events*; the questions a designer asks are
about *intervals and causality* — how long did this job take from
release to completion, who ended that block, which task ran while a
more urgent one waited. :class:`SpanBuilder` turns the flat record
stream into two span kinds, **streaming** (it is a
:class:`~repro.kernel.trace.TraceSink`, so it works as a live sink, as
a :class:`~repro.obs.sinks.TeeSink` branch, or offline over a reloaded
JSONL/ring window) and in **O(1) memory** — at most one open job and
one open block per task, never the whole trace:

:class:`JobSpan`
    one release → completion cycle of a task: response time,
    scheduling latency, execution time, preemption count, blocked
    time, outcome (``complete`` / ``killed`` / ``open``) and a bounded
    causal chain of the scheduling decisions inside the job (the
    worst-case *witness*).
:class:`BlockSpan`
    one blocking interval (event wait, join, par, sleep) annotated
    with the :class:`WakeEdge` that ended it — which notify (and from
    whom: task, ``isr:<process>``, kernel), timeout, join, activation
    or kill/watchdog edge made the task runnable again.

Span *sources*: the builder reconstructs spans from any trace, but the
plain record stream leaves two things ambiguous — cycle completion (no
``endcycle`` record) and the notifier's identity (``notify`` names the
OS, not the waker). ``RTOSModel.trace_spans(True)`` arms the span
sources in the OS services: armed, ``task_endcycle`` records a
completion edge, overrun releases are recorded, ``task_create``
carries the static task parameters (priority/period/wcet — what the
inversion detector needs), and ``notify`` names its source. Unarmed
(the default) no extra record is emitted and golden traces stay
byte-identical; on an unarmed stream the builder degrades gracefully
(completion is inferred from the last execution segment before the
next release, wake sources fall back to the running task).

Analyzers (:mod:`repro.obs.analyzers`) subscribe to the span stream
via the hook protocol of :class:`SpanAnalyzer`.
"""

from dataclasses import dataclass

from repro.kernel.trace import TraceSink

__all__ = [
    "BlockSpan",
    "JobSpan",
    "SpanAnalyzer",
    "SpanBuilder",
    "WakeEdge",
    "build_spans",
]

#: cap on causal-chain entries kept per job (the witness stays bounded)
CHAIN_LIMIT = 64


@dataclass(frozen=True, slots=True)
class WakeEdge:
    """The causal edge that ended a block: who made the task runnable."""

    kind: str     #: notify | timeout | join | activate | par | kill | watchdog | fault
    source: str   #: waking actor: task, ``isr:<proc>``, ``watchdog:<why>``, ""
    event: str    #: event (or ``task:<name>`` join target) that woke the task
    time: int     #: instant the task became ready again

    def as_dict(self):
        return {"kind": self.kind, "source": self.source,
                "event": self.event, "time": self.time}


@dataclass(slots=True)
class BlockSpan:
    """One blocking interval of a task, with its causal wake edge."""

    task: str
    start: int
    end: int          #: instant the block ended (ready again); None if open
    resumed: object   #: instant the task got the CPU back (None if never)
    reason: str       #: wait | wait_any | join | par | sleep
    events: tuple     #: event names waited on (``task:<name>`` for joins)
    edge: object      #: WakeEdge, or None for a still-open block

    @property
    def duration(self):
        return None if self.end is None else self.end - self.start

    def as_dict(self):
        return {
            "task": self.task, "start": self.start, "end": self.end,
            "resumed": self.resumed, "reason": self.reason,
            "events": list(self.events), "duration": self.duration,
            "edge": self.edge.as_dict() if self.edge is not None else None,
        }


@dataclass(slots=True)
class JobSpan:
    """One release → completion cycle of a task."""

    task: str
    release: int
    first_dispatch: object  #: first CPU grant (None if never dispatched)
    end: object             #: completion instant (None while open)
    outcome: str            #: complete | killed | open
    missed: bool
    exec_time: int
    segments: int
    preemptions: int
    blocked_time: int
    chain: tuple            #: bounded causal chain (witness)
    chain_dropped: int      #: entries beyond CHAIN_LIMIT that were dropped
    mode: object = None     #: criticality mode at release (None: MC unarmed)

    @property
    def response(self):
        return None if self.end is None else self.end - self.release

    @property
    def sched_latency(self):
        if self.first_dispatch is None:
            return None
        return self.first_dispatch - self.release

    def as_dict(self):
        return {
            "task": self.task, "release": self.release,
            "first_dispatch": self.first_dispatch, "end": self.end,
            "outcome": self.outcome, "missed": self.missed,
            "response": self.response, "sched_latency": self.sched_latency,
            "exec_time": self.exec_time, "segments": self.segments,
            "preemptions": self.preemptions,
            "blocked_time": self.blocked_time,
            "chain": [list(entry) for entry in self.chain],
            "chain_dropped": self.chain_dropped,
            "mode": self.mode,
        }


class SpanAnalyzer:
    """Base class / hook protocol for online span consumers.

    :class:`SpanBuilder` calls these as the stream unfolds; every hook
    is a no-op by default so analyzers override only what they need.
    """

    def on_meta(self, task, meta):
        """Task registered (``meta`` has priority/period/wcet if armed)."""

    def on_job(self, job):
        """A :class:`JobSpan` closed."""

    def on_block_open(self, task, start, reason, events):
        """A block span opened (the task just gave up the CPU)."""

    def on_block(self, block):
        """A :class:`BlockSpan` closed (wake edge known; ``resumed``
        may still be None when the task was killed before re-dispatch)."""

    def on_exec(self, actor, start, end):
        """A task execution segment was recorded."""

    def on_fault(self, task, kind, time, data):
        """A fault-category record (watchdog flag or injected fault)."""

    def on_mode(self, actor, kind, time, data):
        """A mode-category record (criticality raise/recover/degrade)."""

    def on_finish(self, now):
        """End of stream (after still-open spans were flushed)."""


class _TaskState:
    """Per-task reconstruction state (bounded: one open job/block)."""

    __slots__ = ("name", "meta", "job", "block", "last_exec_end", "dead")

    def __init__(self, name):
        self.name = name
        self.meta = {}
        self.job = None        # open JobSpan
        self.block = None      # open BlockSpan (edge None until woken)
        self.last_exec_end = None
        self.dead = False


class SpanBuilder(TraceSink):
    """Streaming span reconstruction; usable directly as a trace sink.

    Parameters
    ----------
    analyzers:
        :class:`SpanAnalyzer` instances fed as spans close.
    keep:
        Retain closed spans on ``self.jobs`` / ``self.blocks`` (handy
        for tests and exporters; defeats the O(1)-memory property).
    chain_limit:
        Causal-chain entries kept per job before dropping.
    """

    def __init__(self, *analyzers, keep=False, chain_limit=CHAIN_LIMIT):
        self.analyzers = analyzers
        self.keep = keep
        self.chain_limit = chain_limit
        self.jobs = []
        self.blocks = []
        self._tasks = {}       # name -> _TaskState
        self._running = {}     # os actor -> running task name (or None)
        self._task_os = {}     # task name -> os actor
        self._enrolled = {}    # event name -> set of blocked task names
        self._attrib = {}      # task name -> (time, kind, source) kill cause
        self._mode = None      # current criticality mode (None: MC unarmed)
        self._emitted = 0
        self._finished = False

    # -- TraceSink protocol ------------------------------------------------

    @property
    def emitted(self):
        return self._emitted

    def clear(self):
        self.__init__(*self.analyzers, keep=self.keep,
                      chain_limit=self.chain_limit)

    def close(self):
        self.finish()

    # -- stream consumption ------------------------------------------------

    def emit(self, record):
        self._emitted += 1
        category = record.category
        if category == "task":
            self._on_task(record)
        elif category == "sched":
            self._on_sched(record)
        elif category == "exec":
            self._on_exec(record)
        elif category == "fault":
            self._on_fault(record)
        elif category == "mode":
            self._on_mode(record)
        # irq/chan/user records carry no span structure

    def finish(self, now=None):
        """Flush still-open spans (end of stream / crashed run)."""
        if self._finished:
            return self
        self._finished = True
        for name in sorted(self._tasks):
            state = self._tasks[name]
            if state.block is not None:
                self._close_block(state, end=state.block.end, edge=state.block.edge)
            if state.job is not None:
                job = state.job
                state.job = None
                job.outcome = "open"
                self._publish_job(job)
        for analyzer in self.analyzers:
            analyzer.on_finish(now)
        return self

    # -- task records ------------------------------------------------------

    def _on_task(self, record):
        info = record.info
        handler = self._TASK_HANDLERS.get(info)
        if handler is not None:
            handler(self, record)

    def _task(self, name):
        state = self._tasks.get(name)
        if state is None:
            state = self._tasks[name] = _TaskState(name)
            for analyzer in self.analyzers:
                analyzer.on_meta(name, state.meta)
        return state

    def _h_create(self, record):
        state = self._tasks.get(record.actor)
        if state is None:
            state = self._tasks[record.actor] = _TaskState(record.actor)
        if record.data:
            state.meta.update(record.data)
        for analyzer in self.analyzers:
            analyzer.on_meta(record.actor, state.meta)

    def _h_activate(self, record):
        state = self._task(record.actor)
        state.dead = False
        if state.block is not None and state.block.reason == "sleep":
            self._close_block(state, end=record.time, edge=WakeEdge(
                "activate", self._current_source(), "", record.time))
        if state.job is not None:
            # aperiodic reactivation without an armed endcycle record:
            # the previous job completed at its last execution segment
            self._infer_close_job(state, fallback=record.time)
        self._open_job(state, record.time)

    def _h_release(self, record):
        state = self._task(record.actor)
        if state.job is not None:
            self._infer_close_job(state, fallback=record.time)
        # the armed overrun release carries the true release instant
        self._open_job(state, record.data.get("at", record.time))

    def _h_endcycle(self, record):
        state = self._task(record.actor)
        job = state.job
        if job is None:
            job = self._new_job(state, record.data.get("release", record.time))
        state.job = None
        job.end = record.time
        job.outcome = "complete"
        self._publish_job(job)

    def _h_deadline_miss(self, record):
        state = self._task(record.actor)
        if state.job is not None:
            state.job.missed = True

    def _h_sleep(self, record):
        state = self._task(record.actor)
        self._open_block(state, record.time, "sleep", ())

    def _h_terminate(self, record):
        state = self._task(record.actor)
        state.dead = True
        if state.job is not None:
            job = state.job
            state.job = None
            job.end = record.time
            job.outcome = "complete"
            self._publish_job(job)
        self._wake_joiners(record.actor, record.time)

    def _h_kill(self, record):
        state = self._task(record.actor)
        # the victim stops waiting the instant it is condemned
        when, kind, source = self._attrib.pop(
            record.actor, (record.time, "kill", self._current_source()))
        if when != record.time:
            kind, source = "kill", self._current_source()
        if state.block is not None:
            self._close_block(state, end=record.time,
                              edge=WakeEdge(kind, source, "", record.time))
        state.meta.setdefault("killed_by", source or kind)

    def _h_killed(self, record):
        state = self._task(record.actor)
        state.dead = True
        if state.block is not None:
            self._close_block(state, end=record.time, edge=WakeEdge(
                "kill", state.meta.get("killed_by", ""), "", record.time))
        if state.job is not None:
            job = state.job
            state.job = None
            job.end = record.time
            job.outcome = "killed"
            self._publish_job(job)
        self._wake_joiners(record.actor, record.time)

    def _h_wait(self, record):
        state = self._task(record.actor)
        event = record.data.get("event", "")
        self._enrolled.setdefault(event, set()).add(record.actor)
        self._open_block(state, record.time, "wait", (event,))

    def _h_wait_any(self, record):
        state = self._task(record.actor)
        events = tuple(record.data.get("events", ()))
        for event in events:
            self._enrolled.setdefault(event, set()).add(record.actor)
        self._open_block(state, record.time, "wait_any", events)

    def _h_timeout(self, record):
        state = self._task(record.actor)
        self._unenroll(record.actor)
        if state.block is not None:
            self._close_block(state, end=record.time,
                              edge=WakeEdge("timeout", "", "", record.time))

    def _h_join(self, record):
        state = self._task(record.actor)
        target = "task:" + record.data.get("on", "")
        self._enrolled.setdefault(target, set()).add(record.actor)
        self._open_block(state, record.time, "join", (target,))

    def _h_par_start(self, record):
        state = self._task(record.actor)
        self._open_block(state, record.time, "par", ())

    def _h_par_end(self, record):
        state = self._task(record.actor)
        if state.block is not None and state.block.reason == "par":
            self._close_block(state, end=record.time,
                              edge=WakeEdge("par", "", "", record.time))

    def _h_fork(self, record):
        state = self._task(record.actor)
        if state.job is not None:
            self._chain(state.job, ("fork", record.time,
                                    record.data.get("child", "")))

    def _h_notify(self, record):
        # actor is the OS/model name; woken waiters leave their queues
        event = record.data.get("event", "")
        if not record.data.get("woken"):
            return
        source = record.data.get("src")
        if source is None:
            # unarmed stream: the notifier still holds the CPU here
            source = self._running.get(record.actor) or ""
        edge = WakeEdge("notify", source, event, record.time)
        for name in sorted(self._enrolled.pop(event, ())):
            state = self._tasks.get(name)
            if state is None:
                continue
            self._unenroll(name, keep=event)
            if state.block is not None:
                self._close_block(state, end=record.time, edge=edge)

    _TASK_HANDLERS = {
        "create": _h_create,
        "activate": _h_activate,
        "release": _h_release,
        "endcycle": _h_endcycle,
        "deadline_miss": _h_deadline_miss,
        "sleep": _h_sleep,
        "terminate": _h_terminate,
        "kill": _h_kill,
        "killed": _h_killed,
        "wait": _h_wait,
        "wait_any": _h_wait_any,
        "timeout": _h_timeout,
        "join": _h_join,
        "par_start": _h_par_start,
        "par_end": _h_par_end,
        "fork": _h_fork,
        "notify": _h_notify,
    }

    # -- sched / exec / fault records --------------------------------------

    def _on_sched(self, record):
        info = record.info
        if info == "dispatch":
            name = record.data.get("task", "")
            self._running[record.actor] = name
            self._task_os[name] = record.actor
            state = self._tasks.get(name)
            if state is None:
                return
            job = state.job
            if job is not None:
                if job.first_dispatch is None:
                    job.first_dispatch = record.time
                self._chain(job, ("dispatch", record.time))
            block = state.block
            if block is not None and block.edge is not None:
                # woken earlier; the CPU grant completes the span
                block.resumed = record.time
                self._flush_block(state)
        elif info == "preempt":
            name = record.data.get("task", "")
            state = self._tasks.get(name)
            if state is not None and state.job is not None:
                state.job.preemptions += 1
                self._chain(state.job, ("preempt", record.time,
                                        record.data.get("by", "")))

    def _on_exec(self, record):
        name = record.actor
        state = self._tasks.get(name)
        if state is None:
            return
        start = record.data.get("start", record.time)
        end = record.data.get("end", record.time)
        state.last_exec_end = end
        job = state.job
        if job is not None:
            job.exec_time += end - start
            job.segments += 1
        os_actor = self._task_os.get(name)
        if os_actor is not None and self._running.get(os_actor) == name:
            self._running[os_actor] = None
        for analyzer in self.analyzers:
            analyzer.on_exec(name, start, end)

    def _on_fault(self, record):
        name = record.actor
        info = record.info
        state = self._tasks.get(name)
        if info in ("deadline_miss", "budget_overrun"):
            if state is not None and state.job is not None:
                state.job.missed = True
            if record.data.get("policy") == "kill":
                self._attrib[name] = (
                    record.time, "watchdog", f"watchdog:{info}")
        elif info in ("task_crash", "task_hang"):
            self._attrib[name] = (record.time, "fault", f"fault:{info}")
        for analyzer in self.analyzers:
            analyzer.on_fault(name, info, record.time, record.data)

    def _on_mode(self, record):
        info = record.info
        if info in ("raise", "recover"):
            # jobs released from here on carry the new criticality mode
            self._mode = record.data.get("level")
        for analyzer in self.analyzers:
            analyzer.on_mode(record.actor, info, record.time, record.data)

    # -- span bookkeeping --------------------------------------------------

    def _new_job(self, state, release):
        return JobSpan(
            task=state.name, release=release, first_dispatch=None,
            end=None, outcome="open", missed=False, exec_time=0,
            segments=0, preemptions=0, blocked_time=0, chain=(),
            chain_dropped=0, mode=self._mode,
        )

    def _open_job(self, state, release):
        state.job = self._new_job(state, release)

    def _infer_close_job(self, state, fallback):
        """Close an open job on an unarmed stream: completion is the
        last execution segment before the next release."""
        job = state.job
        state.job = None
        end = state.last_exec_end
        job.end = end if end is not None and end >= job.release else fallback
        job.outcome = "complete"
        self._publish_job(job)

    def _publish_job(self, job):
        job.chain = tuple(job.chain)
        if self.keep:
            self.jobs.append(job)
        for analyzer in self.analyzers:
            analyzer.on_job(job)

    def _chain(self, job, entry):
        if len(job.chain) >= self.chain_limit:
            job.chain_dropped += 1
            return
        if not isinstance(job.chain, list):
            job.chain = list(job.chain)
        job.chain.append(entry)

    def _open_block(self, state, start, reason, events):
        if state.block is not None:
            # overlapping block (stream truncation): flush what we have
            self._flush_block(state)
        state.block = BlockSpan(
            task=state.name, start=start, end=None, resumed=None,
            reason=reason, events=events, edge=None,
        )
        for analyzer in self.analyzers:
            analyzer.on_block_open(state.name, start, reason, events)

    def _close_block(self, state, end, edge):
        """Mark the open block woken; it is flushed on re-dispatch (so
        ``resumed`` is known) or immediately when the task is dead."""
        block = state.block
        if block.edge is not None:
            # already woken, waiting for its re-dispatch (e.g. killed
            # between wake and CPU grant): flush as-is, don't re-close
            self._flush_block(state)
            return
        block.end = end
        block.edge = edge
        if state.job is not None and end is not None:
            state.job.blocked_time += end - block.start
            self._chain(state.job, (
                "block", block.start, end, block.reason,
                edge.kind if edge is not None else "",
                edge.source if edge is not None else "",
            ))
        if edge is None or edge.kind in ("kill", "watchdog", "fault"):
            self._flush_block(state)

    def _flush_block(self, state):
        block = state.block
        state.block = None
        if block is None:
            return
        if self.keep:
            self.blocks.append(block)
        for analyzer in self.analyzers:
            analyzer.on_block(block)

    def _wake_joiners(self, target, time):
        """A terminating task readies everyone joined on it (the task
        manager wakes joiners directly, without a notify record)."""
        key = "task:" + target
        edge = WakeEdge("join", target, key, time)
        for name in sorted(self._enrolled.pop(key, ())):
            state = self._tasks.get(name)
            if state is None:
                continue
            self._unenroll(name, keep=key)
            if state.block is not None:
                self._close_block(state, end=time, edge=edge)

    def _unenroll(self, name, keep=None):
        """Drop ``name`` from every wait-set enrollment (multi-event
        waits enroll on all their events; one wake clears them all)."""
        for event, names in list(self._enrolled.items()):
            if event == keep:
                continue
            names.discard(name)
            if not names:
                del self._enrolled[event]

    def _current_source(self):
        """Best guess at 'who acted': some running task of any OS."""
        for actor in sorted(self._running):
            name = self._running[actor]
            if name:
                return name
        return ""

    # -- results -----------------------------------------------------------

    @property
    def tasks(self):
        """Reconstructed task metadata: ``{name: meta}``."""
        return {name: dict(state.meta) for name, state in self._tasks.items()}

    def open_jobs(self):
        return {name: state.job for name, state in self._tasks.items()
                if state.job is not None}


def build_spans(records, *analyzers, keep=True, chain_limit=CHAIN_LIMIT):
    """Offline span reconstruction: feed ``records`` (any iterable of
    :class:`~repro.kernel.trace.TraceRecord`, e.g. ``trace.records`` or
    :func:`~repro.obs.sinks.iter_jsonl`) through a fresh
    :class:`SpanBuilder` and return it finished."""
    builder = SpanBuilder(*analyzers, keep=keep, chain_limit=chain_limit)
    emit = builder.emit
    now = None
    for record in records:
        emit(record)
        now = record.time
    return builder.finish(now)
