"""RTOS-level failure detection: deadline watchdogs and execution budgets.

The :class:`FailureMonitor` is the detection counterpart of
:mod:`repro.faults.inject`: it watches tasks of one
:class:`~repro.rtos.model.RTOSModel` and reacts to two failure classes
*when they happen*, not after the fact:

* **deadline misses** — a kernel timer (the shared waitcore
  :class:`~repro.kernel.waitcore.TimerQueue`) armed at every release
  fires one tick after the task's absolute deadline; a task that has not
  completed its cycle by then missed. The lazy check in
  ``task_endcycle`` still runs for unwatched tasks, so unarmed behavior
  is unchanged, and :meth:`consume_miss` keeps eager + lazy detection
  from double-counting.
* **budget overruns** — an optional per-task execution budget; a timer
  armed at dispatch for the task's *remaining* budget and disarmed (with
  the consumed time accumulated) when it yields the CPU, i.e. a
  watchdog on accumulated execution time per cycle, robust to
  preemption.

Both failures apply the task's configured policy:

========== ==========================================================
``log``    count + trace only (the default)
``notify`` call the user handler ``handler(task, kind, now)``
``kill``   forcibly terminate the task (``TaskManager.condemn``)
``skip-cycle`` periodic tasks abandon overrun cycles: the next release
           skips forward past every deadline already blown
========== ==========================================================

Counters flow into ``RTOSMetrics`` (``deadline_misses``,
``budget_overruns``, ``policy_kills``, ``cycles_skipped``), the model's
obs registry when attached, and the trace (``"fault"`` records, visible
as instants in CTF/Perfetto export). Timer callbacks run at the start
of a timestep, before any process — arming at ``deadline + 1`` keeps a
cycle that completes exactly at its deadline from being flagged.
"""

from repro.rtos.errors import RTOSError
from repro.rtos.task import TaskState

#: reaction policies a watched task can be configured with
POLICIES = ("log", "notify", "kill", "skip-cycle")

#: task states that mean "this cycle is over / the task is gone" when a
#: deadline timer fires — anything else still owes work and has missed
_COMPLETED_STATES = (
    TaskState.NEW,
    TaskState.IDLE_PERIOD,
    TaskState.SLEEPING,
    TaskState.TERMINATED,
)


class FailureMonitor:
    """Watches tasks of one RTOS model (see module doc).

    Created lazily by :meth:`RTOSModel.task_watch`; unwatched models
    never allocate one and their hot paths see only ``monitor is None``
    guards.
    """

    def __init__(self, model):
        self.model = model
        self.sim = model.sim
        self.trace = model.trace
        self.metrics = model.metrics
        self._dispatcher = model._dispatcher
        #: task uid -> configured policy / handler / budget
        self.policies = {}
        self.handlers = {}
        self.budgets = {}
        #: task uid -> releases seen while the monitor was armed (the
        #: denominator for miss rates; counted for every task)
        self.releases = {}
        #: task uid -> execution time consumed in the current cycle
        self.budget_used = {}
        #: task uid -> eager detections while watched (snapshot fodder)
        self.miss_counts = {}
        self.overrun_counts = {}
        self._deadline_timers = {}
        self._deadline_at = {}
        self._budget_timers = {}
        #: task uid -> time the current cycle's budget charging starts
        #: from; diverges from ``task.run_start`` when a release happens
        #: mid-dispatch (back-to-back overrun cycles), so one dispatch
        #: span never charges across a cycle boundary
        self._charge_from = {}
        self._missed = set()
        self._overrun = set()
        self._skip = set()
        #: optional MC controller (repro.rtos.mc): budget overruns of
        #: registered tasks double as its mode-switch sensors
        self.mc = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def watch(self, task, policy="log", handler=None, budget=None):
        """Watch ``task`` with one reaction ``policy``.

        ``budget`` (optional) arms the execution-budget watchdog: more
        than ``budget`` time units of accumulated execution in one cycle
        is an overrun. ``handler`` is required by (and only used with)
        the ``notify`` policy.
        """
        if policy not in POLICIES:
            raise RTOSError(
                f"unknown watch policy {policy!r} (choose from {', '.join(POLICIES)})"
            )
        if policy == "notify" and handler is None:
            raise RTOSError("policy 'notify' needs a handler(task, kind, now)")
        if budget is not None:
            budget = int(budget)
            if budget <= 0:
                raise RTOSError(f"budget must be positive, got {budget}")
            self.budgets[task.uid] = budget
            self.budget_used.setdefault(task.uid, 0)
        self.policies[task.uid] = policy
        if handler is not None:
            self.handlers[task.uid] = handler
        # a task watched mid-cycle gets its watchdog armed right away
        if (
            task.abs_deadline is not None
            and task.state not in (TaskState.NEW, TaskState.TERMINATED)
        ):
            self._arm_deadline(task)
        return task

    def unwatch(self, task):
        """Stop watching ``task`` and disarm its timers."""
        uid = task.uid
        self.policies.pop(uid, None)
        self.handlers.pop(uid, None)
        self.budgets.pop(uid, None)
        self.budget_used.pop(uid, None)
        self._charge_from.pop(uid, None)
        self._deadline_at.pop(uid, None)
        for timers in (self._deadline_timers, self._budget_timers):
            timer = timers.pop(uid, None)
            if timer is not None:
                self.sim.cancel_scheduled(timer)
        self._missed.discard(uid)
        self._overrun.discard(uid)
        self._skip.discard(uid)

    def reset(self):
        """Forget all watch state (RTOSModel.init)."""
        for timers in (self._deadline_timers, self._budget_timers):
            for timer in timers.values():
                self.sim.cancel_scheduled(timer)
            timers.clear()
        self.policies.clear()
        self.handlers.clear()
        self.budgets.clear()
        self.releases.clear()
        self.budget_used.clear()
        self.miss_counts.clear()
        self.overrun_counts.clear()
        self._charge_from.clear()
        self._deadline_at.clear()
        self._missed.clear()
        self._overrun.clear()
        self._skip.clear()

    # ------------------------------------------------------------------
    # hooks (called by TaskManager / Dispatcher when armed)
    # ------------------------------------------------------------------

    def on_release(self, task):
        """A new cycle of ``task`` was released."""
        uid = task.uid
        self.releases[uid] = self.releases.get(uid, 0) + 1
        self._missed.discard(uid)
        self._overrun.discard(uid)
        if uid in self.budgets:
            self.budget_used[uid] = 0
            if (
                self._dispatcher.running is task
                and task.run_start is not None
            ):
                # back-to-back release: an overrun cycle rolled straight
                # into the next one without yielding the CPU, so there
                # is no fresh dispatch to re-arm the budget watchdog.
                # Restart the charge window and the timer here, against
                # the *new* release id — otherwise the old timer goes
                # stale and the new cycle runs unwatched.
                self._charge_from[uid] = self.sim.now
                self._arm_budget(task, self.budgets[uid])
        if uid in self.policies and task.abs_deadline is not None:
            self._arm_deadline(task)

    def on_dispatch(self, task):
        """``task`` got the CPU: arm its remaining execution budget."""
        uid = task.uid
        self._charge_from.pop(uid, None)
        budget = self.budgets.get(uid)
        if budget is None or uid in self._overrun:
            return
        self._arm_budget(task, budget - self.budget_used.get(uid, 0))

    def _arm_budget(self, task, remaining):
        uid = task.uid
        old = self._budget_timers.pop(uid, None)
        if old is not None:
            self.sim.cancel_scheduled(old)
        seq = task.release_seq
        self._budget_timers[uid] = self.sim.schedule_after(
            max(remaining, 0) + 1,
            lambda: self._budget_expired(task, seq),
        )

    def on_yield(self, task, now):
        """``task`` gave up the CPU: disarm and account its budget."""
        uid = task.uid
        timer = self._budget_timers.pop(uid, None)
        if timer is not None:
            self.sim.cancel_scheduled(timer)
        if uid in self.budgets and task.run_start is not None:
            start = task.run_start
            mark = self._charge_from.pop(uid, None)
            if mark is not None and mark > start:
                # part of this dispatch span belonged to the previous
                # cycle (back-to-back release); charge only from the mark
                start = mark
            self.budget_used[uid] = (
                self.budget_used.get(uid, 0) + now - start
            )

    def consume_miss(self, task):
        """True when this cycle's miss was already counted eagerly
        (keeps ``task_endcycle``'s lazy check from double-counting)."""
        return task.uid in self._missed

    def adjust_release(self, task, now, next_release):
        """Apply a pending skip-cycle: jump past blown releases."""
        uid = task.uid
        if uid not in self._skip:
            return next_release
        self._skip.discard(uid)
        if next_release > now or task.period <= 0:
            return next_release
        period = task.period
        skipped = (now - next_release) // period + 1
        self.metrics.cycles_skipped += skipped
        self.trace.record(
            now, "fault", task.name, "skip_cycle", skipped=skipped
        )
        return next_release + skipped * period

    # ------------------------------------------------------------------
    # timer callbacks
    # ------------------------------------------------------------------

    def _arm_deadline(self, task):
        uid = task.uid
        old = self._deadline_timers.pop(uid, None)
        if old is not None:
            self.sim.cancel_scheduled(old)
        seq = task.release_seq
        # +1: timers fire before processes run, so a cycle completing
        # exactly at its deadline must not be flagged; a release so late
        # that its deadline has already blown fires as soon as possible
        when = max(task.abs_deadline + 1, self.sim.now)
        self._deadline_at[uid] = when
        self._deadline_timers[uid] = self.sim.schedule_at(
            when, lambda: self._deadline_expired(task, seq),
        )

    def _deadline_expired(self, task, seq):
        uid = task.uid
        self._deadline_timers.pop(uid, None)
        self._deadline_at.pop(uid, None)
        if task.release_seq != seq or task.killed:
            return  # stale: a newer release re-armed (or will), or reaped
        if task.state in _COMPLETED_STATES:
            return  # cycle completed in time
        self._missed.add(uid)
        self.miss_counts[uid] = self.miss_counts.get(uid, 0) + 1
        task.stats.deadline_misses += 1
        self.metrics.deadline_misses += 1
        policy = self.policies.get(uid, "log")
        self.trace.record(
            self.sim.now, "fault", task.name, "deadline_miss",
            deadline=task.abs_deadline, policy=policy,
        )
        self._count(task, "deadline_miss")
        self._apply(task, policy, "deadline_miss")

    def _budget_expired(self, task, seq):
        uid = task.uid
        self._budget_timers.pop(uid, None)
        if task.release_seq != seq or task.killed:
            return
        if self._dispatcher.running is not task or task.run_start is None:
            return  # stale: the task yielded at this same instant
        if uid in self._overrun:
            return
        self._overrun.add(uid)
        self.overrun_counts[uid] = self.overrun_counts.get(uid, 0) + 1
        self.metrics.budget_overruns += 1
        policy = self.policies.get(uid, "log")
        self.trace.record(
            self.sim.now, "fault", task.name, "budget_overrun",
            budget=self.budgets[uid], policy=policy,
        )
        self._count(task, "budget_overrun")
        self._apply(task, policy, "budget_overrun")
        if self.mc is not None:
            self.mc.on_overrun(task)

    def rebudget(self, task, budget):
        """Re-set ``task``'s execution budget mid-run (MC mode switches).

        The new budget applies to the *current* cycle: a running task's
        watchdog is re-armed against what it has consumed so far. When
        consumption already exceeds the new (smaller) budget, the cycle
        finishes unwatched — flagging it now would re-trigger the mode
        raise that is being recovered from; the next release arms fresh.
        """
        uid = task.uid
        budget = int(budget)
        if budget <= 0:
            raise RTOSError(f"budget must be positive, got {budget}")
        self.budgets[uid] = budget
        used = self.budget_used.get(uid, 0)
        running = (
            self._dispatcher.running is task and task.run_start is not None
        )
        if running:
            start = self._charge_from.get(uid, task.run_start)
            used += self.sim.now - start
        self._overrun.discard(uid)
        timer = self._budget_timers.pop(uid, None)
        if timer is not None:
            self.sim.cancel_scheduled(timer)
        if running and used < budget:
            self._arm_budget(task, budget - used)

    # ------------------------------------------------------------------
    # policy application
    # ------------------------------------------------------------------

    def _count(self, task, kind):
        obs = self.model.obs
        if obs is not None:
            obs.registry.counter(
                f"{self.model.name}.watchdog.{kind}"
            ).inc()

    def _apply(self, task, policy, kind):
        if policy == "notify":
            handler = self.handlers.get(task.uid)
            if handler is not None:
                handler(task, kind, self.sim.now)
        elif policy == "kill":
            self.metrics.policy_kills += 1
            self.model.task_condemn(task)
        elif policy == "skip-cycle":
            self._skip.add(task.uid)
        # "log": the trace record and counters above are the reaction

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def miss_rate(self):
        """Detected misses / releases over all watched-model tasks."""
        releases = sum(self.releases.values())
        if not releases:
            return 0.0
        return self.metrics.deadline_misses / releases

    def snapshot(self):
        """Per-task watchdog state as a deterministic dict.

        One entry per task this monitor has seen (watched or merely
        release-counted), keyed by task name in creation order: the
        configured policy and budget, the armed deadline-watchdog fire
        time (``None`` when disarmed), execution time consumed in the
        current cycle, eager miss/overrun counts, and the pending
        skip/overrun/missed flags. Consumed by
        ``python -m repro.obs report`` for bundled-model runs.
        """
        seen = (
            set(self.policies) | set(self.releases) | set(self.budgets)
        )
        tasks = {}
        for task in self.model.tasks:
            uid = task.uid
            if uid not in seen:
                continue
            tasks[task.name] = {
                "policy": self.policies.get(uid),
                "releases": self.releases.get(uid, 0),
                "deadline_misses": self.miss_counts.get(uid, 0),
                "budget_overruns": self.overrun_counts.get(uid, 0),
                "armed_deadline": self._deadline_at.get(uid),
                "budget": self.budgets.get(uid),
                "budget_used": self.budget_used.get(uid, 0),
                "missed": uid in self._missed,
                "overrun": uid in self._overrun,
                "skip_pending": uid in self._skip,
            }
        return {
            "tasks": tasks,
            "miss_rate": round(self.miss_rate(), 6),
        }
