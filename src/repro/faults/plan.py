"""Declarative fault plans: what to break, where, and when.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries.
Each spec names one fault *kind* (a hook point in the simulation stack)
plus kind-specific parameters — which task/line/event/channel it applies
to, a time window, a probability, a magnitude. Plans are pure data:
they validate eagerly, round-trip through JSON (``to_dict`` /
``from_dict`` / ``from_json``) and carry no simulator state, so the
same plan object can arm many independent runs.

All randomness lives in the :class:`~repro.faults.inject.FaultInjector`
that executes a plan (one ``random.Random(seed)`` stream, consumed in
deterministic simulation order); specs with ``prob == 1.0`` never draw
from the stream, so fully deterministic plans stay deterministic no
matter the seed.

Fault kinds
-----------
``exec_jitter``
    Scale and/or offset the delays a task requests via ``time_wait``
    (execution-time jitter / systematic overrun).
``task_crash``
    Forcibly terminate a task at simulated time ``at`` (as if the
    firmware crashed; the RTOS reaps it like ``task_kill``).
``task_hang``
    At its first ``time_wait`` at or after ``at``, the task stops
    making progress but never yields the CPU — a livelock/while(1)
    hang only a watchdog ``kill`` policy can recover from.
``drop_irq``
    Lose raised interrupts on a platform ``IrqLine`` (the assertion
    never reaches the controller).
``spurious_irq``
    Raise extra interrupts on a line at explicit simulated times.
``lost_notify``
    An ``event_notify`` happens but wakes nobody (delivery lost).
``dup_notify``
    An ``event_notify`` delivers twice (glitching edge).
``stuck_channel``
    From time ``at`` on, the given channel operation blocks forever.
``slow_channel``
    The given channel operation is delayed by ``delay`` time units
    before it proceeds.
"""

import json


#: per-kind parameter tables: required names, optional name -> default
_KINDS = {
    "exec_jitter": (
        (),
        {"task": None, "scale": 1.0, "offset": 0, "prob": 1.0,
         "start": 0, "end": None},
    ),
    "task_crash": (("task", "at"), {}),
    "task_hang": (("task", "at"), {}),
    "drop_irq": (
        (),
        {"line": None, "prob": 1.0, "start": 0, "end": None},
    ),
    "spurious_irq": (("times",), {"line": None}),
    "lost_notify": (
        (),
        {"event": None, "prob": 1.0, "start": 0, "end": None},
    ),
    "dup_notify": (
        (),
        {"event": None, "prob": 1.0, "start": 0, "end": None},
    ),
    "stuck_channel": ((), {"channel": None, "op": None, "at": 0}),
    "slow_channel": (
        ("delay",),
        {"channel": None, "op": None, "prob": 1.0, "start": 0, "end": None},
    ),
}

FAULT_KINDS = tuple(sorted(_KINDS))


class FaultPlanError(ValueError):
    """A fault spec or plan failed validation."""


class FaultSpec:
    """One validated fault description (see module doc for the kinds).

    Construct with the kind plus keyword parameters::

        FaultSpec("exec_jitter", task="t3", scale=1.5, prob=0.3)
        FaultSpec("task_crash", task="t1", at=2_000_000)

    Unknown kinds, unknown parameters, missing required parameters and
    out-of-range values raise :class:`FaultPlanError` eagerly.
    """

    __slots__ = ("kind", "params")

    def __init__(self, kind, **params):
        if kind not in _KINDS:
            raise FaultPlanError(
                f"unknown fault kind {kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        required, optional = _KINDS[kind]
        for name in required:
            if name not in params:
                raise FaultPlanError(f"{kind}: missing required field {name!r}")
        merged = dict(optional)
        for name, value in params.items():
            if name not in required and name not in optional:
                raise FaultPlanError(f"{kind}: unknown field {name!r}")
            merged[name] = value
        self.kind = kind
        self.params = merged
        self._validate()

    def _validate(self):
        p = self.params
        prob = p.get("prob")
        if prob is not None and not 0.0 <= prob <= 1.0:
            raise FaultPlanError(f"{self.kind}: prob must be in [0, 1], got {prob}")
        for field in ("at", "start", "delay"):
            value = p.get(field)
            if value is not None and value < 0:
                raise FaultPlanError(
                    f"{self.kind}: {field} must be >= 0, got {value}"
                )
        end = p.get("end")
        if end is not None and end < p.get("start", 0):
            raise FaultPlanError(
                f"{self.kind}: end ({end}) precedes start ({p.get('start', 0)})"
            )
        if self.kind == "exec_jitter":
            if p["scale"] < 0:
                raise FaultPlanError(f"exec_jitter: scale must be >= 0, got {p['scale']}")
        if self.kind == "spurious_irq":
            times = p["times"]
            if not times or any(t < 0 for t in times):
                raise FaultPlanError(
                    "spurious_irq: times must be a non-empty list of times >= 0"
                )
            p["times"] = sorted(int(t) for t in times)
        if self.kind in ("stuck_channel", "slow_channel"):
            op = p["op"]
            if op is not None and not isinstance(op, str):
                raise FaultPlanError(f"{self.kind}: op must be a string or None")

    def __getattr__(self, name):
        if name in FaultSpec.__slots__:
            # slot not initialized yet: must not recurse through params
            raise AttributeError(name)
        try:
            return self.params[name]
        except KeyError:
            raise AttributeError(name) from None

    def in_window(self, now):
        """True when ``now`` falls inside this spec's [start, end] window."""
        if now < self.params.get("start", 0):
            return False
        end = self.params.get("end")
        return end is None or now <= end

    def to_dict(self):
        data = {"kind": self.kind}
        for name, value in self.params.items():
            if value is not None:
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        try:
            kind = data.pop("kind")
        except KeyError:
            raise FaultPlanError(f"fault spec without a 'kind': {data!r}") from None
        return cls(kind, **data)

    def __repr__(self):
        fields = ", ".join(
            f"{k}={v!r}" for k, v in self.params.items() if v is not None
        )
        return f"FaultSpec({self.kind!r}, {fields})" if fields else f"FaultSpec({self.kind!r})"

    def __eq__(self, other):
        return (
            isinstance(other, FaultSpec)
            and self.kind == other.kind
            and self.params == other.params
        )


class FaultPlan:
    """An ordered, validated collection of :class:`FaultSpec`.

    Accepts specs, dicts (``{"kind": ..., ...}``) or a mix::

        FaultPlan([
            {"kind": "exec_jitter", "scale": 1.3, "prob": 0.5},
            FaultSpec("task_crash", task="t1", at=2_000_000),
        ])
    """

    __slots__ = ("specs", "_by_kind")

    def __init__(self, specs=()):
        normalized = []
        for spec in specs:
            if isinstance(spec, FaultSpec):
                normalized.append(spec)
            elif isinstance(spec, dict):
                normalized.append(FaultSpec.from_dict(spec))
            else:
                raise FaultPlanError(
                    f"fault spec must be a FaultSpec or dict, got {type(spec).__name__}"
                )
        self.specs = tuple(normalized)
        by_kind = {}
        for spec in self.specs:
            by_kind.setdefault(spec.kind, []).append(spec)
        self._by_kind = {kind: tuple(v) for kind, v in by_kind.items()}

    def of_kind(self, kind):
        """All specs of one kind, in plan order (empty tuple if none)."""
        return self._by_kind.get(kind, ())

    def __len__(self):
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __bool__(self):
        return bool(self.specs)

    def __eq__(self, other):
        return isinstance(other, FaultPlan) and self.specs == other.specs

    def to_dict(self):
        return {"faults": [spec.to_dict() for spec in self.specs]}

    def to_json(self):
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data):
        if isinstance(data, (list, tuple)):
            return cls(data)
        try:
            specs = data["faults"]
        except (TypeError, KeyError):
            raise FaultPlanError(
                f"fault plan must be a list or {{'faults': [...]}}, got {data!r}"
            ) from None
        return cls(specs)

    @classmethod
    def from_json(cls, payload):
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid fault-plan JSON: {exc}") from None
        return cls.from_dict(data)

    def __repr__(self):
        return f"FaultPlan({list(self.specs)!r})"
