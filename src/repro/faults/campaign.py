"""Fault campaigns: sweeping (seed x fault plan x scheduler) on the farm.

A *campaign* evaluates robustness the way the paper's Section-4.3
ablation evaluates schedulability: run the same periodic task set under
every combination of seed, fault-plan preset and scheduling policy, and
report per-run survival and deadline-miss rates. Campaign points are
ordinary farm runs (`repro.farm.workloads.fault_campaign_run` is the
module-level target), so they cache, retry and parallelize like any
other sweep.

Plans cross the worker-process boundary as *preset names* (strings from
:data:`PLAN_PRESETS`) or inline JSON strings — both hashable, so
``RunConfig`` content-hashing and the result cache work unchanged;
:func:`resolve_plan` turns either form into a
:class:`~repro.faults.plan.FaultPlan`.

Determinism: a campaign point is a seeded, single-threaded simulation —
identical (seed, plan, policy) triples produce identical metrics.
:func:`campaign_report` strips the wall-clock fields (``elapsed``,
``wall_seconds``) from the sweep result, so two runs of the same
campaign serialize to byte-identical JSON (the CI ``fault-smoke`` job
diffs exactly that).
"""

import json

from repro.faults.plan import FaultPlan, FaultPlanError

#: canonical fault plans, referenced by name from campaign configs.
#: Task names match the farm's DEFAULT_TASK_SET (t1/t2/t3).
PLAN_PRESETS = {
    # control group: no faults, the ablation baseline
    "baseline": (),
    # probabilistic execution-time jitter on every task
    "jitter": (
        {"kind": "exec_jitter", "scale": 1.3, "prob": 0.5},
    ),
    # systematic overrun of the heaviest task
    "overrun": (
        {"kind": "exec_jitter", "task": "t3", "scale": 1.6},
    ),
    # the highest-rate task crashes mid-run
    "crash": (
        {"kind": "task_crash", "task": "t1", "at": 2_000_000},
    ),
    # a mid-priority task wedges while holding the CPU
    "hang": (
        {"kind": "task_hang", "task": "t2", "at": 1_500_000},
    ),
    # everything at once
    "storm": (
        {"kind": "exec_jitter", "scale": 1.2, "prob": 0.4},
        {"kind": "task_crash", "task": "t1", "at": 4_000_000},
        {"kind": "exec_jitter", "task": "t3", "offset": 50_000, "prob": 0.25},
    ),
    # mixed-criticality overrun storm: the HI task repeatedly blows its
    # optimistic budget while the LO load jitters (task names match the
    # farm's MC_TASK_SET lo1/lo2/hi)
    "overrun_storm": (
        {"kind": "exec_jitter", "task": "hi", "scale": 2.0, "prob": 0.6},
        {"kind": "exec_jitter", "task": "lo1", "scale": 1.1, "prob": 0.3},
    ),
}


def resolve_plan(plan):
    """Turn a preset name, JSON string, spec list or plan into a FaultPlan."""
    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, str):
        preset = PLAN_PRESETS.get(plan)
        if preset is not None:
            return FaultPlan(preset)
        if plan.lstrip().startswith(("[", "{")):
            return FaultPlan.from_json(plan)
        raise FaultPlanError(
            f"unknown fault-plan preset {plan!r} "
            f"(known: {', '.join(sorted(PLAN_PRESETS))}; "
            "or pass inline JSON)"
        )
    return FaultPlan(plan)


def run_campaign_point(policy="priority", preemption="step", seed=0,
                       plan="baseline", on_miss="log", budget_factor=None,
                       horizon=6_000_000, granularity=10_000, task_set=None,
                       with_spans=False):
    """One campaign point: a watched periodic task set under one fault plan.

    Builds the farm's scheduler-ablation task set, watches every task
    with the ``on_miss`` policy (optionally arming execution budgets of
    ``wcet * budget_factor``), arms ``plan`` through a
    :class:`~repro.faults.inject.FaultInjector` seeded with ``seed``,
    and returns a flat survival/miss-rate metrics dict. With
    ``with_spans=True`` the trace is streamed through a span builder
    (O(tasks) memory) and the per-task latency digests and job census
    ride along under ``"spans"``.
    """
    from repro.farm.workloads import DEFAULT_TASK_SET, span_dump, span_instruments
    from repro.faults.inject import FaultInjector
    from repro.kernel import Simulator, WaitFor
    from repro.rtos import PERIODIC, RTOSModel
    from repro.rtos.task import TaskState

    task_set = [tuple(entry) for entry in (task_set or DEFAULT_TASK_SET)]
    plan_obj = resolve_plan(plan)
    trace = builder = latency = misses = None
    if with_spans:
        trace, builder, latency, misses = span_instruments()
    sim = Simulator(trace=trace)
    if trace is None:
        sim.trace.enabled = False
    os_ = RTOSModel(sim, sched=policy, preemption=preemption)
    if with_spans:
        os_.trace_spans(True)
    notifications = []

    def on_failure(task, kind, now):
        notifications.append((task.name, kind, now))

    handler = on_failure if on_miss == "notify" else None
    tasks = []
    for index, (name, period, exec_time) in enumerate(task_set):
        task = os_.task_create(
            name, PERIODIC, period, exec_time, priority=index + 1
        )
        budget = (
            int(exec_time * budget_factor) if budget_factor is not None
            else None
        )
        os_.task_watch(task, policy=on_miss, handler=handler, budget=budget)
        tasks.append(task)

        def body(exec_time=exec_time):
            while True:
                remaining = exec_time
                while remaining > 0:
                    step = min(granularity, remaining)
                    yield from os_.time_wait(step)
                    remaining -= step
                yield from os_.task_endcycle()

        sim.spawn(os_.task_body(task, body()), name=task.name)

    injector = FaultInjector(sim, plan_obj, seed=seed).arm(model=os_)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run(until=horizon)

    monitor = os_.monitor
    releases = sum(monitor.releases.values())
    survivors = sum(
        1 for t in tasks if t.state is not TaskState.TERMINATED
    )
    snap = os_.metrics.snapshot(sim.now)
    result = {
        "policy": policy,
        "preemption": preemption,
        "seed": seed,
        "plan": plan if isinstance(plan, str) else plan_obj.to_json(),
        "on_miss": on_miss,
        "misses": snap["deadline_misses"],
        "releases": releases,
        "miss_rate": round(snap["deadline_misses"] / releases, 6) if releases else 0.0,
        "budget_overruns": snap["budget_overruns"],
        "policy_kills": snap["policy_kills"],
        "cycles_skipped": snap["cycles_skipped"],
        "faults_injected": snap["faults_injected"],
        "survivors": survivors,
        "n_tasks": len(tasks),
        "survival": round(survivors / len(tasks), 6) if tasks else 1.0,
        "switches": snap["context_switches"],
        "preemptions": snap["preemptions"],
        "utilization": snap["utilization"],
        "sim_time": snap["sim_time"],
        "injected": dict(injector.counts),
    }
    if on_miss == "notify":
        result["notifications"] = len(notifications)
    if builder is not None:
        result["spans"] = span_dump(builder, latency, misses, sim.now)
    return result


def campaign_spec(seeds=(1, 2, 3), plans=("baseline", "jitter", "crash"),
                  scheds=("priority", "edf"), on_miss="log",
                  budget_factor=None, horizon=6_000_000):
    """Build the (seed x plan x scheduler) SweepSpec of one campaign."""
    from repro.farm.sweep import SweepSpec

    for plan in plans:
        resolve_plan(plan)  # fail fast on unknown presets / bad JSON
    return (
        SweepSpec(
            "repro.farm.workloads:fault_campaign_run",
            base={
                "on_miss": on_miss,
                "budget_factor": budget_factor,
                "horizon": horizon,
            },
        )
        .axis("policy", list(scheds))
        .axis("plan", list(plans))
        .axis("seed", list(seeds))
    )


def mc_campaign_spec(seeds=(1, 2, 3), degrades=("drop", "skip", "elastic"),
                     plan="overrun_storm", scheds=("priority",),
                     recovery_window=None, horizon=6_000_000):
    """Build the MC-ablation SweepSpec: (sched x degrade x MC-on/off x seed).

    Every point runs :func:`repro.farm.workloads.mc_campaign_run` on the
    farm's mixed-criticality task set under the same seeded overrun
    plan; the ``with_mc`` axis is the ablation — identical workload with
    the mode controller armed vs. a plain watched baseline, so the
    report directly exhibits the HI-miss shielding.
    """
    from repro.farm.sweep import SweepSpec

    resolve_plan(plan)  # fail fast on unknown presets / bad JSON
    return (
        SweepSpec(
            "repro.farm.workloads:mc_campaign_run",
            base={
                "plan": plan,
                "recovery_window": recovery_window,
                "horizon": horizon,
            },
        )
        .axis("policy", list(scheds))
        .axis("degrade", list(degrades))
        .axis("with_mc", [True, False])
        .axis("seed", list(seeds))
    )


def campaign_report(sweep_result):
    """Deterministic campaign summary (no wall-clock fields).

    Two runs of the same campaign — cached, serial or parallel —
    serialize this to byte-identical JSON.
    """
    runs = []
    for run in sweep_result:
        runs.append({
            "label": run.config.label(),
            "params": dict(run.config.kwargs),
            "status": run.status,
            "result": run.value if run.ok else None,
            "error": run.error,
        })
    runs.sort(key=lambda entry: entry["label"])
    ok = [r for r in runs if r["status"] == "ok"]
    summary = {
        "runs": len(runs),
        "ok": len(ok),
        "failed": len(runs) - len(ok),
        "total_misses": sum(r["result"]["misses"] for r in ok),
        "total_faults_injected": sum(
            r["result"]["faults_injected"] for r in ok
        ),
        "mean_miss_rate": (
            round(sum(r["result"]["miss_rate"] for r in ok) / len(ok), 6)
            if ok else 0.0
        ),
        "min_survival": (
            min(r["result"]["survival"] for r in ok) if ok else 1.0
        ),
    }
    return {"campaign": summary, "points": runs}


def write_campaign_report(sweep_result, path):
    """Serialize :func:`campaign_report` to ``path`` (stable JSON)."""
    payload = json.dumps(
        campaign_report(sweep_result), indent=1, sort_keys=True
    )
    with open(path, "w") as fh:
        fh.write(payload + "\n")
    return payload
