"""Deterministic fault injection and failure monitoring.

Three layers (see DESIGN.md §10):

* :mod:`repro.faults.plan` — declarative, JSON-round-trippable
  :class:`FaultPlan` / :class:`FaultSpec` descriptions of *what* to
  break, *where* and *when*;
* :mod:`repro.faults.inject` — the seeded :class:`FaultInjector` that
  arms a plan's hooks on RTOS models, interrupt lines and channels;
* :mod:`repro.faults.detect` — the :class:`FailureMonitor` behind
  ``RTOSModel.task_watch``: eager deadline-miss detection and
  execution-budget watchdogs with ``log`` / ``notify`` / ``kill`` /
  ``skip-cycle`` policies;
* :mod:`repro.faults.campaign` — farm integration: the
  (seed x plan x scheduler) campaign sweep and its deterministic
  report (``python -m repro.farm campaign``).

With nothing armed, every hook point costs one attribute load and a
``None`` compare (the obs guard pattern) and traces stay bit-identical.
"""

from repro.faults.campaign import (
    PLAN_PRESETS,
    campaign_report,
    campaign_spec,
    mc_campaign_spec,
    resolve_plan,
    run_campaign_point,
    write_campaign_report,
)
from repro.faults.detect import POLICIES, FailureMonitor
from repro.faults.inject import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultPlanError, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FailureMonitor",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "PLAN_PRESETS",
    "POLICIES",
    "campaign_report",
    "campaign_spec",
    "mc_campaign_spec",
    "resolve_plan",
    "run_campaign_point",
    "write_campaign_report",
]
