"""Seeded fault injection: executes a :class:`~repro.faults.plan.FaultPlan`.

A :class:`FaultInjector` binds a plan to one simulator and arms hooks at
the stack's fault points:

* ``arm(model)`` — RTOS hooks: ``time_wait`` perturbation (jitter,
  overrun, hang), lost/duplicated ``event_notify``, and scheduled
  ``task_crash`` timers;
* ``arm_irq(line)`` — platform hooks: dropped raises on an
  :class:`~repro.platform.interrupt.IrqLine` plus scheduled spurious
  raises;
* ``arm_channel(channel)`` — communication hooks: stuck/slow gates at
  the blocking entry of queue/semaphore/mailbox operations.

Unarmed components pay the usual one-load-plus-``None``-compare guard
and behave (and trace) bit-identically to a fault-free build.

Determinism: every probabilistic decision draws from one
``random.Random(seed)`` stream in simulation order (the simulation
itself is single-threaded and deterministic), so identical
(plan, seed, workload) triples reproduce identical fault sequences.
Specs with ``prob == 1.0`` never touch the stream. Injected faults are
counted per kind in :attr:`counts`, bumped in the armed model's
``RTOSMetrics.faults_injected``, mirrored into the obs metrics registry
when one is attached, and traced as ``"fault"`` records (rendered as
instants on the fault track by the CTF exporter).
"""

import random

from repro.faults.plan import FaultPlan
from repro.kernel.oracle import DecisionPoint


class FaultInjector:
    """Executes one fault plan against one simulation (see module doc)."""

    def __init__(self, sim, plan, seed=0):
        self.sim = sim
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(plan)
        self.plan = plan
        self.seed = seed
        self.rng = random.Random(seed)
        #: injections performed, per fault kind
        self.counts = {}
        self._metrics = None
        self._registry = None
        #: one-shot specs already consumed (id(spec))
        self._spent = set()
        #: per-channel dead sync events for stuck/slow gates
        self._dead_events = {}

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm(self, model=None, irq_lines=(), channels=()):
        """Attach this injector's hooks; returns ``self``.

        ``model`` is an :class:`~repro.rtos.model.RTOSModel` (enables
        exec/notify/crash/hang faults on its tasks and events),
        ``irq_lines`` are platform interrupt lines, ``channels`` are
        communication channels supporting ``attach_faults``.
        """
        if model is not None:
            self._metrics = model.attach_faults(self)
            if model.obs is not None:
                self._registry = model.obs.registry
            for spec in self.plan.of_kind("task_crash"):
                self._schedule_crash(model, spec)
        for line in irq_lines:
            self.arm_irq(line)
        for channel in channels:
            self.arm_channel(channel)
        return self

    def arm_irq(self, line):
        """Arm drop/spurious interrupt faults on one ``IrqLine``."""
        line.faults = self
        for spec in self.plan.of_kind("spurious_irq"):
            if spec.line is not None and spec.line != line.name:
                continue
            for at in spec.times:
                self.sim.schedule_at(
                    at, lambda line=line: self._spurious_irq(line)
                )
        return line

    def arm_channel(self, channel):
        """Arm stuck/slow faults on one communication channel."""
        channel.attach_faults(self)
        return channel

    def observe(self, registry):
        """Mirror per-kind injection counters into ``registry``."""
        self._registry = registry
        return self

    # ------------------------------------------------------------------
    # bookkeeping shared by all hooks
    # ------------------------------------------------------------------

    def _record(self, kind, actor, **data):
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self._metrics is not None:
            self._metrics.faults_injected += 1
        self.sim.trace.record(self.sim.now, "fault", actor, kind, **data)
        if self._registry is not None:
            self._registry.counter(f"faults.{kind}").inc()

    def _roll(self, spec, kind, actor):
        """One probabilistic decision; prob == 1.0 stays stream-free.

        Under an installed schedule oracle a genuinely probabilistic
        spec (``0 < prob < 1``) stops being a coin flip and becomes a
        ``fault`` decision point with choices ``("skip", kind)`` — the
        explorer then branches on both outcomes instead of sampling one.
        Index 0 (skip) is the oracle default, so a FifoOracle run is
        fault-free at these sites, not equal to any particular RNG draw.
        """
        prob = spec.params["prob"]
        if prob >= 1.0:
            return True
        if prob <= 0.0:
            return False
        oracle = self.sim.oracle
        if oracle is not None:
            return oracle.pick(DecisionPoint(
                "fault", ("skip", kind), actor=actor, time=self.sim.now,
            )) == 1
        return self.rng.random() < prob

    # ------------------------------------------------------------------
    # RTOS hooks (called by TimeManager / EventManager when armed)
    # ------------------------------------------------------------------

    def perturb_exec(self, task, nsec):
        """Apply exec-time faults to one ``time_wait`` delay.

        Returns the (possibly modified) delay, or ``None`` when a
        ``task_hang`` spec triggers — the caller then parks the task
        forever while it keeps the CPU.
        """
        now = self.sim.now
        for spec in self.plan.of_kind("task_hang"):
            if spec.task != task.name or now < spec.at:
                continue
            if id(spec) in self._spent:
                continue
            self._spent.add(id(spec))
            self._record("task_hang", task.name)
            return None
        for spec in self.plan.of_kind("exec_jitter"):
            if spec.task is not None and spec.task != task.name:
                continue
            if not spec.in_window(now) or not self._roll(
                spec, "exec_jitter", task.name
            ):
                continue
            perturbed = int(nsec * spec.params["scale"]) + spec.params["offset"]
            if perturbed < 0:
                perturbed = 0
            if perturbed != nsec:
                self._record(
                    "exec_jitter", task.name, requested=nsec, actual=perturbed
                )
                nsec = perturbed
        return nsec

    def lose_notify(self, event):
        """True when this ``event_notify`` delivery must be dropped."""
        now = self.sim.now
        for spec in self.plan.of_kind("lost_notify"):
            if spec.event is not None and spec.event != event.name:
                continue
            if spec.in_window(now) and self._roll(
                spec, "lost_notify", event.name
            ):
                self._record("lost_notify", event.name)
                return True
        return False

    def duplicate_notify(self, event):
        """True when this ``event_notify`` must deliver a second time."""
        now = self.sim.now
        for spec in self.plan.of_kind("dup_notify"):
            if spec.event is not None and spec.event != event.name:
                continue
            if spec.in_window(now) and self._roll(
                spec, "dup_notify", event.name
            ):
                self._record("dup_notify", event.name)
                return True
        return False

    def _schedule_crash(self, model, spec):
        def crash():
            task = next(
                (t for t in model.tasks if t.name == spec.task), None
            )
            if task is None or task.state.name == "TERMINATED":
                return
            self._record("task_crash", spec.task)
            model.task_condemn(task)

        self.sim.schedule_at(spec.at, crash)

    # ------------------------------------------------------------------
    # platform hooks (called by IrqLine when armed)
    # ------------------------------------------------------------------

    def drop_irq(self, line):
        """True when this interrupt assertion must be lost."""
        now = self.sim.now
        for spec in self.plan.of_kind("drop_irq"):
            if spec.line is not None and spec.line != line.name:
                continue
            if spec.in_window(now) and self._roll(
                spec, "drop_irq", line.name
            ):
                self._record("drop_irq", line.name)
                return True
        return False

    def _spurious_irq(self, line):
        self._record("spurious_irq", line.name)
        line.raise_irq()

    # ------------------------------------------------------------------
    # channel hooks (delegated to by channel operations when armed)
    # ------------------------------------------------------------------

    def channel_gate(self, channel, op, sync):
        """Generator gate at the blocking entry of a channel operation.

        A matching ``stuck_channel`` spec blocks the caller forever (it
        waits on a dead event nobody signals); a matching
        ``slow_channel`` spec delays it by ``spec.delay`` before the
        real operation proceeds. No matching spec: falls straight
        through without yielding.
        """
        now = self.sim.now
        for spec in self.plan.of_kind("stuck_channel"):
            if spec.channel is not None and spec.channel != channel.name:
                continue
            if spec.op is not None and spec.op != op:
                continue
            if now < spec.params["at"]:
                continue
            self._record("stuck_channel", channel.name, op=op)
            dead = self._dead_event(channel, sync)
            while True:
                yield from sync.wait(dead)
        for spec in self.plan.of_kind("slow_channel"):
            if spec.channel is not None and spec.channel != channel.name:
                continue
            if spec.op is not None and spec.op != op:
                continue
            if not spec.in_window(now) or not self._roll(
                spec, "slow_channel", channel.name
            ):
                continue
            delay = spec.params["delay"]
            self._record("slow_channel", channel.name, op=op, delay=delay)
            dead = self._dead_event(channel, sync)
            yield from sync.wait(dead, timeout=delay)

    def _dead_event(self, channel, sync):
        key = id(channel)
        event = self._dead_events.get(key)
        if event is None:
            event = sync.new_event(f"{channel.name}.fault")
            self._dead_events[key] = event
        return event
