"""Platform modeling: PEs, busses, drivers and interrupts (Figure 3)."""

from repro.platform.architecture import Architecture
from repro.platform.bus import Bus
from repro.platform.driver import BusLink, InterruptDriver
from repro.platform.interrupt import InterruptController, InterruptSource, IrqLine
from repro.platform.pe import ProcessingElement

__all__ = [
    "Architecture",
    "Bus",
    "BusLink",
    "InterruptController",
    "InterruptDriver",
    "InterruptSource",
    "IrqLine",
    "ProcessingElement",
]
