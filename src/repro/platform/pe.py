"""Processing elements.

A :class:`ProcessingElement` groups what one PE of the architecture model
contains (paper Figure 3(b)): an optional local RTOS model instance, an
interrupt controller, the tasks/behaviors mapped to it, and bookkeeping
for its drivers.
"""

from repro.platform.interrupt import InterruptController
from repro.rtos.model import RTOSModel


class ProcessingElement:
    """One PE of the system architecture.

    With ``sched`` given, the PE carries a local RTOS model (dynamic
    scheduling); without it the PE runs its behaviors directly on the
    SLDL kernel (purely static scheduling / unscheduled).
    """

    def __init__(self, sim, name, sched=None, preemption="step"):
        self.sim = sim
        self.name = name
        self.os = (
            RTOSModel(sim, sched=sched, preemption=preemption, name=f"{name}.os")
            if sched is not None
            else None
        )
        self.pic = InterruptController(sim, name=f"{name}.pic")
        self.tasks = []
        self.drivers = []
        self._boot_actions = []

    # -- construction API ----------------------------------------------

    def add_task(self, name, body, tasktype=None, period=0, wcet=0,
                 priority=None, rel_deadline=None):
        """Create an RTOS task running ``body`` (a generator) on this PE.

        Only valid on PEs with an RTOS model. Returns the task handle.
        """
        if self.os is None:
            raise RuntimeError(f"PE {self.name!r} has no RTOS model")
        from repro.rtos.task import APERIODIC

        if tasktype is None:
            tasktype = APERIODIC
        task = self.os.task_create(
            name, tasktype, period, wcet,
            priority=priority, rel_deadline=rel_deadline,
        )
        self.tasks.append(task)
        self.sim.spawn(self.os.task_body(task, body), name=f"{self.name}.{name}")
        return task

    def add_process(self, runnable, name=None):
        """Run a plain SLDL process on this PE (unscheduled model)."""
        return self.sim.spawn(runnable, name=f"{self.name}.{name or 'proc'}")

    def add_driver(self, driver, irq_line, isr_name=None):
        """Attach a receiving bus driver: registers its ISR on the PIC."""
        self.drivers.append(driver)
        self.pic.register(irq_line, driver.isr, name=isr_name)
        return driver

    def on_boot(self, action):
        """Register a callable executed when the architecture boots."""
        self._boot_actions.append(action)

    def boot(self):
        """Start this PE's RTOS (called by the architecture bootstrap)."""
        for action in self._boot_actions:
            action()
        if self.os is not None:
            self.os.start()

    # -- results ---------------------------------------------------------

    @property
    def metrics(self):
        return self.os.metrics if self.os is not None else None
