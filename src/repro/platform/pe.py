"""Processing elements.

A :class:`ProcessingElement` groups what one PE of the architecture model
contains (paper Figure 3(b)): an optional local RTOS model instance, an
interrupt controller, the tasks/behaviors mapped to it, and bookkeeping
for its drivers.

Beyond the paper, a PE can be *heterogeneous* (``speed=`` scales every
task's WCET — a 2.0x core executes the same work in half the modeled
time) and *hierarchically scheduled* (``components=`` wraps the taskset
in budget/period resource servers — see :mod:`repro.rtos.sched.hier`).
"""

import math

from repro.platform.interrupt import InterruptController
from repro.rtos.model import RTOSModel
from repro.rtos.sched.hier import HierarchicalScheduler


class ProcessingElement:
    """One PE of the system architecture.

    With ``sched`` given, the PE carries a local RTOS model (dynamic
    scheduling); without it the PE runs its behaviors directly on the
    SLDL kernel (purely static scheduling / unscheduled).

    With ``components`` (a list of :class:`~repro.rtos.sched.hier.Component`),
    the RTOS runs a two-level :class:`HierarchicalScheduler`: ``sched``
    then names the *top-level* server policy (``"priority"`` or
    ``"edf"``, default ``"priority"``) and tasks are routed into
    components via ``add_task(component=...)``; unassigned tasks fall
    into the implicit background server.

    ``speed`` is the relative execution speed of this core (default 1.0):
    task WCETs passed to :meth:`add_task` are divided by it (rounded up),
    so one system spec maps onto heterogeneous cores.
    """

    def __init__(self, sim, name, sched=None, preemption="step", speed=1.0,
                 components=None):
        if speed <= 0:
            raise ValueError(f"PE {name!r}: speed must be positive")
        self.sim = sim
        self.name = name
        self.speed = speed
        self.components = None
        if components is not None:
            top = sched if sched is not None else "priority"
            sched = HierarchicalScheduler(components, top=top)
            self.components = {c.name: c for c in sched.components}
        self.os = (
            RTOSModel(sim, sched=sched, preemption=preemption, name=f"{name}.os")
            if sched is not None
            else None
        )
        self.pic = InterruptController(sim, name=f"{name}.pic")
        self.tasks = []
        self.drivers = []
        self._boot_actions = []
        self._booted = False

    # -- construction API ----------------------------------------------

    def scaled_wcet(self, wcet):
        """WCET on this core: reference WCET divided by the speed factor."""
        if not wcet or self.speed == 1.0:
            return wcet
        return math.ceil(wcet / self.speed)

    def add_task(self, name, body, tasktype=None, period=0, wcet=0,
                 priority=None, rel_deadline=None, component=None):
        """Create an RTOS task running ``body`` (a generator) on this PE.

        Only valid on PEs with an RTOS model. ``wcet`` is in reference
        time units and is scaled by the PE's speed factor.
        ``component=`` (name or :class:`Component`) routes the task into
        one of the PE's resource servers (hierarchical scheduling only).
        Returns the task handle.
        """
        if self.os is None:
            raise RuntimeError(f"PE {self.name!r} has no RTOS model")
        from repro.rtos.task import APERIODIC

        if tasktype is None:
            tasktype = APERIODIC
        task = self.os.task_create(
            name, tasktype, period, self.scaled_wcet(wcet),
            priority=priority, rel_deadline=rel_deadline,
        )
        if component is not None:
            scheduler = self.os.scheduler
            if not isinstance(scheduler, HierarchicalScheduler):
                raise RuntimeError(
                    f"PE {self.name!r} has no hierarchical scheduler; "
                    f"construct it with components=[...]"
                )
            scheduler.assign(task, component)
        self.tasks.append(task)
        self.sim.spawn(self.os.task_body(task, body), name=f"{self.name}.{name}")
        return task

    def add_process(self, runnable, name=None):
        """Run a plain SLDL process on this PE (unscheduled model)."""
        return self.sim.spawn(runnable, name=f"{self.name}.{name or 'proc'}")

    def add_driver(self, driver, irq_line, isr_name=None):
        """Attach a receiving bus driver: registers its ISR on the PIC."""
        self.drivers.append(driver)
        self.pic.register(irq_line, driver.isr, name=isr_name)
        return driver

    def on_boot(self, action):
        """Register a callable executed when the architecture boots."""
        self._boot_actions.append(action)

    def boot(self):
        """Start this PE's RTOS (called by the architecture bootstrap).

        Idempotent: a second boot — e.g. ``Architecture.run`` called
        again to extend a simulation — is a no-op; boot actions run once
        and the RTOS keeps its scheduling state.
        """
        if self._booted:
            return
        self._booted = True
        for action in self._boot_actions:
            action()
        if self.os is not None:
            self.os.start()

    # -- results ---------------------------------------------------------

    @property
    def metrics(self):
        return self.os.metrics if self.os is not None else None

    def component(self, name):
        """Look up one of this PE's resource servers by name."""
        if self.components is None:
            raise RuntimeError(f"PE {self.name!r} has no components")
        return self.components[name]
