"""Interrupt modeling: IRQ lines, sources and the interrupt controller.

In the paper's architecture model (Figure 3(b)), interrupt handlers are
generated inside the PEs as part of the bus drivers; an ISR signals the
main bus driver through a semaphore and returns via the RTOS model's
``interrupt_return``. Here:

* an :class:`IrqLine` is a named wire built on an SLDL event;
* an :class:`InterruptController` runs one dispatcher process per
  registered line; when the line is raised it executes the installed
  handler generator. Handlers run as plain SLDL processes — *not* RTOS
  tasks — so they model the asynchronous, anytime nature of interrupts
  (the RTOS model treats calls from them as ISR context);
* an :class:`InterruptSource` raises a line at programmed times or
  periodically (a timer).
"""

from repro.kernel.commands import Wait
from repro.kernel.events import Event
from repro.kernel.oracle import DecisionPoint


class IrqLine:
    """A named interrupt request wire."""

    def __init__(self, sim, name="irq"):
        self.sim = sim
        self.name = name
        self.event = Event(name)
        self.raise_count = 0
        #: armed FaultInjector (drop_irq faults); None = fault-free wire
        self.faults = None

    def raise_irq(self):
        """Assert the line (callable from any context)."""
        faults = self.faults
        if faults is not None and faults.drop_irq(self):
            # the assertion is lost before it reaches the controller
            return
        self.raise_count += 1
        self.sim.trace.record(self.sim.now, "irq", self.name, "raise")
        self.event.fire(self.sim)


class InterruptController:
    """Dispatches IRQ lines to their installed service routines.

    One PE has one controller. Handlers for distinct lines may execute
    concurrently at the SLDL level (they are not serialized by the RTOS —
    matching the model where ISRs preempt anything).
    """

    def __init__(self, sim, name="pic"):
        self.sim = sim
        self.name = name
        self.handlers = {}

    def register(self, line, handler_factory, name=None):
        """Install ``handler_factory`` (zero-arg callable returning a
        generator) as the service routine of ``line``; spawns the
        dispatcher process."""
        handler_name = name or f"{self.name}.isr.{line.name}"
        if line.name in self.handlers:
            raise ValueError(f"line {line.name!r} already has a handler")
        self.handlers[line.name] = handler_factory

        def _dispatcher():
            while True:
                yield Wait(line.event)
                self.sim.trace.record(
                    self.sim.now, "irq", handler_name, "service"
                )
                yield from handler_factory()

        self.sim.spawn(_dispatcher(), name=handler_name)


class InterruptSource:
    """Raises an IRQ line at programmed instants (external stimulus).

    ``jitter`` widens each programmed instant ``t`` into the arrival
    window ``[t, t + jitter]``. Without a schedule oracle the raise
    happens at ``t`` (slot 0) exactly as before; under an installed
    oracle each arrival becomes an ``irq`` decision point whose choices
    are the slots of the window, so :mod:`repro.explore` enumerates
    external-stimulus timing alongside scheduler interleavings.
    """

    def __init__(self, sim, line, times=(), period=None, count=None,
                 jitter=0):
        self.sim = sim
        self.line = line
        self.jitter = int(jitter)
        if self.jitter < 0:
            raise ValueError(f"negative jitter: {jitter}")
        for t in times:
            self._program(t)
        if period is not None:
            if count is None:
                raise ValueError("periodic source needs an explicit count")
            for i in range(1, count + 1):
                self._program(i * period)

    def _program(self, t):
        if self.jitter:
            self.sim.schedule_at(
                t, lambda t=t: self._arrive(t),
                label=f"irqslot:{self.line.name}",
            )
        else:
            self.sim.schedule_at(t, self.line.raise_irq)

    def _arrive(self, t):
        """Arrival-window head: pick the slot, raise now or reschedule."""
        oracle = self.sim.oracle
        if oracle is None:
            self.line.raise_irq()
            return
        slot = oracle.pick(DecisionPoint(
            "irq", tuple(f"t+{k}" for k in range(self.jitter + 1)),
            actor=self.line.name, time=self.sim.now,
        ))
        if slot == 0:
            self.line.raise_irq()
        else:
            self.sim.schedule_at(
                t + slot, self.line.raise_irq,
                label=f"irq:{self.line.name}",
            )
