"""Shared system bus with arbitration and transfer timing.

Communication synthesis (paper Figure 1) maps inter-PE channels onto a
bus; the bus model here provides occupancy arbitration and a transfer
delay of ``ceil(nbytes / width) * cycle_time``, enough to give inter-PE
messages realistic, contention-dependent latency.
"""

from repro.kernel.channel import Channel
from repro.kernel.commands import Notify, Wait, WaitFor
from repro.kernel.events import Event


class Bus(Channel):
    """A single-master-at-a-time bus.

    Arbitration: requesters queue; the release wakes all of them and the
    most urgent request (lowest ``priority`` value, FIFO among equals)
    re-acquires first. Acquisition order is tracked explicitly so the
    policy is deterministic.
    """

    def __init__(self, sim, name="bus", width=4, cycle_time=10):
        super().__init__(name)
        if width < 1 or cycle_time < 0:
            raise ValueError("bus width must be >=1 and cycle_time >= 0")
        self.sim = sim
        self.width = width
        self.cycle_time = cycle_time
        self.busy = False
        self._free_evt = Event(f"{name}.free")
        self._requests = []  # (priority, seq, master) of pending requests
        self._seq = 0
        self.transfer_count = 0
        self.busy_time = 0

    def transfer_cycles(self, nbytes):
        return -(-nbytes // self.width)  # ceil division

    def transfer(self, nbytes, master="?", priority=0):
        """Occupy the bus for one message of ``nbytes`` (generator)."""
        if nbytes <= 0:
            raise ValueError(f"transfer of {nbytes} bytes")
        request = (priority, self._seq, master)
        self._seq += 1
        self._requests.append(request)
        while self.busy or min(self._requests) != request:
            yield Wait(self._free_evt)
        self._requests.remove(request)
        self.busy = True
        duration = self.transfer_cycles(nbytes) * self.cycle_time
        started = self.sim.now
        if duration:
            yield WaitFor(duration)
        self.busy = False
        self.transfer_count += 1
        self.busy_time += self.sim.now - started
        self.sim.trace.record(
            self.sim.now, "chan", self.name, "transfer",
            master=master, nbytes=nbytes, start=started,
        )
        yield Notify(self._free_evt)
