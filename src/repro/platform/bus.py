"""Shared system bus with arbitration and transfer timing.

Communication synthesis (paper Figure 1) maps inter-PE channels onto a
bus; the bus model here provides occupancy arbitration and a transfer
delay of ``ceil(nbytes / width) * cycle_time``, enough to give inter-PE
messages realistic, contention-dependent latency.
"""

from repro.kernel.channel import Channel
from repro.kernel.commands import Notify, Wait, WaitFor
from repro.kernel.events import Event
from repro.rtos.errors import TaskKilled


class Bus(Channel):
    """A single-master-at-a-time bus.

    Arbitration: requesters queue; the release wakes all of them and the
    most urgent request (lowest ``priority`` value, FIFO among equals)
    re-acquires first. Acquisition order is tracked explicitly so the
    policy is deterministic.
    """

    def __init__(self, sim, name="bus", width=4, cycle_time=10):
        super().__init__(name)
        if width < 1 or cycle_time < 0:
            raise ValueError("bus width must be >=1 and cycle_time >= 0")
        self.sim = sim
        self.width = width
        self.cycle_time = cycle_time
        self.busy = False
        self._free_evt = Event(f"{name}.free")
        self._requests = []  # (priority, seq, master) of pending requests
        self._seq = 0
        self.transfer_count = 0
        self.busy_time = 0

    def transfer_cycles(self, nbytes):
        return -(-nbytes // self.width)  # ceil division

    def transfer(self, nbytes, master="?", priority=0, owner=None):
        """Occupy the bus for one message of ``nbytes`` (generator).

        With ``owner=`` (an RTOS task handle) the transfer is abortable:
        if the owning task is killed while queued, the wait additionally
        wakes on the task's preempt event and the request is withdrawn;
        if it is killed mid-transfer, the bus is released when the
        duration elapses. Either way :class:`TaskKilled` propagates so
        the task unwinds normally. Without an owner the same
        ``try/finally`` still guarantees that a closed/crashed requester
        never leaves a stale request queued or the bus stuck busy.
        """
        if nbytes <= 0:
            raise ValueError(f"transfer of {nbytes} bytes")
        request = (priority, self._seq, master)
        self._seq += 1
        self._requests.append(request)
        granted = False
        try:
            while self.busy or min(self._requests) != request:
                if owner is not None:
                    if owner.killed:
                        raise TaskKilled(owner.name)
                    yield Wait(self._free_evt, owner.preempt_evt)
                else:
                    yield Wait(self._free_evt)
            if owner is not None and owner.killed:
                raise TaskKilled(owner.name)
            self._requests.remove(request)
            self.busy = True
            granted = True
            duration = self.transfer_cycles(nbytes) * self.cycle_time
            started = self.sim.now
            if duration:
                yield WaitFor(duration)
            if owner is not None and owner.killed:
                # killed while occupying: the finally releases the bus
                # and wakes the queued requesters
                raise TaskKilled(owner.name)
            self.busy = False
            granted = False
            self.transfer_count += 1
            self.busy_time += self.sim.now - started
            self.sim.trace.record(
                self.sim.now, "chan", self.name, "transfer",
                master=master, nbytes=nbytes, start=started,
            )
            yield Notify(self._free_evt)
        finally:
            if granted:
                # unwound while occupying the bus: release it and wake
                # the queued requesters (fire, not Notify — the unwind
                # may run outside any process context)
                self.busy = False
                self._free_evt.fire(self.sim)
            elif request in self._requests:
                # unwound while still queued: withdraw the request; the
                # head of the queue may have been waiting on us losing
                # the arbitration race, so re-wake the others
                self._requests.remove(request)
                if self._requests and not self.busy:
                    self._free_evt.fire(self.sim)
