"""System architecture: PEs + busses + boot protocol."""

from repro.kernel.commands import WaitFor
from repro.kernel.simulator import Simulator
from repro.platform.bus import Bus
from repro.platform.pe import ProcessingElement


class Architecture:
    """A multi-PE system model.

    Owns the simulator, the PEs and the busses; ``run`` boots every PE
    (unlocking each local RTOS after all initial task activations of
    t=0, the standard boot pattern) and executes the simulation.
    """

    def __init__(self, sim=None, name="system"):
        self.sim = sim if sim is not None else Simulator()
        self.name = name
        self.pes = {}
        self.buses = {}
        self._booted = False

    def add_pe(self, name, sched=None, preemption="step", speed=1.0,
               components=None):
        """Add a processing element.

        ``speed`` scales the PE's task WCETs (heterogeneous cores);
        ``components=`` gives the PE a hierarchical scheduler whose
        top-level policy is ``sched`` (``"priority"``/``"edf"``) — see
        :class:`~repro.platform.pe.ProcessingElement`.
        """
        if name in self.pes:
            raise ValueError(f"duplicate PE name {name!r}")
        pe = ProcessingElement(self.sim, name, sched=sched,
                               preemption=preemption, speed=speed,
                               components=components)
        self.pes[name] = pe
        return pe

    def add_bus(self, name, width=4, cycle_time=10):
        if name in self.buses:
            raise ValueError(f"duplicate bus name {name!r}")
        bus = Bus(self.sim, name=name, width=width, cycle_time=cycle_time)
        self.buses[name] = bus
        return bus

    def run(self, until=None):
        """Boot all PEs and run the simulation.

        The first call spawns the bootstrap process (which unlocks every
        PE's RTOS after the t=0 activations settle). Subsequent calls
        simply *resume* the simulation — PEs are not re-booted, boot
        actions do not run again — so ``run(until=t1); run(until=t2)``
        advances one continuous timeline.
        """
        if not self._booted:
            self._booted = True

            def _boot():
                yield WaitFor(0)
                for pe in self.pes.values():
                    pe.boot()

            self.sim.spawn(_boot(), name=f"{self.name}.boot")
        self.sim.run(until=until)

    @property
    def trace(self):
        return self.sim.trace
