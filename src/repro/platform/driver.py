"""Bus drivers: message transport between PEs with interrupt signaling.

This is the Figure-3 communication structure: a sender on one PE pushes a
message across the bus; delivery raises an interrupt at the receiving PE,
whose ISR releases a semaphore; the receiving driver (called from a task
or behavior) blocks on that semaphore and then collects the data.

The driver is flavor-agnostic: give it a specification-model
:class:`~repro.channels.semaphore.Semaphore` for the unscheduled model,
or an :class:`~repro.channels.semaphore.RTOSSemaphore` plus the PE's
:class:`~repro.rtos.model.RTOSModel` for the architecture model.
"""

from collections import deque

from repro.kernel.channel import Channel
from repro.kernel.commands import TIMEOUT


class BusLink(Channel):
    """One directed message link mapped onto a shared bus.

    ``send`` occupies the bus for the message size and then raises the
    receiver's IRQ line. Payload delivery is modeled by a FIFO mailbox
    the receiving driver drains.
    """

    def __init__(self, sim, bus, irq_line, name=None, priority=0):
        super().__init__(name)
        self.sim = sim
        self.bus = bus
        self.irq_line = irq_line
        self.priority = priority
        self.pending = deque()

    def send(self, data, nbytes=4, master=None, owner=None):
        """Transfer ``data`` over the bus and interrupt the receiver.

        ``owner=`` (an RTOS task handle) makes the bus occupancy
        abortable if the sending task is killed mid-transfer — see
        :meth:`repro.platform.bus.Bus.transfer`.
        """
        yield from self.bus.transfer(
            nbytes, master=master or self.name, priority=self.priority,
            owner=owner,
        )
        self.pending.append(data)
        self.irq_line.raise_irq()

    def take(self):
        """Pop the oldest delivered message (driver-side, non-blocking)."""
        if not self.pending:
            raise RuntimeError(f"link {self.name!r} has no pending message")
        return self.pending.popleft()


class InterruptDriver(Channel):
    """Receiving-side bus driver of Figure 3.

    Parameters
    ----------
    link:
        The :class:`BusLink` delivering messages to this PE.
    semaphore:
        ``Semaphore`` (spec flavor) or ``RTOSSemaphore`` (refined
        flavor) used by the ISR to signal the driver.
    os_model:
        The PE's RTOS model; when given, the ISR ends with
        ``interrupt_return`` (architecture model). Omit in the
        unscheduled model.
    """

    def __init__(self, link, semaphore, os_model=None, name=None):
        super().__init__(name)
        self.link = link
        self.semaphore = semaphore
        self.os = os_model
        self.received = 0

    def isr(self):
        """Interrupt service routine (generator) — register this with the
        PE's interrupt controller for the link's IRQ line."""
        yield from self.semaphore.release()
        if self.os is not None:
            self.os.interrupt_return()

    def recv(self, timeout=None):
        """Block until a message arrived, then return it (generator).

        Called from behaviors (spec model) or tasks (architecture
        model); the blocking goes through the semaphore, so the refined
        flavor is fully under RTOS control. With ``timeout=`` the wait
        expires after that much simulated time and the call evaluates to
        the kernel's :data:`~repro.kernel.commands.TIMEOUT` sentinel —
        the basis for modeling driver-level communication deadlines.
        """
        if timeout is None:
            yield from self.semaphore.acquire()
        else:
            got = yield from self.semaphore.acquire(timeout=timeout)
            if not got:
                return TIMEOUT
        self.received += 1
        return self.link.take()
