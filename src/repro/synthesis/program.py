"""Assembled program representation."""

from repro.analysis.loc import count_source_lines


class Program:
    """Output of the assembler: an image plus its metadata.

    ``image`` maps word addresses to either integers (data words) or
    decoded instruction tuples ``(opcode, operands)`` — the ISS executes
    instruction objects directly (an interpretive ISS, like most fast
    instruction-set simulators, rather than re-decoding bit patterns).
    """

    def __init__(self, image, entry, symbols, source):
        self.image = image
        self.entry = entry
        self.symbols = symbols
        self.source = source

    @property
    def loc(self):
        """Non-blank, non-comment assembly source lines."""
        return count_source_lines(self.source)

    @property
    def size(self):
        """Occupied memory words."""
        return len(self.image)

    def symbol(self, name):
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None

    def __repr__(self):
        return (
            f"Program(entry={self.entry:#06x}, words={self.size}, "
            f"loc={self.loc})"
        )
