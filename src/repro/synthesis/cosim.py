"""Co-simulation: the ISS embedded in the SLDL simulation.

The paper's implementation model (Figure 2(c)) runs the compiled
application + real RTOS inside an instruction-set simulator *as part of
the system co-simulation in the SLDL*. :class:`ISSProcessor` is that
bridge: an SLDL process advances the ISS in bounded chunks, mapping
cycles to simulated time through the clock period, and SLDL-side IRQ
lines are forwarded onto the core's interrupt pins.

Timing skew between the two time bases is bounded by ``chunk`` cycles
(interrupts raised from the SLDL side are observed by the core at its
next chunk boundary at the latest).
"""

from repro.kernel.commands import Wait, WaitFor
from repro.synthesis.isa import IRQ_EXTERNAL


class ISSProcessor:
    """One ISS core wrapped as an SLDL process.

    Parameters
    ----------
    sim:
        The SLDL :class:`~repro.kernel.simulator.Simulator`.
    iss:
        The loaded :class:`~repro.synthesis.iss.ISS` core.
    clock_period:
        Simulated time units per cycle.
    chunk:
        Cycles executed per SLDL scheduling quantum.
    """

    def __init__(self, sim, iss, name="cpu", clock_period=1, chunk=200):
        self.sim = sim
        self.iss = iss
        self.name = name
        self.clock_period = clock_period
        self.chunk = chunk
        self.process = sim.spawn(self._run(), name=name)

    def _run(self):
        iss = self.iss
        while not iss.halted:
            executed = iss.run(max_cycles=self.chunk)
            if executed == 0:
                break
            yield WaitFor(executed * self.clock_period)
        self.sim.trace.record(
            self.sim.now, "user", self.name, "halt",
            cycles=iss.cycles, exit_code=iss.exit_code,
        )

    def connect_irq(self, line, irq=IRQ_EXTERNAL):
        """Forward an SLDL IRQ line onto a core interrupt pin."""

        def _bridge():
            while True:
                yield Wait(line.event)
                self.iss.raise_irq(irq)
                if self.iss.halted:
                    return

        self.sim.spawn(_bridge(), name=f"{self.name}.irq{irq}")

    @property
    def halted(self):
        return self.iss.halted

    def console_marks(self):
        """Console records converted to simulated time: (time, value)."""
        return [
            (cycle * self.clock_period, value)
            for cycle, value in self.iss.console
        ]
