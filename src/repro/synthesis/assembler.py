"""Two-pass assembler for the target ISA.

Syntax (one statement per line; ``;`` starts a comment)::

    .equ    TICKS, 100          ; symbolic constant
    .org    0x0100              ; set location counter
    .word   1, 2, TICKS         ; literal data words
    .space  8                   ; reserve zeroed words
    loop:                       ; label
        ldi   r1, TICKS
        addi  r1, r1, -1
        st    r1, [r2 + 4]      ; memory operand
        bne   loop
        syscall 3

Immediates accept decimal, hex (0x..), negated symbols (``-NAME``) and
``label`` references. Each instruction occupies one memory word.
"""

import re

from repro.synthesis import isa
from repro.synthesis.program import Program


class AssemblerError(Exception):
    """Syntax or semantic error in assembly source, with line info."""

    def __init__(self, lineno, line, message):
        super().__init__(f"line {lineno}: {message}: {line.strip()!r}")
        self.lineno = lineno


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):(.*)$")
_MEM_RE = re.compile(
    r"^\[\s*(r\d+|sp|lr)\s*(?:([+-])\s*([^\]]+))?\s*\]$"
)

_REG_ALIASES = {"sp": isa.SP, "lr": isa.LR}


def assemble(source, origin=0x0100):
    """Assemble ``source`` into a :class:`Program`.

    ``origin`` is the default load address when the source does not
    start with ``.org``.
    """
    statements, symbols = _first_pass(source, origin)
    image = {}
    for address, lineno, line, kind, payload in statements:
        if kind == "word":
            image[address] = _resolve(payload, symbols, lineno, line)
        elif kind == "space":
            image[address] = 0
        else:
            opcode, raw_operands = payload
            operands = _encode_operands(
                opcode, raw_operands, symbols, lineno, line
            )
            image[address] = (opcode, operands)
    entry = symbols.get("_start", origin)
    return Program(image, entry, symbols, source)


def _first_pass(source, origin):
    """Lay out statements, collect symbols."""
    address = origin
    symbols = {}
    statements = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        stripped = line.strip()
        while True:
            match = _LABEL_RE.match(stripped)
            if not match:
                break
            label = match.group(1)
            if label in symbols:
                raise AssemblerError(lineno, raw, f"duplicate label {label!r}")
            symbols[label] = address
            stripped = match.group(2).strip()
        if not stripped:
            continue
        if stripped.startswith(".equ"):
            body = stripped[4:].strip()
            try:
                name, value = [p.strip() for p in body.split(",", 1)]
            except ValueError:
                raise AssemblerError(lineno, raw, ".equ needs NAME, VALUE")
            symbols[name] = _parse_int(value, symbols, lineno, raw)
            continue
        if stripped.startswith(".org"):
            address = _parse_int(stripped[4:].strip(), symbols, lineno, raw)
            continue
        if stripped.startswith(".word"):
            for item in stripped[5:].split(","):
                statements.append((address, lineno, raw, "word", item.strip()))
                address += 1
            continue
        if stripped.startswith(".space"):
            count = _parse_int(stripped[6:].strip(), symbols, lineno, raw)
            for _ in range(count):
                statements.append((address, lineno, raw, "space", None))
                address += 1
            continue
        if stripped.startswith("."):
            raise AssemblerError(lineno, raw, "unknown directive")
        opcode, _, rest = stripped.partition(" ")
        opcode = opcode.lower()
        if opcode not in isa.INSTRUCTIONS:
            raise AssemblerError(lineno, raw, f"unknown opcode {opcode!r}")
        raw_operands = [p.strip() for p in _split_operands(rest)] if rest.strip() else []
        statements.append((address, lineno, raw, "insn", (opcode, raw_operands)))
        address += 1
    return statements, symbols


def _split_operands(text):
    """Split on commas that are not inside a memory bracket."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _encode_operands(opcode, raw_operands, symbols, lineno, line):
    spec, _ = isa.INSTRUCTIONS[opcode]
    if len(raw_operands) != len(spec):
        raise AssemblerError(
            lineno, line,
            f"{opcode} expects {len(spec)} operands, got {len(raw_operands)}",
        )
    encoded = []
    for kind, text in zip(spec, raw_operands):
        if kind == "r":
            encoded.append(_parse_reg(text, lineno, line))
        elif kind == "i":
            encoded.append(_resolve(text, symbols, lineno, line))
        elif kind == "m":
            match = _MEM_RE.match(text.strip())
            if not match:
                raise AssemblerError(lineno, line, f"bad memory operand {text!r}")
            base = _parse_reg(match.group(1), lineno, line)
            offset = 0
            if match.group(3) is not None:
                offset = _resolve(match.group(3).strip(), symbols, lineno, line)
                if match.group(2) == "-":
                    offset = -offset
            encoded.append((base, offset))
        else:  # pragma: no cover - spec strings are internal
            raise AssemblerError(lineno, line, f"bad operand spec {kind!r}")
    return tuple(encoded)


def _parse_reg(text, lineno, line):
    text = text.strip().lower()
    if text in _REG_ALIASES:
        return _REG_ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        index = int(text[1:])
        if 0 <= index < isa.NUM_REGS:
            return index
    raise AssemblerError(lineno, line, f"bad register {text!r}")


def _resolve(text, symbols, lineno, line):
    return _parse_int(text, symbols, lineno, line)


def _parse_int(text, symbols, lineno, line):
    text = text.strip()
    negative = text.startswith("-")
    if negative:
        text = text[1:].strip()
    if text in symbols:
        value = symbols[text]
    else:
        try:
            value = int(text, 0)
        except ValueError:
            raise AssemblerError(
                lineno, line, f"undefined symbol or bad number {text!r}"
            ) from None
    return -value if negative else value
