"""Software-synthesis backend: ISA, assembler, ISS, RTOS kernel, codegen.

The implementation-model substrate (paper Figures 1 and 2(c)): compiled
application code linked against a small custom RTOS kernel, executing on
a cycle-counting instruction-set simulator, optionally co-simulated
inside the SLDL.
"""

from repro.synthesis import isa
from repro.synthesis.assembler import AssemblerError, assemble
from repro.synthesis.codegen import (
    CodeGenerator,
    Compute,
    Copy,
    Halt,
    Loop,
    Mark,
    SemPost,
    SemWait,
    Sleep,
    TaskProgram,
)
from repro.synthesis.cosim import ISSProcessor
from repro.synthesis.iss import ISS, ISSError
from repro.synthesis.kernel_rt import (
    ADDR_CTXSW,
    ADDR_TICKS,
    SYS_EXIT,
    SYS_GETTICKS,
    SYS_SEM_POST,
    SYS_SEM_WAIT,
    SYS_SLEEP,
    SYS_YIELD,
    build_kernel_image,
)
from repro.synthesis.program import Program

__all__ = [
    "ADDR_CTXSW",
    "ADDR_TICKS",
    "AssemblerError",
    "CodeGenerator",
    "Compute",
    "Copy",
    "Halt",
    "ISS",
    "ISSError",
    "ISSProcessor",
    "Loop",
    "Mark",
    "Program",
    "SemPost",
    "SemWait",
    "Sleep",
    "SYS_EXIT",
    "SYS_GETTICKS",
    "SYS_SEM_POST",
    "SYS_SEM_WAIT",
    "SYS_SLEEP",
    "SYS_YIELD",
    "TaskProgram",
    "assemble",
    "build_kernel_image",
    "isa",
]
