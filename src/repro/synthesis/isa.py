"""Instruction-set architecture of the target processor.

A small 32-bit load/store DSP-style core standing in for the paper's
Motorola DSP56600 (see DESIGN.md, substitutions). Enough architecture to
host a real RTOS kernel: interrupts with hardware stacking, a syscall
trap, and memory-mapped devices.

Programmer's model
------------------
* 16 general registers ``r0``..``r15``; by software convention ``r14``
  is the stack pointer (``sp``, grows downward) and ``r15`` the link
  register (``lr``).
* Flags: ``Z`` (zero), ``N`` (negative), ``IE`` (interrupt enable).
* Word-addressed memory (one 32-bit value per address), 64 Ki words.

Traps and interrupts
--------------------
On an interrupt (or ``syscall``) the core pushes the flags word and the
return PC onto the *current* stack, clears ``IE`` and jumps to the
handler address found in the vector table. ``iret`` pops PC and flags
(restoring ``IE``). Because the entire cut context lives on the
interrupted task's stack, an RTOS switches tasks simply by switching
stack pointers — the classic design this enables is exercised by
:mod:`repro.synthesis.kernel_rt`.

Vector table (fixed word addresses):

====== =============================
 0x02   syscall handler address
 0x03   timer IRQ handler address
 0x04   external IRQ handler address
====== =============================
"""

NUM_REGS = 16
SP = 14  # stack pointer register index
LR = 15  # link register index

MEM_SIZE = 1 << 16

# vector table
VEC_SYSCALL = 0x02
VEC_TIMER = 0x03
VEC_EXTERNAL = 0x04

# IRQ line ids (priority = lower id first)
IRQ_TIMER = 0
IRQ_EXTERNAL = 1

# memory-mapped device registers
MMIO_BASE = 0xFF00
MMIO_TIMER_PERIOD = 0xFF00  # write: periodic timer period in cycles (0=off)
MMIO_CYCLES = 0xFF01  # read: current cycle count (low 32 bits)
MMIO_CONSOLE = 0xFF02  # write: emit (value, cycle) log record
MMIO_HALT = 0xFF03  # write: stop the core (exit code)
MMIO_DEV_BASE = 0xFF10  # start of application device registers

# flags word bits
FLAG_Z = 1 << 0
FLAG_N = 1 << 1
FLAG_IE = 1 << 2

MASK32 = 0xFFFFFFFF


def to_signed(value):
    """Interpret a 32-bit word as a signed integer."""
    value &= MASK32
    return value - (1 << 32) if value & (1 << 31) else value


#: opcode -> (operand spec, cycle cost).
#: operand spec letters: r = register, i = immediate/symbol, m = [reg+off]
INSTRUCTIONS = {
    "nop": ("", 1),
    "halt": ("", 1),
    "ldi": ("ri", 1),
    "mov": ("rr", 1),
    "add": ("rrr", 1),
    "sub": ("rrr", 1),
    "mul": ("rrr", 2),
    "div": ("rrr", 12),
    "and": ("rrr", 1),
    "or": ("rrr", 1),
    "xor": ("rrr", 1),
    "shl": ("rrr", 1),
    "shr": ("rrr", 1),
    "addi": ("rri", 1),
    "subi": ("rri", 1),
    "muli": ("rri", 2),
    "ld": ("rm", 2),
    "st": ("rm", 2),
    "push": ("r", 2),
    "pop": ("r", 2),
    "cmp": ("rr", 1),
    "cmpi": ("ri", 1),
    "jmp": ("i", 2),
    "jr": ("r", 2),
    "beq": ("i", 2),
    "bne": ("i", 2),
    "blt": ("i", 2),
    "bge": ("i", 2),
    "ble": ("i", 2),
    "bgt": ("i", 2),
    "call": ("i", 3),
    "ret": ("", 3),
    "syscall": ("i", 6),
    "iret": ("", 4),
    "ei": ("", 1),
    "di": ("", 1),
}
