"""Disassembler: program images back to readable assembly listings.

Used for debugging generated code and for inspecting what the code
generator produced; round-trips with the assembler (modulo labels,
which are recovered from the program's symbol table where possible).
"""

from repro.synthesis import isa


def _reg(index):
    if index == isa.SP:
        return "sp"
    if index == isa.LR:
        return "lr"
    return f"r{index}"


def _address_labels(program):
    """address -> preferred label (first symbol at that address)."""
    labels = {}
    for name, value in program.symbols.items():
        if isinstance(value, int) and value not in labels:
            labels.setdefault(value, name)
    return labels


def format_instruction(opcode, operands, labels=None):
    """One instruction as assembly text."""
    labels = labels or {}
    spec, _ = isa.INSTRUCTIONS[opcode]
    parts = []
    for kind, operand in zip(spec, operands):
        if kind == "r":
            parts.append(_reg(operand))
        elif kind == "i":
            if opcode in ("jmp", "beq", "bne", "blt", "bge", "ble", "bgt",
                          "call") and operand in labels:
                parts.append(labels[operand])
            else:
                parts.append(str(operand))
        else:  # memory operand
            base, offset = operand
            if offset == 0:
                parts.append(f"[{_reg(base)}]")
            elif offset > 0:
                parts.append(f"[{_reg(base)} + {offset}]")
            else:
                parts.append(f"[{_reg(base)} - {-offset}]")
    if parts:
        return f"{opcode} {', '.join(parts)}"
    return opcode


def disassemble(program, start=None, end=None):
    """Listing of the program image as ``(address, text)`` pairs.

    Data words are rendered as ``.word``; label lines are interleaved
    from the symbol table.
    """
    labels = _address_labels(program)
    addresses = sorted(
        a for a in program.image
        if (start is None or a >= start) and (end is None or a < end)
    )
    lines = []
    for address in addresses:
        if address in labels:
            lines.append((address, f"{labels[address]}:"))
        value = program.image[address]
        if isinstance(value, tuple):
            text = "    " + format_instruction(value[0], value[1], labels)
        else:
            text = f"    .word {value}"
        lines.append((address, text))
    return lines


def listing(program, **kwargs):
    """The disassembly as one printable string with addresses."""
    return "\n".join(
        f"{address:#06x}  {text}"
        for address, text in disassemble(program, **kwargs)
    )
