"""Cycle-counting instruction-set simulator.

Executes assembled :class:`~repro.synthesis.program.Program` images with
per-instruction cycle costs, two prioritized interrupt lines (timer and
external), a syscall trap, and memory-mapped devices — the execution
substrate of the implementation model (paper Figure 2(c)).

The ISS can run standalone (``run``) or be embedded as a processing
element inside the SLDL simulation (see
:class:`~repro.synthesis.cosim.ISSProcessor`), which is how the paper
co-simulates the compiled software with the rest of the system.
"""

from repro.synthesis import isa
from repro.synthesis.isa import (
    FLAG_IE,
    FLAG_N,
    FLAG_Z,
    MASK32,
    MEM_SIZE,
    MMIO_BASE,
    MMIO_CONSOLE,
    MMIO_CYCLES,
    MMIO_HALT,
    MMIO_TIMER_PERIOD,
    SP,
    LR,
    VEC_EXTERNAL,
    VEC_SYSCALL,
    VEC_TIMER,
    IRQ_TIMER,
    to_signed,
)


class ISSError(Exception):
    """Illegal execution (bad PC, unmapped device, stack issues)."""


class ISS:
    """The processor core.

    Parameters
    ----------
    program:
        Assembled :class:`Program` to load.
    devices:
        Optional ``{address: device}`` map for application MMIO; a
        device implements ``read(iss)`` and/or ``write(iss, value)``.
    """

    def __init__(self, program, devices=None):
        self.memory = [0] * MEM_SIZE
        for address, value in program.image.items():
            self.memory[address] = value
        self.program = program
        self.regs = [0] * isa.NUM_REGS
        self.pc = program.entry
        self.flags = 0
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        self.exit_code = None
        self.pending_irqs = set()
        self.timer_period = 0
        self._next_timer = None
        self.devices = dict(devices or {})
        #: (cycle, value) records written to the console MMIO register
        self.console = []
        #: counts per syscall number (filled by the kernel convention
        #: of writing the number in r1)
        self.syscall_counts = {}

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, max_cycles=10_000_000):
        """Execute until halt or the cycle budget is exhausted.

        Returns the number of cycles consumed in this call.
        """
        start = self.cycles
        limit = start + max_cycles
        while not self.halted and self.cycles < limit:
            self.step()
        return self.cycles - start

    def run_until(self, cycle):
        """Execute until the cycle counter reaches ``cycle`` (or halt)."""
        while not self.halted and self.cycles < cycle:
            self.step()

    def step(self):
        """Execute one instruction (servicing interrupts first)."""
        if self.halted:
            return
        self._tick_timer()
        if self.pending_irqs and (self.flags & FLAG_IE):
            self._take_interrupt()
        insn = self.memory[self.pc]
        if not isinstance(insn, tuple):
            raise ISSError(
                f"pc={self.pc:#06x}: not an instruction ({insn!r})"
            )
        opcode, operands = insn
        self.instructions += 1
        self.cycles += isa.INSTRUCTIONS[opcode][1]
        self.pc += 1
        getattr(self, f"_op_{opcode}")(*operands)

    def raise_irq(self, line):
        """Assert an interrupt line (from devices or the co-simulation)."""
        self.pending_irqs.add(line)

    # ------------------------------------------------------------------
    # interrupts and timer
    # ------------------------------------------------------------------

    def _tick_timer(self):
        if self._next_timer is not None and self.cycles >= self._next_timer:
            self.pending_irqs.add(IRQ_TIMER)
            self._next_timer += self.timer_period

    def _take_interrupt(self):
        line = min(self.pending_irqs)
        self.pending_irqs.discard(line)
        vector = VEC_TIMER if line == IRQ_TIMER else VEC_EXTERNAL
        self._push(self.flags)
        self._push(self.pc)
        self.flags &= ~FLAG_IE
        self.pc = self.memory[vector]
        self.cycles += 4  # interrupt entry latency

    # ------------------------------------------------------------------
    # memory and stack
    # ------------------------------------------------------------------

    def _load(self, address):
        address &= 0xFFFF
        if address >= MMIO_BASE:
            return self._mmio_read(address)
        value = self.memory[address]
        if isinstance(value, tuple):
            raise ISSError(f"load of instruction word at {address:#06x}")
        return value & MASK32

    def _store(self, address, value):
        address &= 0xFFFF
        if address >= MMIO_BASE:
            self._mmio_write(address, value & MASK32)
            return
        self.memory[address] = value & MASK32

    def _push(self, value):
        self.regs[SP] = (self.regs[SP] - 1) & MASK32
        self._store(self.regs[SP], value)

    def _pop(self):
        value = self._load(self.regs[SP])
        self.regs[SP] = (self.regs[SP] + 1) & MASK32
        return value

    def _mmio_read(self, address):
        if address == MMIO_CYCLES:
            return self.cycles & MASK32
        device = self.devices.get(address)
        if device is None or not hasattr(device, "read"):
            raise ISSError(f"read from unmapped device {address:#06x}")
        return device.read(self) & MASK32

    def _mmio_write(self, address, value):
        if address == MMIO_TIMER_PERIOD:
            self.timer_period = value
            self._next_timer = self.cycles + value if value else None
            return
        if address == MMIO_CONSOLE:
            self.console.append((self.cycles, to_signed(value)))
            return
        if address == MMIO_HALT:
            self.halted = True
            self.exit_code = to_signed(value)
            return
        device = self.devices.get(address)
        if device is None or not hasattr(device, "write"):
            raise ISSError(f"write to unmapped device {address:#06x}")
        device.write(self, value)

    # ------------------------------------------------------------------
    # flags
    # ------------------------------------------------------------------

    def _set_zn(self, value):
        value &= MASK32
        self.flags &= ~(FLAG_Z | FLAG_N)
        if value == 0:
            self.flags |= FLAG_Z
        if value & (1 << 31):
            self.flags |= FLAG_N
        return value

    # ------------------------------------------------------------------
    # instruction semantics
    # ------------------------------------------------------------------

    def _op_nop(self):
        pass

    def _op_halt(self):
        self.halted = True

    def _op_ldi(self, rd, imm):
        self.regs[rd] = imm & MASK32

    def _op_mov(self, rd, rs):
        self.regs[rd] = self.regs[rs]

    def _binary(self, rd, ra, rb, fn):
        self.regs[rd] = self._set_zn(
            fn(to_signed(self.regs[ra]), to_signed(self.regs[rb]))
        )

    def _op_add(self, rd, ra, rb):
        self._binary(rd, ra, rb, lambda a, b: a + b)

    def _op_sub(self, rd, ra, rb):
        self._binary(rd, ra, rb, lambda a, b: a - b)

    def _op_mul(self, rd, ra, rb):
        self._binary(rd, ra, rb, lambda a, b: a * b)

    def _op_div(self, rd, ra, rb):
        divisor = to_signed(self.regs[rb])
        if divisor == 0:
            raise ISSError(f"division by zero at pc={self.pc - 1:#06x}")
        self._binary(rd, ra, rb, lambda a, b: int(a / b))

    def _op_and(self, rd, ra, rb):
        self.regs[rd] = self._set_zn(self.regs[ra] & self.regs[rb])

    def _op_or(self, rd, ra, rb):
        self.regs[rd] = self._set_zn(self.regs[ra] | self.regs[rb])

    def _op_xor(self, rd, ra, rb):
        self.regs[rd] = self._set_zn(self.regs[ra] ^ self.regs[rb])

    def _op_shl(self, rd, ra, rb):
        self.regs[rd] = self._set_zn(self.regs[ra] << (self.regs[rb] & 31))

    def _op_shr(self, rd, ra, rb):
        self.regs[rd] = self._set_zn(self.regs[ra] >> (self.regs[rb] & 31))

    def _op_addi(self, rd, ra, imm):
        self.regs[rd] = self._set_zn(to_signed(self.regs[ra]) + imm)

    def _op_subi(self, rd, ra, imm):
        self.regs[rd] = self._set_zn(to_signed(self.regs[ra]) - imm)

    def _op_muli(self, rd, ra, imm):
        self.regs[rd] = self._set_zn(to_signed(self.regs[ra]) * imm)

    def _op_ld(self, rd, mem):
        base, offset = mem
        self.regs[rd] = self._load(to_signed(self.regs[base]) + offset)

    def _op_st(self, rs, mem):
        base, offset = mem
        self._store(to_signed(self.regs[base]) + offset, self.regs[rs])

    def _op_push(self, ra):
        self._push(self.regs[ra])

    def _op_pop(self, rd):
        self.regs[rd] = self._pop()

    def _op_cmp(self, ra, rb):
        self._set_zn(to_signed(self.regs[ra]) - to_signed(self.regs[rb]))

    def _op_cmpi(self, ra, imm):
        self._set_zn(to_signed(self.regs[ra]) - imm)

    def _op_jmp(self, target):
        self.pc = target

    def _op_jr(self, ra):
        self.pc = self.regs[ra] & 0xFFFF

    def _op_beq(self, target):
        if self.flags & FLAG_Z:
            self.pc = target

    def _op_bne(self, target):
        if not self.flags & FLAG_Z:
            self.pc = target

    def _op_blt(self, target):
        if self.flags & FLAG_N:
            self.pc = target

    def _op_bge(self, target):
        if not self.flags & FLAG_N:
            self.pc = target

    def _op_ble(self, target):
        if self.flags & (FLAG_N | FLAG_Z):
            self.pc = target

    def _op_bgt(self, target):
        if not self.flags & (FLAG_N | FLAG_Z):
            self.pc = target

    def _op_call(self, target):
        self.regs[LR] = self.pc
        self.pc = target

    def _op_ret(self):
        self.pc = self.regs[LR] & 0xFFFF

    def _op_syscall(self, number):
        self.syscall_counts[number] = self.syscall_counts.get(number, 0) + 1
        self.regs[1] = number & MASK32
        self._push(self.flags)
        self._push(self.pc)
        self.flags &= ~FLAG_IE
        self.pc = self.memory[VEC_SYSCALL]

    def _op_iret(self):
        self.pc = self._pop() & 0xFFFF
        self.flags = self._pop()

    def _op_ei(self):
        self.flags |= FLAG_IE

    def _op_di(self):
        self.flags &= ~FLAG_IE
