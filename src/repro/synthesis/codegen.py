"""Software synthesis: architecture-model tasks → target assembly.

The backend of the design flow (paper Figure 1): each task of the
architecture model is described by a small IR — timed computation,
semaphore operations, data movement, loops, markers — and compiled into
assembly that calls the custom RTOS kernel
(:mod:`repro.synthesis.kernel_rt`) through its syscall ABI. The RTOS
*model* services used in the architecture model map onto kernel
services exactly as the paper describes for the backend.

IR → code mapping:

=================  ==============================================
``Compute(c)``     calibrated burn loop consuming ~c cycles
``SemWait(s)``     ``syscall SYS_SEM_WAIT`` with ``r2 = s``
``SemPost(s)``     ``syscall SYS_SEM_POST``
``Sleep(t)``       ``syscall SYS_SLEEP``
``Mark(v)``        write ``v`` to the console MMIO (timestamped)
``Copy(...)``      word-by-word memory copy (real data movement)
``Loop(n, body)``  counted loop around nested ops
``Halt(code)``     stop the core via the halt MMIO register
=================  ==============================================
"""

import itertools
from dataclasses import dataclass, field

from repro.synthesis import isa, kernel_rt
from repro.synthesis.assembler import assemble


@dataclass(frozen=True)
class Compute:
    cycles: int


@dataclass(frozen=True)
class SemWait:
    sem: int


@dataclass(frozen=True)
class SemPost:
    sem: int


@dataclass(frozen=True)
class Sleep:
    ticks: int


@dataclass(frozen=True)
class Mark:
    value: int


@dataclass(frozen=True)
class Copy:
    src: int
    dst: int
    nwords: int


@dataclass(frozen=True)
class Loop:
    count: int
    body: tuple

    def __init__(self, count, body):
        object.__setattr__(self, "count", count)
        object.__setattr__(self, "body", tuple(body))


@dataclass(frozen=True)
class Halt:
    code: int = 0


@dataclass
class TaskProgram:
    """One software task of the implementation model."""

    name: str
    priority: int
    ops: list = field(default_factory=list)

    @property
    def entry(self):
        return f"task_{self.name}"


#: loop-counter registers by nesting depth
_LOOP_REGS = (8, 9, 10)
_MAX_NESTING = len(_LOOP_REGS)


class CodeGenerator:
    """Generates the complete implementation-model program."""

    def __init__(self, timer_period=500, ext_sem=0):
        self.timer_period = timer_period
        self.ext_sem = ext_sem
        self._labels = itertools.count()

    def generate(self, tasks):
        """Assembly source for ``tasks`` linked with the RTOS kernel."""
        app_lines = [
            "; ---------------- generated application ----------------",
            f".equ CONSOLE, {isa.MMIO_CONSOLE:#x}",
            f".equ HALTREG, {isa.MMIO_HALT:#x}",
        ]
        for task in tasks:
            app_lines.append(f"{task.entry}:")
            app_lines.extend(self._emit_ops(task.ops, depth=0))
            # a task falling off its op list exits cleanly
            app_lines.append(f"    syscall {kernel_rt.SYS_EXIT}")
        task_defs = [(t.entry, t.priority) for t in tasks]
        return kernel_rt.build_kernel_image(
            task_defs,
            timer_period=self.timer_period,
            ext_sem=self.ext_sem,
            app_asm="\n".join(app_lines),
        )

    def build(self, tasks, devices=None):
        """Generate, assemble and load: returns ``(iss, program)``."""
        from repro.synthesis.iss import ISS

        source = self.generate(tasks)
        program = assemble(source)
        return ISS(program, devices=devices), program

    # ------------------------------------------------------------------

    def _label(self, stem):
        return f"{stem}_{next(self._labels)}"

    def _emit_ops(self, ops, depth):
        lines = []
        for op in ops:
            lines.extend(self._emit_op(op, depth))
        return lines

    def _emit_op(self, op, depth):
        if isinstance(op, Compute):
            return self._emit_compute(op.cycles)
        if isinstance(op, SemWait):
            return [
                f"    ldi r2, {op.sem}",
                f"    syscall {kernel_rt.SYS_SEM_WAIT}",
            ]
        if isinstance(op, SemPost):
            return [
                f"    ldi r2, {op.sem}",
                f"    syscall {kernel_rt.SYS_SEM_POST}",
            ]
        if isinstance(op, Sleep):
            return [
                f"    ldi r2, {op.ticks}",
                f"    syscall {kernel_rt.SYS_SLEEP}",
            ]
        if isinstance(op, Mark):
            return [
                "    ldi r6, CONSOLE",
                f"    ldi r7, {op.value}",
                "    st r7, [r6]",
            ]
        if isinstance(op, Copy):
            label = self._label("copy")
            return [
                f"    ldi r5, {op.src:#x}",
                f"    ldi r6, {op.dst:#x}",
                f"    ldi r7, {op.nwords}",
                f"{label}:",
                "    ld r4, [r5]",
                "    st r4, [r6]",
                "    addi r5, r5, 1",
                "    addi r6, r6, 1",
                "    subi r7, r7, 1",
                f"    bgt {label}",
            ]
        if isinstance(op, Loop):
            if depth >= _MAX_NESTING:
                raise ValueError(f"loop nesting deeper than {_MAX_NESTING}")
            reg = _LOOP_REGS[depth]
            label = self._label("loop")
            lines = [f"    ldi r{reg}, {op.count}", f"{label}:"]
            lines.extend(self._emit_ops(op.body, depth + 1))
            lines.extend(
                [
                    f"    subi r{reg}, r{reg}, 1",
                    f"    bgt {label}",
                ]
            )
            return lines
        if isinstance(op, Halt):
            return [
                "    ldi r6, HALTREG",
                f"    ldi r7, {op.code}",
                "    st r7, [r6]",
            ]
        raise TypeError(f"unknown IR op {op!r}")

    def _emit_compute(self, cycles):
        """Burn ~``cycles`` cycles: ldi(1) + n*(subi 1 + bgt 2) + pad."""
        if cycles < 1:
            return []
        iterations = max(0, (cycles - 1) // 3)
        lines = []
        consumed = 0
        if iterations:
            label = self._label("burn")
            lines = [
                f"    ldi r5, {iterations}",
                f"{label}:",
                "    subi r5, r5, 1",
                f"    bgt {label}",
            ]
            consumed = 1 + 3 * iterations
        lines.extend(["    nop"] * max(0, cycles - consumed))
        return lines
