"""On-disk JSON result cache for sweep runs.

One file per run config, named by the config's content hash, holding the
run's JSON result plus enough metadata to detect staleness. A record is
served only when both the config hash *and* the package version match —
bumping ``repro.__version__`` invalidates every cached point, and any
parameter change produces a different hash. Results that are not
JSON-serializable are silently not cached (the run still succeeds).
"""

import json
import os
import pathlib
import tempfile

import repro

#: default cache location, relative to the current working directory
DEFAULT_CACHE_DIR = ".farm_cache"


class ResultCache:
    """Directory of ``<config-hash>.json`` result records."""

    def __init__(self, root=DEFAULT_CACHE_DIR, version=None):
        self.root = pathlib.Path(root)
        self.version = version if version is not None else repro.__version__

    def _path(self, config):
        return self.root / f"{config.key()}.json"

    def get(self, config):
        """The cached record for ``config``, or None (miss/stale)."""
        path = self._path(config)
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if record.get("version") != self.version:
            return None
        if record.get("target") != config.target:
            return None
        return record

    def put(self, config, result, elapsed):
        """Store a successful run; atomic write (tmp file + rename)."""
        record = {
            "key": config.key(),
            "target": config.target,
            "params": config.kwargs,
            "version": self.version,
            "result": result,
            "elapsed": elapsed,
        }
        try:
            payload = json.dumps(record, indent=1, sort_keys=True)
        except (TypeError, ValueError):
            return False  # non-JSON result: run fine, just not cached
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, self._path(config))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def invalidate(self, config=None):
        """Drop one config's record, or the whole cache (config=None).

        Returns the number of records removed.
        """
        if config is not None:
            try:
                self._path(config).unlink()
                return 1
            except OSError:
                return 0
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self):
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self):
        return f"ResultCache({str(self.root)!r}, {len(self)} records)"
