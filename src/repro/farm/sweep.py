"""Declarative experiment-sweep specifications.

A sweep is a *target* (a callable resolvable by dotted path, so worker
processes can import it) plus a parameter space: fixed base parameters,
grid axes (cartesian product) and explicit extra points. :meth:`SweepSpec.
expand` turns it into a list of hashable :class:`RunConfig` objects whose
stable content hash keys the on-disk result cache
(:mod:`repro.farm.cache`).

Example — the vocoder scheduler x preemption sweep of the paper's
Section 4.3 discussion::

    spec = (
        SweepSpec("repro.farm.workloads:vocoder_architecture_run",
                  base={"n_frames": 10})
        .axis("sched", ["priority", "rr", "edf"])
        .axis("preemption", ["step", "immediate"])
        .axis("switch_overhead", [0, 20_000])
    )
    configs = spec.expand()          # 12 RunConfigs
"""

import hashlib
import importlib
import itertools
import json


def resolve_target(target):
    """Resolve a ``"module:callable"`` dotted path to the callable."""
    name = target_name(target)
    module_name, _, attr_path = name.partition(":")
    obj = importlib.import_module(module_name)
    for part in attr_path.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"target {name!r} is not callable")
    return obj


def target_name(target):
    """Canonical ``"module:qualname"`` name for a sweep target.

    Accepts either a dotted-path string or a module-level callable (any
    callable factory — functions, classes). Lambdas, closures and bound
    methods are rejected: worker processes must be able to re-import
    the target by name.
    """
    if isinstance(target, str):
        if ":" not in target:
            raise ValueError(
                f"target {target!r} must be a 'module:callable' path"
            )
        return target
    module = getattr(target, "__module__", None)
    qualname = getattr(target, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise TypeError(
            f"target {target!r} is not importable by name; use a "
            "module-level callable or a 'module:callable' string"
        )
    return f"{module}:{qualname}"


def _canonical(value):
    """Canonical JSON for hashing: sorted keys, tuples as lists."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=_jsonify)


def _jsonify(value):
    if isinstance(value, (tuple, set, frozenset)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    raise TypeError(f"unhashable sweep parameter: {value!r}")


class RunConfig:
    """One point of a sweep: target + keyword parameters.

    Hashable and order-insensitive in its parameters; :meth:`key` is a
    stable content hash used as the cache filename and the identity for
    retry/result bookkeeping.
    """

    __slots__ = ("target", "params", "_key")

    def __init__(self, target, params=None):
        self.target = target_name(target)
        items = tuple(sorted((params or {}).items()))
        self.params = items
        self._key = None

    @property
    def kwargs(self):
        return dict(self.params)

    def key(self):
        if self._key is None:
            payload = _canonical(
                {"target": self.target, "params": self.kwargs}
            )
            self._key = hashlib.sha256(payload.encode()).hexdigest()[:24]
        return self._key

    def label(self, varying=None):
        """Short human label; with ``varying`` only those params show."""
        kwargs = self.kwargs
        names = varying if varying is not None else sorted(kwargs)
        inner = ",".join(f"{n}={kwargs[n]}" for n in names if n in kwargs)
        base = self.target.rpartition(":")[2]
        return f"{base}({inner})"

    def __hash__(self):
        return hash((self.target, self.params))

    def __eq__(self, other):
        return (
            isinstance(other, RunConfig)
            and self.target == other.target
            and self.params == other.params
        )

    def __repr__(self):
        return f"RunConfig({self.label()})"


class SweepSpec:
    """Declarative sweep: base params + grid axes + explicit points."""

    def __init__(self, target, base=None):
        self.target = target_name(target)
        self.base = dict(base or {})
        self._axes = []  # (name, [values...])
        self._points = []  # explicit param dicts (merged over base)

    def axis(self, name, values):
        """Add a grid axis; returns self for chaining."""
        values = list(values)
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        self._axes.append((name, values))
        return self

    def point(self, **params):
        """Add one explicit configuration (merged over the base)."""
        self._points.append(dict(params))
        return self

    @property
    def varying(self):
        """Names of parameters that differ across the sweep."""
        names = [name for name, _ in self._axes]
        for point in self._points:
            for name in point:
                if name not in names:
                    names.append(name)
        return names

    def expand(self):
        """All run configs: the axis grid, then the explicit points."""
        configs = []
        seen = set()
        axis_names = [name for name, _ in self._axes]
        axis_values = [values for _, values in self._axes]
        # the empty product is one bare-base config; suppress it when the
        # sweep is defined purely by explicit points
        grid = (
            itertools.product(*axis_values)
            if self._axes or not self._points else ()
        )
        for combo in grid:
            params = dict(self.base)
            params.update(zip(axis_names, combo))
            config = RunConfig(self.target, params)
            if config not in seen:
                seen.add(config)
                configs.append(config)
        for point in self._points:
            params = dict(self.base)
            params.update(point)
            config = RunConfig(self.target, params)
            if config not in seen:
                seen.add(config)
                configs.append(config)
        return configs

    def __len__(self):
        if not self._axes and self._points:
            return len(self._points)
        n = 1
        for _, values in self._axes:
            n *= len(values)
        return n + len(self._points)

    @classmethod
    def from_dict(cls, data):
        """Build a spec from a JSON-style dict::

            {"target": "module:callable",
             "base": {...}, "axes": {"param": [v1, v2]},
             "points": [{...}, ...]}
        """
        spec = cls(data["target"], base=data.get("base"))
        for name, values in (data.get("axes") or {}).items():
            spec.axis(name, values)
        for point in data.get("points") or []:
            spec.point(**point)
        return spec

    def __repr__(self):
        return (
            f"SweepSpec({self.target}, {len(self)} configs, "
            f"axes={[n for n, _ in self._axes]})"
        )
