"""Batch-ready run targets for the farm.

Each function here is a module-level callable (importable by dotted
path from worker processes) that runs one simulation configuration and
returns a flat, JSON-serializable metrics dict — the contract the
runner's process fan-out and the result cache require.

Two workload families, matching the paper's evaluation:

* :func:`periodic_taskset_run` — the synthetic periodic task set of the
  scheduler/preemption ablations (Section 4.3 discussion); shared by
  ``benchmarks/test_bench_schedulers.py`` and
  ``examples/scheduler_comparison.py``.
* ``vocoder_*_run`` — the Table-1 vocoder models, including the
  architecture model under any scheduler/preemption/overhead config.
"""

from repro.kernel import Simulator, WaitFor
from repro.rtos import PERIODIC, RTOSModel

#: (name, period, exec_time) — utilization ~ 0.94, the ablation set
DEFAULT_TASK_SET = (
    ("t1", 400_000, 100_000),
    ("t2", 500_000, 100_000),
    ("t3", 750_000, 370_000),
)
DEFAULT_HORIZON = 6_000_000
DEFAULT_GRANULARITY = 10_000

#: (name, period, wcet levels, priority, criticality) — the
#: mixed-criticality campaign set: the LO tasks outrank the HI task
#: (utilization 0.70 at the optimistic budgets), so the HI task only
#: survives its pessimistic budget when the mode switch sheds LO load
MC_TASK_SET = (
    ("lo1", 400_000, (100_000,), 1, "LO"),
    ("lo2", 500_000, (100_000,), 2, "LO"),
    ("hi", 1_000_000, (250_000, 500_000), 3, "HI"),
)


def span_instruments():
    """A trace streaming straight into a span builder, plus analyzers.

    Used by the ``with_spans=True`` workloads: the
    :class:`~repro.obs.spans.SpanBuilder` *is* the trace sink, so even
    a multi-million-record run reconstructs its latency digests and job
    census in O(tasks) memory — no record is ever retained. Returns
    ``(trace, builder, latency, misses)``.
    """
    from repro.kernel.trace import Trace
    from repro.obs.analyzers import LatencyAnalyzer, MissSummary
    from repro.obs.spans import SpanBuilder

    latency = LatencyAnalyzer()
    misses = MissSummary()
    builder = SpanBuilder(latency, misses)
    return Trace(sink=builder), builder, latency, misses


def span_dump(builder, latency, misses, now):
    """Flush ``builder`` and dump the ``"spans"`` result payload."""
    builder.finish(now)
    return {"latency": latency.as_dict(), "misses": misses.as_dict()}


def periodic_taskset_run(policy="priority", preemption="step",
                         granularity=DEFAULT_GRANULARITY,
                         horizon=DEFAULT_HORIZON, task_set=None,
                         switch_overhead=0, with_obs=False,
                         with_spans=False):
    """One periodic task set under one scheduling configuration.

    Returns the scheduler-ablation metrics: deadline misses, context
    switches, preemptions, per-task worst/avg response times, CPU
    accounting. With ``with_obs=True`` a
    :class:`~repro.obs.metrics.MetricsRegistry` is attached to the OS
    services for the run and its snapshot rides along under the
    ``"metrics"`` key (aggregatable across runs with
    ``SweepResult.aggregate``). With ``with_spans=True`` the trace is
    streamed through a :class:`~repro.obs.spans.SpanBuilder` (O(tasks)
    memory, no records retained) and the per-task latency digests and
    job census ride along under ``"spans"`` — also merged by
    ``SweepResult.aggregate``.
    """
    task_set = [tuple(entry) for entry in (task_set or DEFAULT_TASK_SET)]
    registry = None
    if with_obs:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
    trace = builder = latency = misses = None
    if with_spans:
        trace, builder, latency, misses = span_instruments()
    sim = Simulator(trace=trace)
    if trace is None:
        sim.trace.enabled = False
    os_ = RTOSModel(sim, sched=policy, preemption=preemption,
                    switch_overhead=switch_overhead, registry=registry)
    if with_spans:
        os_.trace_spans(True)
    tasks = []
    for index, (name, period, exec_time) in enumerate(task_set):
        task = os_.task_create(
            name, PERIODIC, period, exec_time, priority=index + 1
        )
        tasks.append(task)

        def body(exec_time=exec_time):
            while True:
                remaining = exec_time
                while remaining > 0:
                    step = min(granularity, remaining)
                    yield from os_.time_wait(step)
                    remaining -= step
                yield from os_.task_endcycle()

        sim.spawn(os_.task_body(task, body()), name=task.name)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run(until=horizon)
    snap = os_.metrics.snapshot(sim.now)
    result = {
        "policy": policy,
        "preemption": preemption,
        "misses": snap["deadline_misses"],
        "switches": snap["context_switches"],
        "preemptions": snap["preemptions"],
        "dispatches": snap["dispatches"],
        "interrupts": snap["interrupts"],
        "utilization": snap["utilization"],
        "overhead_ratio": snap["overhead_ratio"],
        "busy_time": snap["busy_time"],
        "overhead_time": snap["overhead_time"],
        "idle_time": snap["idle_time"],
        "sim_time": snap["sim_time"],
        "worst_response": {
            t.name: t.stats.worst_response for t in tasks
        },
        "avg_response": {
            t.name: t.stats.avg_response for t in tasks
        },
    }
    if registry is not None:
        result["metrics"] = registry.snapshot()
    if builder is not None:
        result["spans"] = span_dump(builder, latency, misses, sim.now)
    return result


def hierarchical_taskset_run(top="priority", preemption="immediate",
                             server_util=0.4, demand_factor=0.5, seed=1,
                             horizon=None):
    """One generated hierarchical configuration: simulator + analysis.

    Builds a deterministic single-spec system (two resource servers at
    ``server_util`` total, taskset demand at ``demand_factor`` of the
    server supply — above ~1.0 is an overload), cross-validates it, and
    returns the flat verdict/miss summary. Sweeping ``demand_factor``
    across 1.0 maps the schedulable/unschedulable boundary the
    cross-validation contract is defined on.
    """
    import random

    from repro.analysis.crossval import cross_validate
    from repro.analysis.schedulability import (
        ComponentSpec,
        PESpec,
        SystemSpec,
        TaskSpec,
    )

    rng = random.Random(seed)
    comps = []
    for index in range(2):
        period = rng.choice((100, 200, 250))
        share = server_util / 2
        budget = max(1, int(period * share))
        task_period = rng.choice((1000, 2000, 4000))
        wcet = max(1, int(task_period * share * demand_factor))
        comps.append(ComponentSpec(
            name=f"comp{index}", budget=budget, period=period,
            policy=rng.choice(("edf", "priority")), priority=index,
            tasks=(TaskSpec(f"c{index}t0", period=task_period, wcet=wcet,
                            priority=0),),
        ))
    spec = SystemSpec(
        f"farm-hier-{seed}",
        pes=(PESpec("pe0", top=top, components=tuple(comps)),),
    )
    report = cross_validate(spec, horizon=horizon)
    total_misses = sum(report["simulated_misses"].values())
    return {
        "top": top,
        "preemption": preemption,
        "server_util": server_util,
        "demand_factor": demand_factor,
        "seed": seed,
        "analysis_schedulable": report["analysis_schedulable"],
        "guaranteed_tasks": len(report["guaranteed_tasks"]),
        "missed_tasks": len(report["missed_tasks"]),
        "total_misses": total_misses,
        "consistent": report["consistent"],
        "max_window_overdraft": max(
            (c["max_window_consumption"] - c["budget"]
             for c in report["component_stats"].values()),
            default=0,
        ),
    }


def fault_campaign_run(policy="priority", preemption="step", seed=0,
                       plan="baseline", on_miss="log", budget_factor=None,
                       horizon=DEFAULT_HORIZON,
                       granularity=DEFAULT_GRANULARITY, task_set=None,
                       with_spans=False):
    """One fault-campaign point: the ablation task set under one seeded
    fault plan, with every task watched under the ``on_miss`` policy.

    ``plan`` is a :data:`repro.faults.campaign.PLAN_PRESETS` name or an
    inline fault-plan JSON string (both hashable, so configs cache).
    Returns survival/miss-rate metrics; with ``with_spans=True`` the
    per-task latency digests and job census ride along under
    ``"spans"``. See :func:`repro.faults.campaign.run_campaign_point`.
    """
    from repro.faults.campaign import run_campaign_point

    return run_campaign_point(
        policy=policy, preemption=preemption, seed=seed, plan=plan,
        on_miss=on_miss, budget_factor=budget_factor, horizon=horizon,
        granularity=granularity, task_set=task_set, with_spans=with_spans,
    )


def mc_campaign_run(policy="priority", seed=0, plan="overrun_storm",
                    degrade="drop", recovery_window=None, with_mc=True,
                    horizon=DEFAULT_HORIZON, task_set=None):
    """One mixed-criticality campaign point: :data:`MC_TASK_SET` under a
    seeded overrun plan, with or without the mode controller.

    ``with_mc=True`` arms :meth:`RTOSModel.mc_configure` (policy
    ``degrade``, optional hysteresis ``recovery_window``) and enrolls
    every task at its criticality with its per-level budgets;
    ``with_mc=False`` runs the identical workload as a plain watched
    baseline — the ablation pair whose HI-miss delta is the shielding
    the campaign report exhibits. Bodies request the optimistic budget
    in one ``time_wait`` so the fault plan's ``exec_jitter`` scales
    whole jobs, matching the Vestal model's per-job overrun.
    """
    from repro.faults.campaign import resolve_plan
    from repro.faults.inject import FaultInjector
    from repro.rtos.task import TaskState

    task_set = [tuple(entry) for entry in (task_set or MC_TASK_SET)]
    plan_obj = resolve_plan(plan)
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched=policy, preemption="immediate")
    if with_mc:
        os_.mc_configure(degrade=degrade, recovery_window=recovery_window)
    tasks = []
    for name, period, wcet_levels, priority, criticality in task_set:
        wcet_levels = tuple(wcet_levels)
        if with_mc:
            task = os_.task_create(
                name, PERIODIC, period, list(wcet_levels),
                priority=priority, criticality=criticality,
            )
        else:
            task = os_.task_create(
                name, PERIODIC, period, wcet_levels[0], priority=priority
            )
            os_.task_watch(task, policy="log")
        tasks.append((task, criticality))

        def body(exec_time=wcet_levels[0]):
            while True:
                yield from os_.time_wait(exec_time)
                yield from os_.task_endcycle()

        sim.spawn(os_.task_body(task, body()), name=name)

    injector = FaultInjector(sim, plan_obj, seed=seed).arm(model=os_)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run(until=horizon)

    monitor = os_.monitor
    base = task_set[0][4]  # lowest criticality level in the set
    hi_misses = sum(monitor.miss_counts.get(t.uid, 0)
                    for t, crit in tasks if crit != base)
    lo_misses = sum(monitor.miss_counts.get(t.uid, 0)
                    for t, crit in tasks if crit == base)
    misses = hi_misses + lo_misses
    releases = sum(monitor.releases.values())
    survivors = sum(
        1 for t, _ in tasks if t.state is not TaskState.TERMINATED
    )
    snap = os_.metrics.snapshot(sim.now)
    return {
        "policy": policy,
        "seed": seed,
        "plan": plan if isinstance(plan, str) else plan_obj.to_json(),
        "degrade": degrade,
        "with_mc": with_mc,
        "mode": os_.mc_mode(),
        "mode_raises": snap["mode_raises"],
        "mode_recoveries": snap["mode_recoveries"],
        "jobs_degraded": snap["jobs_degraded"],
        "misses": misses,
        "hi_misses": hi_misses,
        "lo_misses": lo_misses,
        "releases": releases,
        "miss_rate": round(misses / releases, 6) if releases else 0.0,
        "budget_overruns": snap["budget_overruns"],
        "faults_injected": snap["faults_injected"],
        "injected": dict(injector.counts),
        "survivors": survivors,
        "survival": round(survivors / len(tasks), 6) if tasks else 1.0,
        "n_tasks": len(tasks),
        "switches": snap["context_switches"],
        "preemptions": snap["preemptions"],
        "utilization": snap["utilization"],
        "sim_time": snap["sim_time"],
    }


def vocoder_specification_run(n_frames=10, seed=2003):
    """The unscheduled vocoder specification model (Table 1 column 1)."""
    from repro.apps.vocoder.models import run_specification

    return _vocoder_summary(run_specification(n_frames=n_frames, seed=seed))


def vocoder_architecture_run(n_frames=10, seed=2003, sched="priority",
                             preemption="step", switch_overhead=0):
    """The vocoder architecture model under one RTOS configuration
    (Table 1 column 2 and the scheduler x preemption design space)."""
    from repro.apps.vocoder.models import run_architecture

    run = run_architecture(
        n_frames=n_frames, seed=seed, sched=sched, preemption=preemption,
        switch_overhead=switch_overhead,
    )
    summary = _vocoder_summary(run)
    summary.update(
        sched=sched,
        preemption=preemption,
        switch_overhead=switch_overhead,
        deadline_misses=run.extra["deadline_misses"],
        os_metrics=run.extra["os_metrics"],
    )
    return summary


def vocoder_implementation_run(n_frames=10, seed=2003):
    """The vocoder implementation model on the ISS (Table 1 column 3)."""
    from repro.apps.vocoder.impl import run_implementation

    run = run_implementation(n_frames=n_frames, seed=seed)
    summary = _vocoder_summary(run)
    summary.update(
        instructions=run.extra.get("instructions"),
        cycles=run.extra.get("cycles"),
    )
    return summary


def _vocoder_summary(run):
    return {
        "model": run.model,
        "n_frames": run.n_frames,
        "mean_delay_ms": run.mean_delay_ms,
        "max_delay_ms": run.max_delay_ms,
        "context_switches": run.context_switches,
        "host_seconds": run.host_seconds,
        "mean_snr_db": (
            sum(run.snrs_db) / len(run.snrs_db) if run.snrs_db else None
        ),
    }


def explore_run(model="lostirq", prune="sleep", max_runs=10_000,
                max_depth=200):
    """One systematic exploration of a corpus model (repro.explore).

    Farm-able model checking: each (model, prune) cell explores the
    model's interleavings exhaustively and returns the deterministic
    state/run counters plus the violation census — the raw material of
    the EXPERIMENTS.md pruning table.
    """
    from repro.explore import Explorer
    from repro.explore.models import MODELS

    if model not in MODELS:
        raise ValueError(
            f"unknown exploration model {model!r} "
            f"(known: {', '.join(sorted(MODELS))})"
        )
    result = Explorer(
        MODELS[model], prune=prune, max_runs=max_runs, max_depth=max_depth
    ).run()
    violations = result.violations
    return {
        "model": result.model,
        "prune": result.prune,
        "runs": result.runs,
        "decisions": result.decisions,
        "states": result.states,
        "aborted": result.aborted,
        "skipped": result.skipped,
        "complete": result.complete,
        "violations": len(violations),
        "first_violation": violations[0].message if violations else "",
    }
