"""Sweep result aggregation: machine-readable JSON/CSV + report tables.

Each run produces a :class:`RunResult`; a whole sweep is a
:class:`SweepResult`, which flattens per-run metric dicts into rows
(one column per metric key, in first-seen order) for CSV export and a
``schedule_report``-style fixed-width table.
"""

import csv
import io
import json


#: terminal statuses a run can end in
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_CRASHED = "crashed"


class RunResult:
    """Outcome of one sweep point."""

    __slots__ = (
        "config", "status", "value", "error", "elapsed", "attempts",
        "from_cache",
    )

    def __init__(self, config, status, value=None, error=None, elapsed=0.0,
                 attempts=1, from_cache=False):
        self.config = config
        self.status = status
        self.value = value
        self.error = error
        self.elapsed = elapsed
        self.attempts = attempts
        self.from_cache = from_cache

    @property
    def ok(self):
        return self.status == STATUS_OK

    def as_dict(self):
        return {
            "target": self.config.target,
            "params": self.config.kwargs,
            "key": self.config.key(),
            "status": self.status,
            "result": self.value if self.ok else None,
            "error": self.error,
            "elapsed": self.elapsed,
            "attempts": self.attempts,
            "from_cache": self.from_cache,
        }

    def __repr__(self):
        return (
            f"RunResult({self.config.label()}, {self.status}"
            f"{', cached' if self.from_cache else ''})"
        )


class SweepResult:
    """Ordered collection of :class:`RunResult` for one sweep."""

    def __init__(self, results, varying=None, wall_seconds=0.0):
        self.results = list(results)
        #: parameter names that differ across the sweep (table columns)
        self.varying = list(varying) if varying is not None else None
        #: wall-clock time of the whole sweep execution
        self.wall_seconds = wall_seconds

    def __iter__(self):
        return iter(self.results)

    def __len__(self):
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def ok(self):
        return [r for r in self.results if r.ok]

    @property
    def failed(self):
        return [r for r in self.results if not r.ok]

    @property
    def cached(self):
        return [r for r in self.results if r.from_cache]

    def values(self):
        """The successful runs' metric dicts, in sweep order."""
        return [r.value for r in self.ok]

    def aggregate(self):
        """Cross-run aggregate of the successful runs' metrics.

        Top-level scalar metrics are summarized as min/mean/max under
        ``"scalars"``. Runs carrying an observability-registry snapshot
        under ``"metrics"`` (see ``MetricsRegistry.snapshot``) get those
        merged metric-by-metric — counters summed, gauges min/max'd,
        histograms added bucket-wise — under ``"metrics"``. Runs
        carrying a span-analytics payload under ``"spans"`` (the
        workloads' ``with_spans=True``) get their per-task latency
        digests merged (order-insensitive, byte-identical across run
        orders), summarized to p50/p95/p99 percentiles, and their job
        censuses summed, under ``"spans"``.
        """
        values = [v for v in self.values() if isinstance(v, dict)]
        scalars = {}
        for value in values:
            for name, metric in value.items():
                if isinstance(metric, bool) or not isinstance(
                    metric, (int, float)
                ):
                    continue
                scalars.setdefault(name, []).append(metric)
        aggregate = {
            "runs": len(values),
            "scalars": {
                name: {
                    "min": min(samples),
                    "max": max(samples),
                    "mean": sum(samples) / len(samples),
                }
                for name, samples in scalars.items()
            },
        }
        snapshots = [
            v["metrics"] for v in values if isinstance(v.get("metrics"), dict)
        ]
        if snapshots:
            from repro.obs.metrics import MetricsRegistry

            aggregate["metrics"] = MetricsRegistry.aggregate(snapshots)
        span_dumps = [
            v["spans"] for v in values if isinstance(v.get("spans"), dict)
        ]
        if span_dumps:
            from repro.obs.analyzers import LatencyAnalyzer

            latency = LatencyAnalyzer.merge_dicts(
                [d["latency"] for d in span_dumps if "latency" in d]
            )
            census = {}
            for dump in span_dumps:
                tasks = dump.get("misses", {}).get("tasks", {})
                for task, row in tasks.items():
                    out = census.setdefault(task, {})
                    for key, count in row.items():
                        out[key] = out.get(key, 0) + count
            totals = {}
            for row in census.values():
                for key, count in row.items():
                    totals[key] = totals.get(key, 0) + count
            aggregate["spans"] = {
                "latency": latency,
                "percentiles": LatencyAnalyzer.summarize_dump(latency),
                "misses": {
                    "tasks": {
                        task: dict(sorted(census[task].items()))
                        for task in sorted(census)
                    },
                    "totals": dict(sorted(totals.items())),
                },
            }
        return aggregate

    # -- tabulation --------------------------------------------------------

    def _param_columns(self):
        if self.varying is not None:
            return list(self.varying)
        names = []
        for result in self.results:
            for name in result.config.kwargs:
                if name not in names:
                    names.append(name)
        return names

    def _metric_columns(self):
        names = []
        for result in self.ok:
            if isinstance(result.value, dict):
                for name in result.value:
                    if name not in names and not isinstance(
                        result.value[name], (dict, list)
                    ):
                        names.append(name)
        return names

    def rows(self):
        """Flat dict rows: varying params + scalar metrics + status."""
        params = self._param_columns()
        metrics = self._metric_columns()
        rows = []
        for result in self.results:
            row = {}
            kwargs = result.config.kwargs
            for name in params:
                row[name] = kwargs.get(name)
            for name in metrics:
                value = None
                if result.ok and isinstance(result.value, dict):
                    value = result.value.get(name)
                row[name] = value
            row["status"] = (
                result.status + (" (cached)" if result.from_cache else "")
            )
            row["elapsed"] = round(result.elapsed, 4)
            rows.append(row)
        return rows

    def format_table(self, title="sweep report"):
        """Fixed-width table in the style of ``schedule_report``."""
        rows = self.rows()
        if not rows:
            return f"{title}\n{'=' * len(title)}\n(no runs)"
        columns = list(rows[0])
        widths = {}
        for name in columns:
            cells = [_fmt(row[name]) for row in rows]
            widths[name] = max(len(name), *(len(c) for c in cells)) + 2
        lines = [title, "=" * len(title)]
        lines.append("".join(f"{name:>{widths[name]}}" for name in columns))
        for row in rows:
            lines.append(
                "".join(f"{_fmt(row[name]):>{widths[name]}}" for name in columns)
            )
        lines.append("")
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self):
        parts = [f"{len(self.results)} runs", f"{len(self.ok)} ok"]
        if self.failed:
            parts.append(f"{len(self.failed)} failed")
        if self.cached:
            parts.append(f"{len(self.cached)} from cache")
        parts.append(f"wall {self.wall_seconds:.3f}s")
        return ", ".join(parts)

    # -- export ------------------------------------------------------------

    def as_dict(self):
        return {
            "wall_seconds": self.wall_seconds,
            "n_runs": len(self.results),
            "n_ok": len(self.ok),
            "n_cached": len(self.cached),
            "runs": [r.as_dict() for r in self.results],
        }

    def to_json(self, path=None):
        payload = json.dumps(self.as_dict(), indent=1, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(payload + "\n")
        return payload

    def to_csv(self, path=None):
        rows = self.rows()
        buffer = io.StringIO()
        if rows:
            writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        payload = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as fh:
                fh.write(payload)
        return payload


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
