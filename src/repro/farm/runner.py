"""Sweep execution: process-pool fan-out with a serial fallback.

:func:`run_sweep` takes a :class:`~repro.farm.sweep.SweepSpec` (or a
plain list of :class:`~repro.farm.sweep.RunConfig`) and executes every
point, reusing cached results when a :class:`~repro.farm.cache.
ResultCache` is supplied. Execution strategies:

* **parallel** (default when the host has more than one CPU and
  ``multiprocessing`` works): a farm of worker processes fed from a
  shared task queue. The parent enforces a per-run wall-clock timeout
  (the worker is killed and replaced) and retries crashed or timed-out
  runs a bounded number of times.
* **serial** (fallback, or ``parallel=False``): in-process execution —
  no pickling requirements, works on single-core CI runners and hosts
  without working process support. Per-run timeouts are not enforced
  in serial mode (there is no one to interrupt the run).

Worker targets are referenced by dotted path (``"module:callable"``),
so workers import them fresh; parameters and results cross process
boundaries and must be picklable (and JSON-serializable to be cached).
"""

import collections
import multiprocessing
import os
import pickle
import queue as queue_mod
import random
import time
import traceback

from repro.farm.results import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunResult,
    SweepResult,
)
from repro.farm.sweep import SweepSpec, resolve_target

#: how often the parent checks worker health / run deadlines (seconds)
_POLL_INTERVAL = 0.05

#: sleep indirection so tests can fake the clock
_sleep = time.sleep


class RetryBackoff:
    """Exponential backoff between retries, with seeded jitter and a cap.

    ``delay(attempt)`` is the pause after the ``attempt``-th failed try
    (1-based): ``base * 2**(attempt-1)``, scaled by a jitter factor
    drawn uniformly from [1.0, 1.5) off a ``random.Random(seed)``
    stream (deterministic per instance), and capped at ``cap`` seconds.
    A non-positive ``base`` disables backoff entirely (always 0.0) —
    the pre-backoff immediate-re-dispatch behavior.
    """

    __slots__ = ("base", "cap", "rng")

    def __init__(self, base=0.1, cap=2.0, seed=0):
        self.base = base
        self.cap = cap
        self.rng = random.Random(seed)

    def delay(self, attempt):
        if self.base <= 0:
            return 0.0
        raw = self.base * (2 ** max(0, attempt - 1))
        jitter = 1.0 + 0.5 * self.rng.random()
        return min(self.cap, raw * jitter)


def default_processes(n_runs):
    """Pool size for this host: one worker per CPU, capped by the
    number of runs."""
    return max(1, min(n_runs, os.cpu_count() or 1))


def execute_config(config):
    """Run one config in the calling process and return its result."""
    fn = resolve_target(config.target)
    return fn(**config.kwargs)


def run_sweep(spec, *, parallel=True, processes=None, timeout=None,
              retries=1, backoff=0.1, backoff_cap=2.0, cache=None,
              refresh=False, progress=None):
    """Execute every point of a sweep; returns a :class:`SweepResult`.

    Parameters
    ----------
    spec:
        A :class:`SweepSpec` or an iterable of :class:`RunConfig`.
    parallel:
        Allow process fan-out. Serial in-process execution is used when
        False, when the effective pool size is 1, or when process
        support is unavailable.
    processes:
        Pool size; defaults to ``min(n_runs, cpu_count)``.
    timeout:
        Per-run wall-clock limit in seconds (parallel mode only).
    retries:
        Extra attempts for a failed/crashed/timed-out run (so a run is
        tried at most ``1 + retries`` times).
    backoff / backoff_cap:
        Exponential :class:`RetryBackoff` between those attempts —
        base delay and cap in seconds, with deterministic seeded
        jitter. ``backoff=0`` restores immediate re-dispatch.
    cache:
        Optional :class:`ResultCache`; hits skip execution, successful
        fresh runs are stored back.
    refresh:
        Ignore cache hits (still store fresh results).
    progress:
        Optional callable invoked with each resolved :class:`RunResult`.
    """
    if isinstance(spec, SweepSpec):
        configs = spec.expand()
        varying = spec.varying
    else:
        configs = list(spec)
        varying = None
    started = time.perf_counter()
    results = {}
    pending_indices = []
    for index, config in enumerate(configs):
        record = None
        if cache is not None and not refresh:
            record = cache.get(config)
        if record is not None:
            results[index] = RunResult(
                config, STATUS_OK, value=record["result"],
                elapsed=record.get("elapsed", 0.0), attempts=0,
                from_cache=True,
            )
            if progress is not None:
                progress(results[index])
        else:
            pending_indices.append(index)

    pending = [configs[i] for i in pending_indices]
    if pending:
        n_workers = (
            processes if processes is not None
            else default_processes(len(pending))
        )
        retry_backoff = RetryBackoff(backoff, backoff_cap)
        ran = None
        if parallel and n_workers > 1:
            try:
                ran = _run_parallel(
                    pending, n_workers, timeout, retries, progress,
                    retry_backoff,
                )
            except OSError:
                # no usable process/semaphore support on this host
                ran = None
        if ran is None:
            ran = _run_serial(pending, retries, progress, retry_backoff)
        for local_index, run in ran.items():
            results[pending_indices[local_index]] = run
        if cache is not None:
            for run in ran.values():
                if run.ok:
                    cache.put(run.config, run.value, run.elapsed)

    ordered = [results[i] for i in range(len(configs))]
    return SweepResult(
        ordered, varying=varying,
        wall_seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# serial fallback
# ----------------------------------------------------------------------

def _run_serial(pending, retries, progress, backoff=None):
    if backoff is None:
        backoff = RetryBackoff(0)
    results = {}
    for index, config in enumerate(pending):
        attempts = 0
        while True:
            attempts += 1
            run_started = time.perf_counter()
            try:
                value = execute_config(config)
            except Exception:
                elapsed = time.perf_counter() - run_started
                if attempts <= retries:
                    delay = backoff.delay(attempts)
                    if delay > 0:
                        _sleep(delay)
                    continue
                run = RunResult(
                    config, STATUS_ERROR,
                    error=traceback.format_exc(limit=8),
                    elapsed=elapsed, attempts=attempts,
                )
            else:
                run = RunResult(
                    config, STATUS_OK, value=value,
                    elapsed=time.perf_counter() - run_started,
                    attempts=attempts,
                )
            results[index] = run
            if progress is not None:
                progress(run)
            break
    return results


# ----------------------------------------------------------------------
# process farm
# ----------------------------------------------------------------------

def _worker_main(task_queue, result_queue):
    """Worker loop: pull (index, target, params) from this worker's own
    queue, push ("done", ...) on the shared result queue."""
    pid = os.getpid()
    while True:
        item = task_queue.get()
        if item is None:
            break
        index, target, params = item
        run_started = time.perf_counter()
        try:
            fn = resolve_target(target)
            value = fn(**params)
            elapsed = time.perf_counter() - run_started
            # pre-flight pickle check: Queue serializes in a feeder
            # thread, where a pickling error would be lost
            pickle.dumps(value)
        except BaseException:
            result_queue.put((
                index, pid, STATUS_ERROR,
                traceback.format_exc(limit=8),
                time.perf_counter() - run_started,
            ))
        else:
            result_queue.put((index, pid, STATUS_OK, value, elapsed))


class _Worker:
    """Parent-side handle: process, private task queue, assigned run.

    Assignment is tracked here (not via a worker "started" message) so a
    worker that dies at *any* point — even before it could report
    anything — never loses the run it was given."""

    __slots__ = ("proc", "queue", "index", "started")

    def __init__(self, ctx, result_queue):
        self.queue = ctx.Queue()
        self.index = None
        self.started = None
        self.proc = ctx.Process(
            target=_worker_main, args=(self.queue, result_queue),
            daemon=True,
        )
        self.proc.start()


def _run_parallel(pending, n_workers, timeout, retries, progress,
                  backoff=None):
    if backoff is None:
        backoff = RetryBackoff(0)
    ctx = multiprocessing.get_context()
    result_queue = ctx.Queue()

    attempts = {index: 0 for index in range(len(pending))}
    results = {}
    resolved = set()
    # (index, eligible_at): retried runs carry a backoff deadline and
    # are skipped (kept queued) until the wall clock reaches it
    todo = collections.deque(
        (index, 0.0) for index in range(len(pending))
    )
    workers = {}  # pid -> _Worker

    def spawn_worker():
        worker = _Worker(ctx, result_queue)
        workers[worker.proc.pid] = worker
        return worker

    def assign(worker):
        now = time.monotonic()
        for _ in range(len(todo)):
            index, eligible_at = todo.popleft()
            if index in resolved:
                continue
            if eligible_at > now:
                todo.append((index, eligible_at))
                continue
            attempts[index] += 1
            config = pending[index]
            worker.index = index
            worker.started = now
            worker.queue.put((index, config.target, config.kwargs))
            return

    def resolve(index, run):
        if index in resolved:
            return
        resolved.add(index)
        results[index] = run
        if progress is not None:
            progress(run)

    def retry_or_fail(index, status, error):
        if index in resolved:
            return
        if attempts[index] <= retries:
            todo.append(
                (index, time.monotonic() + backoff.delay(attempts[index]))
            )
        else:
            resolve(index, RunResult(
                pending[index], status, error=error,
                attempts=attempts[index],
            ))

    for _ in range(min(n_workers, len(pending))):
        assign(spawn_worker())

    try:
        while len(resolved) < len(pending):
            try:
                msg = result_queue.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                msg = None
            if msg is not None:
                index, pid, status, payload, elapsed = msg
                worker = workers.get(pid)
                if worker is not None and worker.index == index:
                    worker.index = None
                    worker.started = None
                if status == STATUS_OK:
                    resolve(index, RunResult(
                        pending[index], STATUS_OK, value=payload,
                        elapsed=elapsed, attempts=attempts[index],
                    ))
                else:
                    retry_or_fail(index, STATUS_ERROR, payload)
                if worker is not None and worker.proc.is_alive():
                    assign(worker)
                continue

            now = time.monotonic()
            for pid, worker in list(workers.items()):
                if (
                    worker.index is not None and timeout is not None
                    and now - worker.started > timeout
                ):
                    # hung run: kill the worker, replace it, retry
                    del workers[pid]
                    _kill(worker.proc)
                    retry_or_fail(
                        worker.index, STATUS_TIMEOUT,
                        f"run exceeded {timeout}s wall-clock limit",
                    )
                    if len(resolved) < len(pending):
                        assign(spawn_worker())
                elif not worker.proc.is_alive():
                    # worker died (segfault, os._exit in the target, OOM
                    # kill) — possibly before reporting anything
                    del workers[pid]
                    if worker.index is not None:
                        retry_or_fail(
                            worker.index, STATUS_CRASHED,
                            f"worker exited with code {worker.proc.exitcode}",
                        )
                    if len(resolved) < len(pending):
                        assign(spawn_worker())
            if todo:
                # retried runs requeue here; hand them to idle workers
                for worker in workers.values():
                    if worker.index is None and worker.proc.is_alive():
                        assign(worker)
                        if not todo:
                            break
    finally:
        for worker in workers.values():
            worker.queue.put(None)
        deadline = time.monotonic() + 2.0
        for worker in workers.values():
            worker.proc.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            if worker.proc.is_alive():
                _kill(worker.proc)
        for worker in workers.values():
            worker.queue.cancel_join_thread()
        result_queue.cancel_join_thread()

    return results


def _kill(proc):
    try:
        proc.terminate()
        proc.join(timeout=1.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)
    except (OSError, AttributeError):
        pass
