"""``python -m repro.farm`` — run experiment sweeps from the shell.

Built-in sweeps::

    python -m repro.farm vocoder            # scheduler x preemption, Table-1 app
    python -m repro.farm taskset            # scheduler ablation task set
    python -m repro.farm table1             # the three Table-1 models
    python -m repro.farm campaign           # fault campaign: seed x plan x sched
    python -m repro.farm mc                 # MC ablation: degrade x MC-on/off x seed
    python -m repro.farm spec sweep.json    # any target, declarative JSON

Common flags: ``--serial`` (in-process), ``--jobs N``, ``--timeout S``,
``--retries N``, ``--backoff S``, ``--no-cache``, ``--refresh``,
``--cache-dir DIR``, ``--clear-cache``, ``--json FILE``, ``--csv FILE``,
``--quiet``.

A second invocation of the same sweep is served from the cache; pass
``--refresh`` to force re-execution or ``--no-cache`` to bypass the
cache entirely.
"""

import argparse
import json
import os
import sys

from repro.farm.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.farm.runner import run_sweep
from repro.farm.sweep import SweepSpec

SCHEDULERS = ("priority", "priority_np", "rr", "fifo", "edf", "rms")
PREEMPTION_MODES = ("step", "immediate")


def _csv_list(text):
    return [item for item in text.split(",") if item]


def _int_list(text):
    return [int(item) for item in _csv_list(text)]


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.farm",
        description="Parallel experiment-sweep farm for the RTOS models.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--serial", action="store_true",
                        help="run in-process (no worker pool)")
    common.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: one per CPU)")
    common.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-run wall-clock limit (parallel mode)")
    common.add_argument("--retries", type=int, default=1, metavar="N",
                        help="extra attempts for failed runs (default 1)")
    common.add_argument("--backoff", type=float, default=0.1, metavar="SEC",
                        help="base retry backoff, doubling per attempt "
                        "with seeded jitter (default 0.1; 0 disables)")
    common.add_argument("--no-cache", action="store_true",
                        help="do not read or write the result cache")
    common.add_argument("--refresh", action="store_true",
                        help="ignore cached results (still store fresh ones)")
    common.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR", help="cache directory")
    common.add_argument("--clear-cache", action="store_true",
                        help="drop all cached results first")
    common.add_argument("--json", metavar="FILE", dest="json_out",
                        help="write full results as JSON")
    common.add_argument("--csv", metavar="FILE", dest="csv_out",
                        help="write flat result rows as CSV")
    common.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")

    voc = sub.add_parser(
        "vocoder", parents=[common],
        help="vocoder architecture model: scheduler x preemption sweep",
    )
    voc.add_argument("--frames", type=int, default=10)
    voc.add_argument("--seed", type=int, default=2003)
    voc.add_argument("--sched", type=_csv_list,
                     default=list(SCHEDULERS), metavar="LIST")
    voc.add_argument("--preemption", type=_csv_list,
                     default=list(PREEMPTION_MODES), metavar="LIST")
    voc.add_argument("--overhead", type=_int_list, default=[0],
                     metavar="LIST", help="switch_overhead values (ns)")

    tsk = sub.add_parser(
        "taskset", parents=[common],
        help="scheduler ablation on the synthetic periodic task set",
    )
    tsk.add_argument("--policies", type=_csv_list,
                     default=list(SCHEDULERS), metavar="LIST")
    tsk.add_argument("--preemption", type=_csv_list,
                     default=["step"], metavar="LIST")
    tsk.add_argument("--granularity", type=_int_list, default=[10_000],
                     metavar="LIST")
    tsk.add_argument("--horizon", type=int, default=6_000_000)
    tsk.add_argument("--overhead", type=_int_list, default=[0],
                     metavar="LIST", help="switch_overhead values (ns)")

    tbl = sub.add_parser(
        "table1", parents=[common],
        help="the three Table-1 vocoder models (spec/arch/impl)",
    )
    tbl.add_argument("--frames", type=int, default=10)
    tbl.add_argument("--seed", type=int, default=2003)

    cam = sub.add_parser(
        "campaign", parents=[common],
        help="fault-injection campaign: seed x fault plan x scheduler",
    )
    cam.add_argument("--seeds", type=_int_list, default=[1, 2, 3],
                     metavar="LIST", help="injector seeds")
    cam.add_argument("--plans", type=_csv_list,
                     default=["baseline", "jitter", "crash"], metavar="LIST",
                     help="fault-plan preset names (see repro.faults)")
    cam.add_argument("--sched", type=_csv_list,
                     default=["priority", "edf"], metavar="LIST")
    cam.add_argument("--on-miss", default="log",
                     choices=("log", "notify", "kill", "skip-cycle"),
                     help="deadline-miss policy for every watched task")
    cam.add_argument("--budget-factor", type=float, default=None,
                     metavar="F", help="arm execution budgets of wcet*F")
    cam.add_argument("--horizon", type=int, default=6_000_000)
    cam.add_argument("--report", metavar="FILE",
                     help="write the deterministic campaign report JSON "
                     "(no wall-clock fields; byte-identical across runs)")

    mcp = sub.add_parser(
        "mc", parents=[common],
        help="mixed-criticality ablation: degrade policy x MC-on/off x seed",
    )
    mcp.add_argument("--seeds", type=_int_list, default=[1, 2, 3],
                     metavar="LIST", help="injector seeds")
    mcp.add_argument("--degrade", type=_csv_list,
                     default=["drop", "skip", "elastic"], metavar="LIST",
                     help="degradation policies to sweep")
    mcp.add_argument("--plan", default="overrun_storm",
                     help="fault-plan preset or inline JSON "
                     "(default: %(default)s)")
    mcp.add_argument("--sched", type=_csv_list, default=["priority"],
                     metavar="LIST")
    mcp.add_argument("--recovery-window", type=int, default=None,
                     metavar="NS", help="hysteresis recovery window "
                     "(default: sticky raises)")
    mcp.add_argument("--horizon", type=int, default=6_000_000)
    mcp.add_argument("--report", metavar="FILE",
                     help="write the deterministic campaign report JSON "
                     "(no wall-clock fields; byte-identical across runs)")

    spc = sub.add_parser(
        "spec", parents=[common],
        help="run a declarative sweep from a JSON file",
    )
    spc.add_argument("file", help="JSON sweep spec "
                     '({"target": ..., "base": ..., "axes": ...})')
    return parser


def build_spec(args):
    if args.command == "vocoder":
        return (
            SweepSpec("repro.farm.workloads:vocoder_architecture_run",
                      base={"n_frames": args.frames, "seed": args.seed})
            .axis("sched", args.sched)
            .axis("preemption", args.preemption)
            .axis("switch_overhead", args.overhead)
        )
    if args.command == "taskset":
        return (
            SweepSpec("repro.farm.workloads:periodic_taskset_run",
                      base={"horizon": args.horizon})
            .axis("policy", args.policies)
            .axis("preemption", args.preemption)
            .axis("granularity", args.granularity)
            .axis("switch_overhead", args.overhead)
        )
    if args.command == "table1":
        base = {"n_frames": args.frames, "seed": args.seed}
        spec = SweepSpec(
            "repro.farm.workloads:vocoder_specification_run", base=base
        )
        # heterogeneous targets: expand() covers the spec model; the
        # other two levels ride along as explicit configs
        configs = spec.expand()
        from repro.farm.sweep import RunConfig

        configs.append(RunConfig(
            "repro.farm.workloads:vocoder_architecture_run", base))
        configs.append(RunConfig(
            "repro.farm.workloads:vocoder_implementation_run", base))
        return configs
    if args.command == "campaign":
        from repro.faults.campaign import campaign_spec

        return campaign_spec(
            seeds=args.seeds, plans=args.plans, scheds=args.sched,
            on_miss=args.on_miss, budget_factor=args.budget_factor,
            horizon=args.horizon,
        )
    if args.command == "mc":
        from repro.faults.campaign import mc_campaign_spec

        return mc_campaign_spec(
            seeds=args.seeds, degrades=args.degrade, plan=args.plan,
            scheds=args.sched, recovery_window=args.recovery_window,
            horizon=args.horizon,
        )
    if args.command == "spec":
        with open(args.file) as fh:
            return SweepSpec.from_dict(json.load(fh))
    raise SystemExit(f"unknown command {args.command!r}")


def _cache_dir_error(cache_dir):
    """One-line diagnosis of an unusable cache dir, or None when fine."""
    if os.path.exists(cache_dir) and not os.path.isdir(cache_dir):
        return f"cache dir {cache_dir!r} exists but is not a directory"
    if os.path.isdir(cache_dir) and not os.access(cache_dir, os.R_OK | os.X_OK):
        return f"cache dir {cache_dir!r} is not readable"
    return None


def main(argv=None):
    args = build_parser().parse_args(argv)
    cache = None
    if not args.no_cache:
        error = _cache_dir_error(args.cache_dir)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 2
        cache = ResultCache(args.cache_dir)
        if args.clear_cache:
            dropped = cache.invalidate()
            print(f"cleared {dropped} cached results from {cache.root}")

    try:
        spec = build_spec(args)
    except OSError as exc:
        detail = exc.strerror or exc
        target = getattr(args, "file", None) or exc.filename or "input"
        print(f"error: cannot read sweep spec {target}: {detail}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError, ValueError) as exc:
        print(f"error: invalid sweep configuration: {exc}", file=sys.stderr)
        return 2
    print(f"farm: {args.command} sweep, {len(spec)} configurations"
          f"{' (serial)' if args.serial else ''}")

    def progress(run):
        if args.quiet:
            return
        tag = run.status + (" cache" if run.from_cache else "")
        print(f"  [{tag:>9}] {run.config.label()}  {run.elapsed:.3f}s")

    result = run_sweep(
        spec,
        parallel=not args.serial,
        processes=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        cache=cache,
        refresh=args.refresh,
        progress=progress,
    )

    print()
    print(result.format_table(title=f"{args.command} sweep"))
    if args.json_out:
        result.to_json(args.json_out)
        print(f"wrote {args.json_out}")
    if args.csv_out:
        result.to_csv(args.csv_out)
        print(f"wrote {args.csv_out}")
    if getattr(args, "report", None):
        from repro.faults.campaign import write_campaign_report

        write_campaign_report(result, args.report)
        print(f"wrote {args.report}")
    for run in result.failed:
        print(f"FAILED {run.config.label()}: {run.status}", file=sys.stderr)
        if run.error:
            print(run.error, file=sys.stderr)
    return 1 if result.failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
