"""Parallel experiment-sweep farm (batch simulation substrate).

The paper's results come from running the *same* models under many
configurations (Table 1, the scheduler/preemption discussion of
Section 4.3). This package turns those hand-rolled serial loops into
declarative sweeps executed on a process farm with an on-disk result
cache:

* :mod:`repro.farm.sweep` — sweep specs and hashable run configs;
* :mod:`repro.farm.runner` — process-pool fan-out with per-run
  timeout, bounded retry and a serial in-process fallback;
* :mod:`repro.farm.cache` — JSON result cache keyed by (config hash,
  package version);
* :mod:`repro.farm.results` — aggregation to JSON/CSV and report
  tables;
* :mod:`repro.farm.workloads` — batch-ready run targets (the vocoder
  models, the scheduler-ablation task set).

Command line: ``python -m repro.farm --help``.
"""

from repro.farm.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.farm.results import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunResult,
    SweepResult,
)
from repro.farm.runner import (
    RetryBackoff,
    default_processes,
    execute_config,
    run_sweep,
)
from repro.farm.sweep import (
    RunConfig,
    SweepSpec,
    resolve_target,
    target_name,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "RunConfig",
    "RunResult",
    "STATUS_CRASHED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "RetryBackoff",
    "SweepResult",
    "SweepSpec",
    "default_processes",
    "execute_config",
    "resolve_target",
    "run_sweep",
    "target_name",
]
