"""Simulated processes.

A :class:`Process` wraps a Python generator and tracks its scheduling
state inside the kernel. Processes are created with
:meth:`repro.kernel.simulator.Simulator.spawn`, by :class:`Par`/:class:`Fork`
commands, or internally by higher layers (RTOS tasks, ISRs).
"""

import enum
import itertools

_process_ids = itertools.count()


class ProcessState(enum.Enum):
    """Kernel-level scheduling state of a process.

    This is the *SLDL* state; the RTOS model layers its own task state
    machine (ready/running/blocked/...) on top of these.
    """

    READY = "ready"  # queued for execution in the current/next delta
    RUNNING = "running"  # currently executing a step
    TIMED = "timed"  # blocked in a WaitFor (or Wait with timeout)
    WAITING = "waiting"  # blocked on event(s) or join/par
    TERMINATED = "terminated"  # generator exhausted


class Process:
    """Kernel bookkeeping for one simulated generator."""

    __slots__ = (
        "uid",
        "name",
        "gen",
        "sim",
        "state",
        "send_value",
        "waiting_events",
        "timer",
        "par_parent",
        "pending_children",
        "joiners",
        "step_count",
        "consumed_stamps",
        "timer_cache",
    )

    def __init__(self, gen, name, sim):
        self.uid = next(_process_ids)
        self.name = name or f"process{self.uid}"
        self.gen = gen
        self.sim = sim
        self.state = ProcessState.READY
        #: value delivered to the generator on next resume
        self.send_value = None
        #: events this process is currently blocked on
        self.waiting_events = ()
        #: active timer entry (WaitFor or Wait timeout), if any
        self.timer = None
        #: the process whose Par command spawned us (for join bookkeeping)
        self.par_parent = None
        #: number of live Par children (when blocked in a Par command)
        self.pending_children = 0
        #: processes blocked in a Join on us
        self.joiners = []
        #: number of generator resumptions (diagnostics)
        self.step_count = 0
        #: event uid -> notification stamp this process already consumed
        #: via the pending-within-delta rule (each notification can
        #: satisfy at most one wait per process; prevents livelock when a
        #: process re-waits on an event notified earlier in the delta)
        self.consumed_stamps = {}
        #: fired _Timer kept for reuse by the next timed wait (the
        #: kernel's WaitFor fast path recycles it instead of allocating)
        self.timer_cache = None

    def __repr__(self):
        return f"Process({self.name!r}, {self.state.value})"

    @property
    def terminated(self):
        return self.state is ProcessState.TERMINATED

    # -- internal helpers used by the simulator ----------------------------

    def _clear_waits(self):
        """Detach from all events and cancel any pending timer."""
        if self.waiting_events:
            for event in self.waiting_events:
                event._remove_waiter(self)
            self.waiting_events = ()
        timer = self.timer
        if timer is not None:
            self.timer = None
            # route through the simulator so it can track (and compact
            # away) the dead heap entry
            self.sim._cancel_timer(timer)
