"""The discrete-event simulation engine.

The :class:`Simulator` executes processes under SpecC-like semantics:

* Simulated time is a non-negative integer; it only moves forward.
* Within one timestep, execution proceeds in *delta cycles*: all runnable
  processes execute until they block; processes woken by event
  notifications run in the next delta of the same timestep; when no
  process is runnable, time advances to the earliest pending timer.
* Scheduling is deterministic: processes run in the order they became
  ready (FIFO per delta), and timers fire in (time, insertion) order.

Hot-path design (see DESIGN.md "Performance notes"):

* Commands are dispatched through a type-keyed table
  (``command class -> bound _execute_* handler``) instead of an
  ``isinstance`` chain; command classes carry a class-level ``tag`` that
  names their handler.
* Blocking mechanics — the timer heap with recycling/compaction, waiter
  queues and wait-any selection — live in the shared wait core
  (:mod:`repro.kernel.waitcore`), which the RTOS model reuses; the
  simulator only contributes the process scheduling glue.
* ``stats`` counters live in flat attributes aggregated per blocking
  step, not per-command dict updates.
"""

import heapq
from time import perf_counter

from repro.kernel.backend import pick_backend
from repro.kernel.commands import (
    TIMEOUT,
    Fork,
    Join,
    Notify,
    Now,
    Par,
    Wait,
    WaitFor,
)
from repro.kernel.errors import DeadlockError, KernelError, SimulationError
from repro.kernel.oracle import DecisionPoint
from repro.kernel.process import Process, ProcessState
from repro.kernel.trace import Trace
from repro.kernel.waitcore import (
    Timer,
    TimerQueue,
    pending_candidates,
    select_pending,
    timer_label,
)

_READY = ProcessState.READY
_RUNNING = ProcessState.RUNNING
_TIMED = ProcessState.TIMED
_WAITING = ProcessState.WAITING
_TERMINATED = ProcessState.TERMINATED

#: back-compat alias — the timer type moved into the wait core
_Timer = Timer


class Simulator:
    """Discrete-event simulator with delta-cycle semantics.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.kernel.trace.Trace` recorder. If omitted,
        a fresh one is created; pass ``trace=None`` explicitly to share a
        recorder between models.
    delta_limit:
        Safety bound on the number of delta cycles within a single
        timestep; exceeding it raises :class:`KernelError` (catches
        zero-delay notify loops).
    backend:
        Engine selection (see :mod:`repro.kernel.backend`):
        ``"reference"`` is this class, ``"fast"`` the throughput engine.
        ``None`` (default) consults ``$REPRO_KERNEL_BACKEND``, falling
        back to the reference engine. ``Simulator(backend="fast")``
        returns a :class:`~repro.kernel.fastsim.FastSimulator` instance
        (a subclass — ``isinstance(sim, Simulator)`` holds for every
        backend).
    """

    #: backend name this engine is registered under (class attribute;
    #: benchmarks assert it to prove which engine they timed)
    backend = "reference"

    def __new__(cls, *args, backend=None, **kwargs):
        # backend dispatch happens only on the base class: explicit
        # subclass construction (FastSimulator(...)) and subclasses'
        # chained __new__ go straight through
        if cls is Simulator:
            impl = pick_backend(backend)
            if impl is not cls:
                return object.__new__(impl)
        return object.__new__(cls)

    def __init__(self, trace=None, delta_limit=100_000, backend=None):
        self.now = 0
        self.delta = 0
        #: shared (time, delta) stamp object: rebuilt whenever time or
        #: delta advances, so events can test "pending in this delta"
        #: by identity instead of building a tuple per check
        self._stamp = (0, 0)
        self.trace = trace if trace is not None else Trace()
        self._delta_limit = delta_limit
        self._run_queue = []  # processes runnable in current delta
        self._next_delta = []  # processes woken for the next delta
        self._timers = TimerQueue()  # shared wait-core timed-wait engine
        self._live = set()  # non-terminated processes
        self._current = None  # process currently executing a step
        self._started = False
        #: installed ScheduleOracle, or None — the unarmed default. None
        #: means every decision point takes its historical FIFO
        #: tie-break on the branch-free hot path (the obs-style
        #: ``is None`` guard); install_oracle() routes ready-set choice,
        #: same-instant timer order and wait-any selection through the
        #: oracle instead.
        self.oracle = None
        #: wall-clock profiler (None until enable_profiling())
        self.profiler = None
        self._n_spawned = 0
        self._n_steps = 0
        self._n_notifications = 0
        self._n_timer_fires = 0
        self._n_deltas = 0
        self._n_timesteps = 0
        # type-keyed command dispatch: class -> bound handler; command
        # subclasses are resolved through their MRO on first use
        self._dispatch = {
            cls: getattr(self, "_execute_" + cls.tag)
            for cls in (WaitFor, Wait, Notify, Now, Par, Fork, Join)
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def stats(self):
        """Kernel activity counters, aggregated on access.

        The counters live in flat attributes (cheap to bump on the hot
        path); this property materializes them as the familiar dict.
        """
        return {
            "spawned": self._n_spawned,
            "steps": self._n_steps,
            "notifications": self._n_notifications,
            "timer_fires": self._n_timer_fires,
            "deltas": self._n_deltas,
            "timesteps": self._n_timesteps,
        }

    def stats_delta(self, since=None):
        """Snapshot/diff helper for the activity counters.

        ``stats_delta()`` returns the current counters (a snapshot usable
        as a baseline); ``stats_delta(baseline)`` returns the per-counter
        difference since that baseline::

            before = sim.stats_delta()
            sim.run(until=...)
            assert sim.stats_delta(before)["steps"] == expected
        """
        current = self.stats
        if since is None:
            return current
        return {key: current[key] - since.get(key, 0) for key in current}

    def spawn(self, runnable, name=None):
        """Create a process from ``runnable`` and schedule it.

        ``runnable`` may be a generator, an object with a ``main()``
        generator method (a :class:`~repro.kernel.behavior.Behavior`), or
        a zero-argument callable returning a generator.
        """
        gen = _as_generator(runnable)
        if name is None:
            name = getattr(runnable, "name", None)
        process = Process(gen, name, self)
        self._live.add(process)
        self._run_queue.append(process)
        self._n_spawned += 1
        return process

    def schedule_at(self, time, callback, label=None):
        """Run ``callback()`` when simulated time reaches ``time``.

        Used by hardware models (interrupt sources, timers). The callback
        executes before the processes of that timestep and may notify
        events or spawn processes; it must not block. ``label`` names
        the timer at same-instant fire-order decision points (see
        :mod:`repro.kernel.oracle`); unlabeled callbacks fall back to
        the callback's qualified name.
        """
        time = int(time)
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        return self._timers.schedule_callback(time, callback, label)

    def schedule_after(self, delay, callback, label=None):
        """Run ``callback()`` after ``delay`` time units."""
        return self.schedule_at(self.now + int(delay), callback, label)

    def install_oracle(self, oracle):
        """Route every kernel decision point through ``oracle``.

        Must be called before :meth:`run`; the run loop binds the
        installed oracle once on entry. With an oracle installed, the
        ready-set choice of each delta, the fire order of same-instant
        timers and multi-event wait-any selection are resolved by
        ``oracle.pick`` — layers above do the same for dispatch ties,
        wake order, IRQ arrival slots and fault branches. Returns the
        oracle for chaining.
        """
        self.oracle = oracle
        return oracle

    def clear_oracle(self):
        """Restore the unarmed (implicit-FIFO) hot path."""
        self.oracle = None

    def cancel_scheduled(self, timer):
        """Cancel a timer returned by :meth:`schedule_at`/:meth:`schedule_after`.

        Cancellation is lazy (wait-core :class:`TimerQueue` semantics):
        the entry is marked dead and skipped when its time comes.
        """
        self._timers.cancel(timer)

    def run(self, until=None, check_deadlock=False):
        """Execute the simulation.

        Runs until no activity remains, or until simulated time would
        exceed ``until`` (in which case ``now`` is set to ``until``).

        With ``check_deadlock=True``, raises :class:`DeadlockError` if the
        simulation ends (without ``until`` being the cause) while
        processes are still blocked.
        """
        self._started = True
        deltas_this_step = 0
        step = self._step
        oracle = self.oracle
        while True:
            run_queue = self._run_queue
            if run_queue:
                if oracle is not None:
                    self._drain_delta_choices(oracle)
                else:
                    # drain the current delta; spawned/timer-woken
                    # processes append to this same list and run within
                    # the delta
                    i = 0
                    while i < len(run_queue):
                        process = run_queue[i]
                        i += 1
                        if process.state is not _TERMINATED:
                            step(process)
                    del run_queue[:]
            if self._next_delta:
                self.delta += 1
                self._stamp = (self.now, self.delta)
                self._n_deltas += 1
                deltas_this_step += 1
                if deltas_this_step > self._delta_limit:
                    raise KernelError(
                        f"delta limit exceeded at t={self.now} "
                        "(zero-delay notification loop?)"
                    )
                self._run_queue, self._next_delta = (
                    self._next_delta,
                    self._run_queue,
                )
                continue
            next_time = self._next_timer_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                self._stamp = (until, self.delta)
                return
            self.now = next_time
            # the delta counter is monotonic across the whole run (never
            # reset) so (time, delta) stamps of event notifications are
            # globally unique — a zero-delay re-entry at the same time
            # must not match a stale pending stamp
            self.delta += 1
            self._stamp = (next_time, self.delta)
            deltas_this_step = 0
            self._n_timesteps += 1
            if oracle is not None:
                self._fire_timers_choices(next_time, oracle)
            else:
                self._fire_timers(next_time)
        if until is not None and self.now < until:
            self.now = until
            self._stamp = (until, self.delta)
        if check_deadlock:
            blocked = self.blocked_processes()
            if blocked:
                raise DeadlockError(
                    blocked,
                    decision_path=oracle.trail if oracle is not None
                    else None,
                )

    def enable_profiling(self):
        """Switch on wall-clock attribution of the stepping loop.

        Swaps the hot ``_step`` loop for a profiled twin that samples
        ``time.perf_counter`` around every generator resume (model code,
        attributed per process) and every command handler (kernel code,
        attributed per command type). When profiling is off — the
        default — the unprofiled loop runs and costs nothing extra.

        Returns the attached :class:`~repro.obs.profiler.SimProfiler`
        (reused, with its counts preserved, if profiling was already
        enabled once).

        Works on every backend: the instance attribute shadows the
        engine's own ``_step`` (including the fast engine's flattened
        loop, whose ``run`` re-binds ``self._step`` each call), so a
        profiled run always uses the shared profiled twin and
        :meth:`disable_profiling` restores the engine's native loop.
        """
        from repro.obs.profiler import SimProfiler

        if self.profiler is None:
            self.profiler = SimProfiler()
        self._step = self._step_profiled  # instance attr shadows the method
        return self.profiler

    def disable_profiling(self):
        """Restore the unprofiled stepping loop (keeps collected data)."""
        self.__dict__.pop("_step", None)

    def profile_report(self, limit=15):
        """Formatted wall-clock attribution (see :meth:`enable_profiling`)."""
        if self.profiler is None:
            raise KernelError(
                "profiling was never enabled; call enable_profiling() "
                "before run()"
            )
        return self.profiler.report(limit)

    def blocked_processes(self):
        """Processes that are alive but permanently blocked right now.

        ``TIMED`` processes whose timer is still pending are *not*
        blocked — their timer will fire and wake them — so they are
        excluded (a timed wait must never trip ``check_deadlock``).
        """
        blocked = []
        for p in self._live:
            state = p.state
            if state is _WAITING:
                blocked.append(p)
            elif state is _TIMED:
                timer = p.timer
                if timer is None or timer.cancelled:
                    blocked.append(p)
        return blocked

    @property
    def live_process_count(self):
        return len(self._live)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def _step(self, process):
        """Resume ``process`` and execute commands until it blocks."""
        self._current = process
        process.state = _RUNNING
        value = process.send_value
        process.send_value = None
        send = process.gen.send
        dispatch_get = self._dispatch.get
        steps = 0
        try:
            while True:
                steps += 1
                try:
                    command = send(value)
                except StopIteration:
                    self._terminate(process)
                    return
                value = None
                handler = dispatch_get(command.__class__)
                if handler is None:
                    handler = self._resolve_handler(process, command)
                if handler(process, command):
                    return
                value = process.send_value
                process.send_value = None
        except SimulationError:
            raise
        except Exception as exc:  # surface model bugs with context
            self._terminate(process)
            raise SimulationError(process.name, exc) from exc
        finally:
            process.step_count += steps
            self._n_steps += steps
            self._current = None

    def _step_profiled(self, process):
        """Profiled twin of :meth:`_step` (see :meth:`enable_profiling`).

        Identical control flow, plus ``perf_counter`` sampling: generator
        resume time goes to ``profiler.by_process[name]``, handler time
        to ``profiler.by_command[tag]``. Kept separate so the unprofiled
        hot path carries zero instrumentation.
        """
        profiler = self.profiler
        by_command = profiler.by_command
        pcell = profiler.by_process.get(process.name)
        if pcell is None:
            pcell = profiler.by_process[process.name] = [0, 0.0]
        self._current = process
        process.state = _RUNNING
        value = process.send_value
        process.send_value = None
        send = process.gen.send
        dispatch_get = self._dispatch.get
        steps = 0
        try:
            while True:
                steps += 1
                t0 = perf_counter()
                try:
                    command = send(value)
                except StopIteration:
                    pcell[1] += perf_counter() - t0
                    self._terminate(process)
                    return
                t1 = perf_counter()
                pcell[1] += t1 - t0
                value = None
                handler = dispatch_get(command.__class__)
                if handler is None:
                    handler = self._resolve_handler(process, command)
                blocked = handler(process, command)
                t2 = perf_counter()
                ccell = by_command.get(command.tag)
                if ccell is None:
                    ccell = by_command[command.tag] = [0, 0.0]
                ccell[0] += 1
                ccell[1] += t2 - t1
                if blocked:
                    return
                value = process.send_value
                process.send_value = None
        except SimulationError:
            raise
        except Exception as exc:  # surface model bugs with context
            self._terminate(process)
            raise SimulationError(process.name, exc) from exc
        finally:
            pcell[0] += steps
            process.step_count += steps
            self._n_steps += steps
            self._current = None

    def _resolve_handler(self, process, command):
        """Slow path: dispatch a command subclass via its MRO (cached)."""
        for cls in type(command).__mro__:
            handler = self._dispatch.get(cls)
            if handler is not None:
                self._dispatch[type(command)] = handler
                return handler
        raise KernelError(
            f"process {process.name!r} yielded a non-command: {command!r}"
        )

    # -- command handlers (registered in the dispatch table) -----------

    def _execute_waitfor(self, process, command):
        process.state = _TIMED
        process.timer = self._resume_timer(
            process, self.now + command.delay, None
        )
        return True

    def _execute_notify(self, process, command):
        events = command.events
        if len(events) == 1:
            self._n_notifications += 1
            events[0]._notify(self)
        else:
            self._n_notifications += len(events)
            for event in events:
                event._notify(self)
        return False

    def _execute_now(self, process, command):
        process.send_value = self.now
        return False

    def _execute_wait(self, process, command):
        events = command.events
        if events:
            if len(events) == 1 or self.oracle is None:
                fired = select_pending(
                    events, self._stamp, process.consumed_stamps
                )
            else:
                fired = self._select_pending_choice(
                    process, events, self.oracle
                )
            if fired is not None:
                process.send_value = fired
                return False
        timeout = command.timeout
        if timeout == 0:
            process.send_value = TIMEOUT
            return False
        process.state = _WAITING
        process.waiting_events = events
        for event in events:
            event._add_waiter(process)
        if timeout is not None:
            process.state = _TIMED
            process.timer = self._resume_timer(
                process, self.now + timeout, TIMEOUT
            )
        return True

    def _execute_par(self, process, command):
        children = [
            self.spawn(child, name=_child_name(process, child, i))
            for i, child in enumerate(command.children)
        ]
        for child in children:
            child.par_parent = process
        process.pending_children = len(children)
        process.state = _WAITING
        return True

    def _execute_fork(self, process, command):
        child = self.spawn(command.child, name=command.name)
        process.send_value = child
        return False

    def _execute_join(self, process, command):
        target = command.process
        if target.state is _TERMINATED:
            return False
        target.joiners.append(process)
        process.state = _WAITING
        return True

    def _terminate(self, process):
        process.state = _TERMINATED
        process._clear_waits()
        self._live.discard(process)
        parent = process.par_parent
        if parent is not None and not parent.terminated:
            parent.pending_children -= 1
            if parent.pending_children == 0:
                parent.state = _READY
                self._next_delta.append(parent)
        for joiner in process.joiners:
            if not joiner.terminated:
                joiner.state = _READY
                self._next_delta.append(joiner)
        process.joiners = []

    # ------------------------------------------------------------------
    # wakeups
    # ------------------------------------------------------------------

    def _wake_from_event(self, process, event):
        """Called by Event._notify for each waiter; resumes next delta."""
        process._clear_waits()
        process.state = _READY
        process.send_value = event
        self._next_delta.append(process)

    def _resume_timer(self, process, time, value):
        """Schedule a timer that resumes ``process`` with ``value``
        (wait-core timer with per-process recycling)."""
        return self._timers.schedule_resume(process, time, value)

    def _schedule_timer(self, time, action):
        """Back-compat shim for the pre-dispatch-table internal API."""
        if callable(action):
            return self.schedule_at(time, action)
        _, process, value = action
        return self._resume_timer(process, time, value)

    def _cancel_timer(self, timer):
        """Cancel a timer the kernel scheduled (lazy, with compaction)."""
        self._timers.cancel(timer)

    @property
    def _heap_dead(self):
        """Cancelled entries still in the timer heap (diagnostics)."""
        return self._timers.dead

    def _next_timer_time(self):
        return self._timers.next_time()

    def _fire_timers(self, time):
        timer_queue = self._timers
        timers = timer_queue.heap
        run_append = self._run_queue.append
        fires = 0
        while timers and (timers[0][2].cancelled or timers[0][0] == time):
            timer = heapq.heappop(timers)[2]
            if timer.cancelled:
                if timer_queue.dead:
                    timer_queue.dead -= 1
                continue
            fires += 1
            process = timer.process
            if process is not None:
                if process.state is _TERMINATED:
                    continue
                value = timer.value
                process.timer = None
                # recycle for the process's next timed wait
                if process.timer_cache is None:
                    timer.value = None
                    process.timer_cache = timer
                process._clear_waits()
                process.state = _READY
                process.send_value = value
                run_append(process)
            else:
                timer.callback()
        self._n_timer_fires += fires

    # ------------------------------------------------------------------
    # decision points (oracle-armed twins of the hot paths; see
    # repro.kernel.oracle — an installed oracle resolves every
    # nondeterministic choice, the unarmed paths above keep the
    # historical FIFO tie-breaks branch-free)
    # ------------------------------------------------------------------

    def _drain_delta_choices(self, oracle):
        """Armed twin of the run loop's delta drain: the order in which
        runnable processes execute within one delta is a ``ready``
        decision point. Choice 0 is always the FIFO head, so a
        :class:`~repro.kernel.oracle.FifoOracle` reproduces the unarmed
        drain exactly (including processes spawned mid-delta running
        after the already-queued ones)."""
        run_queue = self._run_queue
        step = self._step
        while run_queue:
            live = [p for p in run_queue if p.state is not _TERMINATED]
            del run_queue[:]
            if not live:
                return
            if len(live) == 1:
                chosen = live[0]
            else:
                index = oracle.pick(DecisionPoint(
                    "ready", tuple(p.name for p in live), time=self.now,
                ))
                chosen = live.pop(index)
                run_queue.extend(live)
            step(chosen)

    def _fire_timers_choices(self, time, oracle):
        """Armed twin of :meth:`_fire_timers`: the fire order of the
        same-instant timer cohort is a ``timer`` decision point (this
        is where same-instant TIMEOUT-vs-notify races are resolved —
        both contenders are timers of the instant). Choice 0 is the
        insertion-order head, matching the unarmed loop."""
        run_append = self._run_queue.append
        fires = 0
        while True:
            # re-pop after draining a cohort: a callback may have
            # scheduled new same-instant timers (they fire after the
            # current cohort, exactly as in the unarmed loop)
            due = self._timers.pop_due_live(time)
            if not due:
                break
            while due:
                if len(due) == 1:
                    timer = due.pop()
                else:
                    index = oracle.pick(DecisionPoint(
                        "timer", tuple(timer_label(t) for t in due),
                        time=time,
                    ))
                    timer = due.pop(index)
                if timer.cancelled:
                    # cancelled by an earlier fire of this cohort, after
                    # it was already detached from the queue
                    if self._timers.dead:
                        self._timers.dead -= 1
                    continue
                fires += 1
                process = timer.process
                if process is not None:
                    if process.state is _TERMINATED:
                        continue
                    value = timer.value
                    process.timer = None
                    if process.timer_cache is None:
                        timer.value = None
                        process.timer_cache = timer
                    process._clear_waits()
                    process.state = _READY
                    process.send_value = value
                    run_append(process)
                else:
                    timer.callback()
        self._n_timer_fires += fires

    def _select_pending_choice(self, process, events, oracle):
        """Armed twin of :func:`select_pending` for multi-event waits:
        which pending notification satisfies the wait is a ``waitany``
        decision point. Choice 0 is the first pending event in argument
        order, matching the unarmed selection."""
        stamp = self._stamp
        consumed = process.consumed_stamps
        candidates = pending_candidates(events, stamp, consumed)
        if not candidates:
            return None
        if len(candidates) == 1:
            event = candidates[0]
        else:
            index = oracle.pick(DecisionPoint(
                "waitany", tuple(e.name for e in candidates),
                actor=process.name, time=self.now,
            ))
            event = candidates[index]
        consumed[event.uid] = stamp
        return event


def _as_generator(runnable):
    """Normalize the accepted runnable forms into a generator."""
    if hasattr(runnable, "send") and hasattr(runnable, "throw"):
        return runnable
    main = getattr(runnable, "main", None)
    if main is not None:
        return _as_generator(main())
    if callable(runnable):
        return _as_generator(runnable())
    raise TypeError(f"cannot run {runnable!r} as a process")


def _child_name(parent, child, index):
    name = getattr(child, "name", None)
    if name:
        return name
    return f"{parent.name}.child{index}"
