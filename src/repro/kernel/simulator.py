"""The discrete-event simulation engine.

The :class:`Simulator` executes processes under SpecC-like semantics:

* Simulated time is a non-negative integer; it only moves forward.
* Within one timestep, execution proceeds in *delta cycles*: all runnable
  processes execute until they block; processes woken by event
  notifications run in the next delta of the same timestep; when no
  process is runnable, time advances to the earliest pending timer.
* Scheduling is deterministic: processes run in the order they became
  ready (FIFO per delta), and timers fire in (time, insertion) order.
"""

import heapq
import itertools
from collections import deque

from repro.kernel.commands import (
    TIMEOUT,
    Fork,
    Join,
    Notify,
    Par,
    Wait,
    WaitFor,
)
from repro.kernel.errors import DeadlockError, KernelError, SimulationError
from repro.kernel.process import Process, ProcessState
from repro.kernel.trace import Trace


class _Timer:
    """One entry in the timer heap. Cancellation is lazy."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time, seq, action):
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Discrete-event simulator with delta-cycle semantics.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.kernel.trace.Trace` recorder. If omitted,
        a fresh one is created; pass ``trace=None`` explicitly to share a
        recorder between models.
    delta_limit:
        Safety bound on the number of delta cycles within a single
        timestep; exceeding it raises :class:`KernelError` (catches
        zero-delay notify loops).
    """

    def __init__(self, trace=None, delta_limit=100_000):
        self.now = 0
        self.delta = 0
        self.trace = trace if trace is not None else Trace()
        self._delta_limit = delta_limit
        self._run_queue = deque()  # processes runnable in current delta
        self._next_delta = deque()  # processes woken for the next delta
        self._timers = []  # heap of _Timer
        self._timer_seq = itertools.count()
        self._live = set()  # non-terminated processes
        self._current = None  # process currently executing a step
        self._started = False
        self.stats = {
            "spawned": 0,
            "steps": 0,
            "notifications": 0,
            "timer_fires": 0,
            "deltas": 0,
            "timesteps": 0,
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def spawn(self, runnable, name=None):
        """Create a process from ``runnable`` and schedule it.

        ``runnable`` may be a generator, an object with a ``main()``
        generator method (a :class:`~repro.kernel.behavior.Behavior`), or
        a zero-argument callable returning a generator.
        """
        gen = _as_generator(runnable)
        if name is None:
            name = getattr(runnable, "name", None)
        process = Process(gen, name, self)
        self._live.add(process)
        self._run_queue.append(process)
        self.stats["spawned"] += 1
        return process

    def schedule_at(self, time, callback):
        """Run ``callback()`` when simulated time reaches ``time``.

        Used by hardware models (interrupt sources, timers). The callback
        executes before the processes of that timestep and may notify
        events or spawn processes; it must not block.
        """
        time = int(time)
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        return self._schedule_timer(time, callback)

    def schedule_after(self, delay, callback):
        """Run ``callback()`` after ``delay`` time units."""
        return self.schedule_at(self.now + int(delay), callback)

    def run(self, until=None, check_deadlock=False):
        """Execute the simulation.

        Runs until no activity remains, or until simulated time would
        exceed ``until`` (in which case ``now`` is set to ``until``).

        With ``check_deadlock=True``, raises :class:`DeadlockError` if the
        simulation ends (without ``until`` being the cause) while
        processes are still blocked.
        """
        self._started = True
        deltas_this_step = 0
        while True:
            if self._run_queue:
                process = self._run_queue.popleft()
                if not process.terminated:
                    self._step(process)
                continue
            if self._next_delta:
                self.delta += 1
                self.stats["deltas"] += 1
                deltas_this_step += 1
                if deltas_this_step > self._delta_limit:
                    raise KernelError(
                        f"delta limit exceeded at t={self.now} "
                        "(zero-delay notification loop?)"
                    )
                self._run_queue, self._next_delta = (
                    self._next_delta,
                    self._run_queue,
                )
                continue
            next_time = self._next_timer_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return
            self.now = next_time
            # the delta counter is monotonic across the whole run (never
            # reset) so (time, delta) stamps of event notifications are
            # globally unique — a zero-delay re-entry at the same time
            # must not match a stale pending stamp
            self.delta += 1
            deltas_this_step = 0
            self.stats["timesteps"] += 1
            self._fire_timers(next_time)
        if until is not None and self.now < until:
            self.now = until
        if check_deadlock:
            blocked = self.blocked_processes()
            if blocked:
                raise DeadlockError(blocked)

    def blocked_processes(self):
        """Processes that are alive but permanently blocked right now."""
        return [
            p
            for p in self._live
            if p.state in (ProcessState.WAITING, ProcessState.TIMED)
        ]

    @property
    def live_process_count(self):
        return len(self._live)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def _step(self, process):
        """Resume ``process`` and execute commands until it blocks."""
        self._current = process
        process.state = ProcessState.RUNNING
        value = process.send_value
        process.send_value = None
        try:
            while True:
                process.step_count += 1
                self.stats["steps"] += 1
                try:
                    command = process.gen.send(value)
                except StopIteration:
                    self._terminate(process)
                    return
                value = None
                blocked = self._execute(process, command)
                if blocked:
                    return
                value = process.send_value
                process.send_value = None
        except SimulationError:
            raise
        except Exception as exc:  # surface model bugs with context
            self._terminate(process)
            raise SimulationError(process.name, exc) from exc
        finally:
            self._current = None

    def _execute(self, process, command):
        """Execute one command; return True if the process blocked."""
        if isinstance(command, WaitFor):
            process.state = ProcessState.TIMED
            process.timer = self._schedule_timer(
                self.now + command.delay, ("resume", process, None)
            )
            return True
        if isinstance(command, Notify):
            self.stats["notifications"] += len(command.events)
            for event in command.events:
                event._notify(self)
            return False
        if isinstance(command, Wait):
            for event in command.events:
                if (
                    event._is_pending(self)
                    and process.consumed_stamps.get(event.uid)
                    != event._pending_stamp
                ):
                    process.consumed_stamps[event.uid] = event._pending_stamp
                    process.send_value = event
                    return False
            if command.timeout == 0:
                process.send_value = TIMEOUT
                return False
            process.state = ProcessState.WAITING
            process.waiting_events = tuple(command.events)
            for event in command.events:
                event._add_waiter(process)
            if command.timeout is not None:
                process.state = ProcessState.TIMED
                process.timer = self._schedule_timer(
                    self.now + command.timeout, ("resume", process, TIMEOUT)
                )
            return True
        if isinstance(command, Par):
            children = [
                self.spawn(child, name=_child_name(process, child, i))
                for i, child in enumerate(command.children)
            ]
            for child in children:
                child.par_parent = process
            process.pending_children = len(children)
            process.state = ProcessState.WAITING
            return True
        if isinstance(command, Fork):
            child = self.spawn(command.child, name=command.name)
            process.send_value = child
            return False
        if isinstance(command, Join):
            target = command.process
            if target.terminated:
                return False
            target.joiners.append(process)
            process.state = ProcessState.WAITING
            return True
        raise KernelError(
            f"process {process.name!r} yielded a non-command: {command!r}"
        )

    def _terminate(self, process):
        process.state = ProcessState.TERMINATED
        process._clear_waits()
        self._live.discard(process)
        parent = process.par_parent
        if parent is not None and not parent.terminated:
            parent.pending_children -= 1
            if parent.pending_children == 0:
                parent.state = ProcessState.READY
                self._next_delta.append(parent)
        for joiner in process.joiners:
            if not joiner.terminated:
                joiner.state = ProcessState.READY
                self._next_delta.append(joiner)
        process.joiners = []

    # ------------------------------------------------------------------
    # wakeups
    # ------------------------------------------------------------------

    def _wake_from_event(self, process, event):
        """Called by Event._notify for each waiter; resumes next delta."""
        process._clear_waits()
        process.state = ProcessState.READY
        process.send_value = event
        self._next_delta.append(process)

    def _schedule_timer(self, time, action):
        timer = _Timer(time, next(self._timer_seq), action)
        heapq.heappush(self._timers, timer)
        return timer

    def _next_timer_time(self):
        while self._timers and self._timers[0].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return self._timers[0].time

    def _fire_timers(self, time):
        while self._timers and (
            self._timers[0].cancelled or self._timers[0].time == time
        ):
            timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            self.stats["timer_fires"] += 1
            action = timer.action
            if isinstance(action, tuple) and action[0] == "resume":
                _, process, value = action
                if process.terminated:
                    continue
                process.timer = None
                process._clear_waits()
                process.state = ProcessState.READY
                process.send_value = value
                self._run_queue.append(process)
            else:
                action()


def _as_generator(runnable):
    """Normalize the accepted runnable forms into a generator."""
    if hasattr(runnable, "send") and hasattr(runnable, "throw"):
        return runnable
    main = getattr(runnable, "main", None)
    if main is not None:
        return _as_generator(main())
    if callable(runnable):
        return _as_generator(runnable())
    raise TypeError(f"cannot run {runnable!r} as a process")


def _child_name(parent, child, index):
    name = getattr(child, "name", None)
    if name:
        return name
    return f"{parent.name}.child{index}"
