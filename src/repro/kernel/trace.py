"""Trace recording.

All layers of the reproduction (kernel, RTOS model, platform, ISS) emit
:class:`TraceRecord` entries into a shared :class:`Trace`. The analysis
package (:mod:`repro.analysis`) turns these records into Gantt charts,
response times and the transcoding-delay metric of Table 1; the
observability package (:mod:`repro.obs`) exports them to external tools
(Chrome Trace Format / Perfetto, VCD, JSONL).

Record categories used across the project:

``exec``
    a named actor executed for a time segment (``data`` holds ``start``
    and ``end``); emitted by behaviors and RTOS tasks.
``task``
    an RTOS task state transition (``data["state"]``).
``sched``
    scheduler activity: ``dispatch``, ``preempt``, ``switch``.
``irq``
    interrupt raised / serviced.
``chan``
    channel send/receive.
``user``
    free-form application markers.

Records are written through a pluggable **sink** (see
:class:`TraceSink`). The default :class:`ListSink` keeps everything in
an in-memory list — bit-identical behavior to the pre-sink recorder —
while :mod:`repro.obs.sinks` adds a bounded ring buffer and a streaming
JSONL file sink for simulations whose full trace must not live in
memory.
"""

from itertools import islice

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: int
    category: str
    actor: str
    info: str = ""
    data: dict = field(default_factory=dict)

    def __str__(self):
        extra = f" {self.data}" if self.data else ""
        return f"[{self.time:>10}] {self.category:<6} {self.actor:<16} {self.info}{extra}"


class TraceSink:
    """Destination of trace records (duck-typed protocol + base class).

    A sink receives every record via ``emit(record)``; ``records`` is an
    iterable view of what the sink still holds in memory (possibly a
    bounded window, possibly nothing for streaming sinks). ``emit`` is
    looked up once by :class:`Trace` and called directly on the hot
    path, so implementations should make it as cheap as possible.
    """

    def emit(self, record):  # pragma: no cover - overridden everywhere
        raise NotImplementedError

    @property
    def records(self):
        """Records still held in memory (may be a subset, or empty)."""
        return ()

    @property
    def emitted(self):
        """Total records this sink has ever received."""
        return 0

    def clear(self):
        """Forget everything recorded so far (including backing files)."""

    def flush(self):
        """Push buffered records to their backing store, if any."""

    def close(self):
        """Release resources; the sink must not be emitted to afterwards."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ListSink(TraceSink):
    """Unbounded in-memory sink — the default, and the seed behavior.

    ``emit`` *is* the backing list's ``append`` (no wrapper frame), so a
    trace writing through this sink costs exactly what the pre-sink
    ``self.records.append(...)`` did.
    """

    def __init__(self):
        self._records = []
        self.emit = self._records.append

    @property
    def records(self):
        return self._records

    @property
    def emitted(self):
        return len(self._records)

    def clear(self):
        # in place: ``emit`` stays bound to the same list
        self._records.clear()


def _noop(*args, **kwargs):
    """Stand-in for ``record``/``segment`` while tracing is disabled."""
    return None


class Trace:
    """An append-only record stream with query helpers.

    Records are written through ``sink`` (default: a fresh
    :class:`ListSink`). The query helpers read the sink's in-memory
    ``records`` view — for a streaming sink (e.g.
    :class:`repro.obs.sinks.JsonlSink`) they see nothing; reload the
    file with :func:`repro.obs.sinks.load_jsonl` to query it.

    Disabling (``trace.enabled = False``) swaps the ``record`` and
    ``segment`` entry points for a module-level no-op on the *instance*,
    so call sites pay one attribute lookup and an empty call — no
    ``if enabled`` branch, no :class:`TraceRecord` construction — when
    tracing is off.
    """

    def __init__(self, sink=None):
        self._sink = sink if sink is not None else ListSink()
        self._emit = self._sink.emit
        self._enabled = True

    @property
    def sink(self):
        return self._sink

    @sink.setter
    def sink(self, sink):
        self._sink = sink
        self._emit = sink.emit

    @property
    def records(self):
        """In-memory records view of the attached sink."""
        return self._sink.records

    @property
    def enabled(self):
        return self._enabled

    @enabled.setter
    def enabled(self, value):
        value = bool(value)
        self._enabled = value
        if value:
            # drop the instance-level no-ops; the class methods show again
            self.__dict__.pop("record", None)
            self.__dict__.pop("segment", None)
        else:
            self.record = _noop
            self.segment = _noop

    def record(self, time, category, actor, info="", **data):
        self._emit(TraceRecord(time, category, actor, info, data))

    def segment(self, actor, start, end, info="run"):
        """Record one contiguous execution segment of ``actor``."""
        self._emit(
            TraceRecord(end, "exec", actor, info,
                        {"start": start, "end": end})
        )

    # -- queries -----------------------------------------------------------

    def by_category(self, category):
        return [r for r in self.records if r.category == category]

    def by_actor(self, actor):
        return [r for r in self.records if r.actor == actor]

    def segments(self, actor=None):
        """All ``exec`` segments as (actor, start, end, info) tuples."""
        result = []
        for r in self.records:
            if r.category != "exec":
                continue
            if actor is not None and r.actor != actor:
                continue
            result.append((r.actor, r.data["start"], r.data["end"], r.info))
        result.sort(key=lambda s: (s[1], s[2]))
        return result

    def count(self, category, info=None):
        return sum(
            1
            for r in self.records
            if r.category == category and (info is None or r.info == info)
        )

    def clear(self):
        """Reset the attached sink (in-memory records *and* any backing
        file), preserving the ``enabled`` no-op swap state."""
        self._sink.clear()

    def flush(self):
        """Flush the attached sink's buffers (file sinks)."""
        self._sink.flush()

    def close(self):
        """Close the attached sink (file sinks)."""
        self._sink.close()

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def dump(self, limit=None):
        """Human-readable rendering of the trace (for examples/benches)."""
        records = self.records if limit is None else islice(self.records, limit)
        return "\n".join(str(r) for r in records)
