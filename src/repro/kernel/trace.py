"""Trace recording.

All layers of the reproduction (kernel, RTOS model, platform, ISS) emit
:class:`TraceRecord` entries into a shared :class:`Trace`. The analysis
package (:mod:`repro.analysis`) turns these records into Gantt charts,
response times and the transcoding-delay metric of Table 1.

Record categories used across the project:

``exec``
    a named actor executed for a time segment (``data`` holds ``start``
    and ``end``); emitted by behaviors and RTOS tasks.
``task``
    an RTOS task state transition (``data["state"]``).
``sched``
    scheduler activity: ``dispatch``, ``preempt``, ``switch``.
``irq``
    interrupt raised / serviced.
``chan``
    channel send/receive.
``user``
    free-form application markers.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: int
    category: str
    actor: str
    info: str = ""
    data: dict = field(default_factory=dict)

    def __str__(self):
        extra = f" {self.data}" if self.data else ""
        return f"[{self.time:>10}] {self.category:<6} {self.actor:<16} {self.info}{extra}"


def _noop(*args, **kwargs):
    """Stand-in for ``record``/``segment`` while tracing is disabled."""
    return None


class Trace:
    """An append-only list of trace records with query helpers.

    Disabling (``trace.enabled = False``) swaps the ``record`` and
    ``segment`` entry points for a module-level no-op on the *instance*,
    so call sites pay one attribute lookup and an empty call — no
    ``if enabled`` branch, no :class:`TraceRecord` construction — when
    tracing is off.
    """

    def __init__(self):
        self.records = []
        self._enabled = True

    @property
    def enabled(self):
        return self._enabled

    @enabled.setter
    def enabled(self, value):
        value = bool(value)
        self._enabled = value
        if value:
            # drop the instance-level no-ops; the class methods show again
            self.__dict__.pop("record", None)
            self.__dict__.pop("segment", None)
        else:
            self.record = _noop
            self.segment = _noop

    def record(self, time, category, actor, info="", **data):
        self.records.append(TraceRecord(time, category, actor, info, data))

    def segment(self, actor, start, end, info="run"):
        """Record one contiguous execution segment of ``actor``."""
        self.records.append(
            TraceRecord(end, "exec", actor, info,
                        {"start": start, "end": end})
        )

    # -- queries -----------------------------------------------------------

    def by_category(self, category):
        return [r for r in self.records if r.category == category]

    def by_actor(self, actor):
        return [r for r in self.records if r.actor == actor]

    def segments(self, actor=None):
        """All ``exec`` segments as (actor, start, end, info) tuples."""
        result = []
        for r in self.records:
            if r.category != "exec":
                continue
            if actor is not None and r.actor != actor:
                continue
            result.append((r.actor, r.data["start"], r.data["end"], r.info))
        result.sort(key=lambda s: (s[1], s[2]))
        return result

    def count(self, category, info=None):
        return sum(
            1
            for r in self.records
            if r.category == category and (info is None or r.info == info)
        )

    def clear(self):
        self.records.clear()

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def dump(self, limit=None):
        """Human-readable rendering of the trace (for examples/benches)."""
        records = self.records if limit is None else self.records[:limit]
        return "\n".join(str(r) for r in records)
