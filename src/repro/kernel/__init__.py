"""SpecC-like system-level design language (SLDL) simulation kernel.

This package is the substrate of the reproduction: a discrete-event
simulation kernel with the primitives the paper's RTOS model relies on.
It mirrors the SpecC execution semantics the paper assumes:

* **Processes** are Python generators that ``yield`` kernel commands.
* **Time** advances in discrete integer steps (nanoseconds by convention)
  through :class:`~repro.kernel.commands.WaitFor` (SpecC ``waitfor``).
* **Events** provide ``wait``/``notify`` synchronization with delta-cycle
  delivery semantics (:mod:`repro.kernel.events`).
* **Parallel composition** (SpecC ``par``) forks child processes and joins
  on their completion (:class:`~repro.kernel.commands.Par`).
* **Behaviors and channels** are the structural modeling units
  (:mod:`repro.kernel.behavior`, :mod:`repro.kernel.channel`).

Example
-------
>>> from repro.kernel import Simulator, WaitFor, Wait, Notify, Event
>>> sim = Simulator()
>>> done = Event("done")
>>> def producer():
...     yield WaitFor(10)
...     yield Notify(done)
>>> def consumer(log):
...     yield Wait(done)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.spawn(producer(), name="producer")
>>> _ = sim.spawn(consumer(log), name="consumer")
>>> sim.run()
>>> log
[10]
"""

from repro.kernel.backend import (
    available_backends,
    pick_backend,
    register_backend,
)
from repro.kernel.commands import (
    NOW,
    TIMEOUT,
    Fork,
    Join,
    Notify,
    Now,
    Par,
    Wait,
    WaitFor,
)
from repro.kernel.errors import (
    DeadlockError,
    KernelError,
    SimulationError,
    UnboundPortError,
)
from repro.kernel.events import Event
from repro.kernel.oracle import (
    DecisionPoint,
    FifoOracle,
    RecordingOracle,
    ReplayOracle,
    ScheduleDivergence,
    ScheduleOracle,
)
from repro.kernel.process import Process, ProcessState
from repro.kernel.simulator import Simulator
from repro.kernel.behavior import Behavior, par, seq
from repro.kernel.channel import Channel
from repro.kernel.ports import Port
from repro.kernel.trace import Trace, TraceRecord

__all__ = [
    "Behavior",
    "Channel",
    "DeadlockError",
    "DecisionPoint",
    "Event",
    "FifoOracle",
    "Fork",
    "Join",
    "KernelError",
    "NOW",
    "Notify",
    "Now",
    "Par",
    "Port",
    "Process",
    "ProcessState",
    "RecordingOracle",
    "ReplayOracle",
    "ScheduleDivergence",
    "ScheduleOracle",
    "SimulationError",
    "Simulator",
    "TIMEOUT",
    "Trace",
    "TraceRecord",
    "UnboundPortError",
    "Wait",
    "WaitFor",
    "available_backends",
    "par",
    "pick_backend",
    "register_backend",
    "seq",
]
