"""SLDL events with SpecC-like delta-cycle delivery semantics.

An :class:`Event` is the primitive synchronization object of the kernel
(SpecC ``event``). The semantics implemented here:

* ``notify`` wakes every process currently waiting on the event; the woken
  processes resume in the **next delta cycle** of the current timestep.
* A notification additionally stays *pending* until the end of the delta
  cycle in which it was issued: a process that executes ``wait`` on the
  event later **within the same delta** catches the notification and does
  not block. This removes same-delta notify/wait races, matching SpecC's
  behavior of events persisting for the remainder of the current delta.
* Notifications never persist across delta boundaries or timesteps (events
  are not semaphores — a ``wait`` issued one delta later misses the event).

Events are plain synchronization points; they carry no data. Channels
(:mod:`repro.channels`) layer data transfer on top of them.
"""

import itertools

from repro.kernel.waitcore import WaitQueue

_event_ids = itertools.count()


class Event:
    """A SpecC-style synchronization event.

    Parameters
    ----------
    name:
        Optional label used in traces and error messages.
    """

    __slots__ = ("name", "uid", "_waiters", "_pending_stamp", "notify_count")

    def __init__(self, name=None):
        self.uid = next(_event_ids)
        self.name = name or f"event{self.uid}"
        #: processes currently blocked on this event — a wait-core
        #: :class:`WaitQueue`: insertion-ordered (FIFO wakeups) with O(1)
        #: detach (every wakeup removes the process from all events of
        #: its wait-any set)
        self._waiters = WaitQueue()
        #: (time, delta) stamp of the last notification, used for the
        #: pending-within-delta rule; ``None`` when no notification
        #: pends. The stamp is the simulator's shared ``_stamp`` object,
        #: so "pending in the current delta" is an identity test.
        self._pending_stamp = None
        #: total number of notifications issued (diagnostics)
        self.notify_count = 0

    def __repr__(self):
        return f"Event({self.name!r})"

    # -- kernel-facing API -------------------------------------------------

    def _add_waiter(self, process):
        self._waiters[process.uid] = process

    def _remove_waiter(self, process):
        self._waiters.pop(process.uid, None)

    def _pop_waiters(self):
        """Detach and return all waiters in FIFO order."""
        waiters = self._waiters
        if not waiters:
            return ()
        self._waiters = WaitQueue()
        return waiters.values()

    def _notify(self, sim):
        """Wake all waiters (next delta) and mark the event pending.

        Called by the kernel when executing a
        :class:`~repro.kernel.commands.Notify` command, and directly by
        hardware models (timers, interrupt sources).
        """
        self.notify_count += 1
        self._pending_stamp = sim._stamp
        waiters = self._waiters
        if waiters:
            self._waiters = WaitQueue()
            wake = sim._wake_from_event
            for process in waiters.values():
                wake(process, self)

    def _is_pending(self, sim):
        """True if a notification was issued earlier in the current delta."""
        return self._pending_stamp is sim._stamp

    def fire(self, sim):
        """Notify this event from non-process context (callbacks, RTOS).

        Equivalent to a process yielding ``Notify(self)``; usable from
        kernel timer callbacks and from RTOS-model bookkeeping code that
        runs inside another process's step.
        """
        self._notify(sim)

    # -- convenience -------------------------------------------------------

    @property
    def waiter_count(self):
        """Number of processes currently blocked on this event."""
        return len(self._waiters)
