"""Behaviors: the structural modeling unit of the SLDL (SpecC ``behavior``).

A behavior encapsulates computation with a ``main()`` generator method and
communicates through ports bound to channels. Specification models are
serial-parallel compositions of behaviors (paper Figure 2(a)); the
refinement layer converts behaviors into RTOS tasks (Figures 5/6).

Behaviors deliberately stay thin: they are regular Python objects whose
``main()`` yields kernel commands, so the same behavior code runs
unmodified in the specification model and — via
:mod:`repro.refinement.auto` — inside the RTOS-based architecture model.
"""

from repro.kernel.commands import Par


class Behavior:
    """Base class for SLDL behaviors.

    Subclasses implement :meth:`main` as a generator yielding kernel
    commands. The ``sim`` attribute is injected by the model top-level (or
    by :func:`bind`) so behaviors can read the current time for tracing.
    """

    def __init__(self, name=None, sim=None):
        self.name = name or type(self).__name__
        self.sim = sim

    def main(self):
        """Body of the behavior; must be a generator."""
        raise NotImplementedError
        yield  # pragma: no cover

    def bind(self, sim):
        """Attach the simulator; returns self for chaining."""
        self.sim = sim
        return self

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"


def seq(*behaviors):
    """Sequential composition: run each behavior's main() in order.

    SpecC sequential statement composition. Accepts behaviors or raw
    generators.
    """

    def _seq():
        for b in behaviors:
            gen = b.main() if hasattr(b, "main") else b
            yield from gen

    return _seq()


def par(*behaviors):
    """Parallel composition command (SpecC ``par { ... }``).

    Usage inside a behavior: ``yield par(b1, b2)``.
    """
    return Par(*behaviors)
