"""Ports: typed connection points between behaviors and channels.

SpecC behaviors access channels exclusively through ports bound at
instantiation. We model this with a small descriptor that raises
:class:`~repro.kernel.errors.UnboundPortError` when a behavior uses a port
that was never connected — catching a class of wiring bugs that silent
``None`` attributes would hide.
"""

from repro.kernel.errors import UnboundPortError


class Port:
    """Descriptor for a named port on a behavior class.

    Usage::

        class B2(Behavior):
            c1 = Port("c1")

            def main(self):
                yield from self.c1.send(data)

        b2 = B2()
        B2.c1.bind(b2, channel)    # or: b2.c1 = channel
    """

    def __init__(self, name, interface=None):
        self.name = name
        #: optional interface class the bound channel must provide
        self.interface = interface
        self._attr = f"_port_{name}"

    def __set_name__(self, owner, attr):
        self._attr = f"_port_{attr}"

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        try:
            return getattr(obj, self._attr)
        except AttributeError:
            raise UnboundPortError(
                f"port {self.name!r} of {obj!r} is not bound to a channel"
            ) from None

    def __set__(self, obj, channel):
        if self.interface is not None and not isinstance(channel, self.interface):
            raise TypeError(
                f"port {self.name!r} requires {self.interface.__name__}, "
                f"got {type(channel).__name__}"
            )
        setattr(obj, self._attr, channel)

    def bind(self, obj, channel):
        self.__set__(obj, channel)
