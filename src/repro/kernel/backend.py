"""Kernel backend selection.

The simulator comes in interchangeable *backends* — engine
implementations that share the exact same observable semantics (the
golden-trace suite runs byte-identical over all of them) but make
different speed/simplicity trade-offs:

``reference``
    today's engine (:class:`~repro.kernel.simulator.Simulator` itself):
    heap timer queue, type-keyed command dispatch. The semantic ground
    truth every other backend is tested against.
``fast``
    the throughput engine (:class:`~repro.kernel.fastsim.FastSimulator`):
    calendar-bucket timer wheel, opcode-flattened dispatch with the hot
    commands inlined into the stepping loop, merged fire-timers /
    advance-time inner loop.

Selection, in precedence order:

1. the explicit constructor argument — ``Simulator(backend="fast")``;
2. the ``REPRO_KERNEL_BACKEND`` environment variable (lets the golden
   suite, benchmarks and whole applications switch engines without
   touching call sites);
3. the default, ``reference``.

The registry maps backend names to classes lazily (dotted
``module:attr`` strings resolved on first use), so importing the kernel
does not import every engine — and a future compiled engine (the
mypyc/Cython build ROADMAP sketches) can register itself without
touching this module.
"""

import importlib
import os

from repro.kernel.errors import KernelError

#: environment variable consulted when no explicit backend is passed
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

DEFAULT_BACKEND = "reference"

#: name -> Simulator subclass, or a lazy "module.path:Attr" string
_REGISTRY = {
    "reference": "repro.kernel.simulator:Simulator",
    "fast": "repro.kernel.fastsim:FastSimulator",
}


def register_backend(name, target):
    """Register a backend class (or lazy ``"module:attr"`` string).

    Re-registering an existing name replaces it — tests use this to
    inject instrumented engines.
    """
    _REGISTRY[name] = target


def available_backends():
    """Registered backend names, default first."""
    names = sorted(_REGISTRY)
    names.remove(DEFAULT_BACKEND)
    return (DEFAULT_BACKEND, *names)


def pick_backend(name=None):
    """Resolve a backend name to its simulator class.

    ``name=None`` falls back to ``$REPRO_KERNEL_BACKEND``, then to
    ``reference``. Unknown names raise :class:`KernelError` listing the
    registered backends.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    target = _REGISTRY.get(name)
    if target is None:
        raise KernelError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    if isinstance(target, str):
        module_name, _, attr = target.partition(":")
        target = getattr(importlib.import_module(module_name), attr)
        _REGISTRY[name] = target
    return target
