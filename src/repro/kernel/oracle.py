"""First-class decision points: the kernel's nondeterminism seam.

Historically every tie-break in the stack was baked into a data
structure: the run queue drained FIFO, same-instant timers fired in
insertion order, wait-any picked the first pending event in argument
order, the RTOS dispatcher broke priority ties by ready order, event
notification woke waiters FIFO, interrupts arrived exactly at their
programmed instants, and fault injection flipped seeded coins. All of
those orders are *choices* — the paper's RTOS model makes scheduling
behavior observable at the system level, and the Spin-style efforts in
PAPERS.md check such models by enumerating exactly these choices.

This module turns the scattered tie-breaks into one audited interface:

* a :class:`DecisionPoint` describes one choice the simulation is about
  to make — its ``kind``, the ``choices`` (stable string labels), the
  deciding ``actor`` and the simulated ``time``;
* a :class:`ScheduleOracle` resolves decision points. The kernel (and
  the RTOS/platform/fault layers above it) consult the simulator's
  installed oracle at every point where more than one choice exists.

The default is **no oracle installed** (``Simulator.oracle is None``):
every layer then takes its historical FIFO/insertion-order tie-break on
a branch-free path, and traces stay byte-identical to earlier releases.
:class:`FifoOracle` — always pick choice 0 — is the explicit twin of
that default: installing it must not change any observable behavior
(pinned by the tie-break regression tests and a hypothesis property).

Decision kinds routed through the oracle:

=========  ============================================================
``ready``  which runnable process executes next within a delta cycle
``timer``  which of several same-instant timers fires next (this also
           resolves same-instant TIMEOUT-vs-notify races: both sides
           are timers at that instant)
``waitany``  which pending event satisfies a multi-event ``Wait``
``dispatch``  which of several *tied-best* ready tasks the RTOS
           dispatcher grants the CPU (ties only — strict priority
           order is policy, not nondeterminism)
``wake``   the order in which ``event_notify`` releases multiple
           waiting tasks to the ready queue
``irq``    which arrival slot a jittered interrupt lands in
``fault``  whether an armed probabilistic fault fires (a branch, not a
           coin flip, when an oracle is installed)
=========  ============================================================

:class:`RecordingOracle` captures every decision as a replayable step
list; :class:`ReplayOracle` re-executes such a list deterministically —
the violation-reproduction contract of :mod:`repro.explore`.
"""

from repro.kernel.errors import KernelError

#: decision kinds the stack currently routes through the oracle
DECISION_KINDS = (
    "ready", "timer", "waitany", "dispatch", "wake", "irq", "fault",
)


class DecisionPoint:
    """One nondeterministic choice about to be made by the simulation.

    ``choices`` are stable string labels (process/task/event/line names,
    timer labels, arrival-slot offsets) — never bare indices — so
    recorded schedules are self-describing and replay can detect
    divergence.
    """

    __slots__ = ("kind", "choices", "actor", "time")

    def __init__(self, kind, choices, actor="", time=0):
        self.kind = kind
        self.choices = tuple(choices)
        self.actor = actor
        self.time = time

    def __repr__(self):
        return (
            f"DecisionPoint({self.kind!r}, {self.choices!r}, "
            f"actor={self.actor!r}, t={self.time})"
        )


class ScheduleOracle:
    """Base class: resolves decision points, keeps the decision trail.

    Subclasses implement :meth:`choose`; the simulation layers call
    :meth:`pick`, which validates the answer and appends a
    ``"kind:label"`` entry to :attr:`trail` — the decision-path prefix
    that diagnostics (notably :class:`~repro.kernel.errors.DeadlockError`)
    carry when a violation is reached mid-exploration.
    """

    def __init__(self):
        #: ``"kind:chosen-label"`` per decision, in decision order
        self.trail = []
        #: total decisions resolved
        self.decisions = 0

    def choose(self, point):
        """Return the index of the chosen entry in ``point.choices``."""
        raise NotImplementedError

    def pick(self, point):
        """Resolve ``point``: validate the choice and record the trail."""
        index = self.choose(point)
        if not 0 <= index < len(point.choices):
            raise KernelError(
                f"oracle chose index {index} of {len(point.choices)} "
                f"choices at {point!r}"
            )
        self.decisions += 1
        self.trail.append(f"{point.kind}:{point.choices[index]}")
        return index


class FifoOracle(ScheduleOracle):
    """Always pick the first choice — the explicit form of the default.

    Choice 0 is, at every decision point, the historical tie-break
    (FIFO ready order, timer insertion order, first pending event,
    lowest ready-seq tied task, FIFO wake order, on-time IRQ arrival,
    no fault injected), so a run under an installed ``FifoOracle`` is
    byte-identical to a run with no oracle at all.
    """

    def choose(self, point):
        return 0


class RecordingOracle(ScheduleOracle):
    """Delegate to an inner oracle and record every decision.

    :attr:`steps` is the replayable schedule: one dict per decision with
    the point's ``kind``/``actor``/``time``, the full ``choices`` label
    list and the chosen index (``pick``). Feed it to
    :class:`ReplayOracle` (or persist it with
    :func:`repro.explore.schedule.save_schedule`).
    """

    def __init__(self, inner=None):
        super().__init__()
        self.inner = inner if inner is not None else FifoOracle()
        self.steps = []

    def choose(self, point):
        return self.inner.choose(point)

    def pick(self, point):
        index = super().pick(point)
        self.steps.append({
            "kind": point.kind,
            "actor": point.actor,
            "time": point.time,
            "choices": list(point.choices),
            "pick": index,
        })
        return index


class ScheduleDivergence(KernelError):
    """A replayed schedule no longer matches the simulation's decisions.

    Raised by :class:`ReplayOracle` in strict mode when the decision
    point encountered at some step differs (kind or choice labels) from
    the recorded one — the model under replay is not the model that was
    recorded.
    """


class ReplayOracle(ScheduleOracle):
    """Re-execute a recorded schedule deterministically.

    ``steps`` is a :class:`RecordingOracle`-shaped list (dicts with at
    least ``pick``; bare integers are accepted too). In strict mode
    (default) each step's recorded ``kind`` and ``choices`` must match
    the decision point actually reached, so silent divergence is an
    error rather than a wrong-but-running replay. Once the schedule is
    exhausted the oracle falls back to FIFO (choice 0) — a recorded
    *prefix* replays the decisions that matter and defaults the rest.
    """

    def __init__(self, steps, strict=True):
        super().__init__()
        self.steps = list(steps)
        self.strict = strict
        self.position = 0

    def choose(self, point):
        if self.position >= len(self.steps):
            return 0
        step = self.steps[self.position]
        self.position += 1
        if isinstance(step, int):
            return step
        if self.strict:
            kind = step.get("kind")
            if kind is not None and kind != point.kind:
                raise ScheduleDivergence(
                    f"replay step {self.position}: recorded a "
                    f"{kind!r} decision but the simulation reached "
                    f"{point!r}"
                )
            choices = step.get("choices")
            if choices is not None and tuple(choices) != point.choices:
                raise ScheduleDivergence(
                    f"replay step {self.position}: recorded choices "
                    f"{tuple(choices)!r} but the simulation offers "
                    f"{point.choices!r}"
                )
        return step["pick"]

    @property
    def exhausted(self):
        """True once every recorded step has been consumed."""
        return self.position >= len(self.steps)
