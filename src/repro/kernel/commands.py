"""Commands yielded by simulated processes.

A process is a Python generator. Each ``yield`` hands a command object to
the kernel, which executes it and (for blocking commands) suspends the
process until the command completes. The commands map one-to-one onto the
SpecC primitives the paper builds on:

==================  =========================================
SpecC               command
==================  =========================================
``waitfor(d)``      ``yield WaitFor(d)``
``wait(e1, e2)``    ``yield Wait(e1, e2)`` (wait-any)
``notify(e)``       ``yield Notify(e)``
``par { ... }``     ``yield Par(child1, child2, ...)``
spawn/join          ``yield Fork(child)`` / ``yield Join(proc)``
==================  =========================================

Commands are plain data objects; the refinement layer
(:mod:`repro.refinement.auto`) relies on this to intercept and translate
them into RTOS-model calls without changing application code.
"""


class _Timeout:
    """Sentinel returned by :class:`Wait` when its timeout fired first."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "TIMEOUT"


#: Singleton sentinel: a :class:`Wait` with a timeout returns this when the
#: timeout expired before any of the awaited events was notified.
TIMEOUT = _Timeout()


class Command:
    """Base class of all kernel commands.

    Every concrete command class carries a class-level ``tag``; the
    simulator uses it to register an ``_execute_<tag>`` handler in its
    type-keyed dispatch table (no per-command ``isinstance`` chain on the
    hot path). Subclasses of a concrete command inherit the tag and are
    dispatched to the same handler.

    Each concrete class additionally carries a small integer ``op``
    (stable, densely numbered). The fast backend
    (:mod:`repro.kernel.fastsim`) reads ``command.op`` — one class
    attribute load — and indexes a flat handler array with it instead of
    hashing the command class; subclasses inherit the opcode exactly as
    they inherit the tag.
    """

    __slots__ = ()

    #: dispatch key — set by each concrete command class
    tag = None

    #: flat-dispatch index — set by each concrete command class
    op = None


class WaitFor(Command):
    """Advance simulated time by ``delay`` time units (SpecC ``waitfor``).

    ``delay`` must be a non-negative integer. ``WaitFor(0)`` yields control
    to the other runnable processes of the current timestep without
    advancing time; the singleton :data:`YIELD_CONTROL` is a reusable
    instance of it for allocation-free cooperative yields.
    """

    __slots__ = ("delay",)

    tag = "waitfor"
    op = 0

    def __init__(self, delay):
        delay = int(delay)
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.delay = delay

    def __repr__(self):
        return f"WaitFor({self.delay})"


#: Reusable ``WaitFor(0)`` — yield the processor for the rest of the
#: current timestep without allocating a command object.
YIELD_CONTROL = WaitFor(0)


class Wait(Command):
    """Block until any of the given events is notified (SpecC ``wait``).

    The command evaluates to the :class:`~repro.kernel.events.Event` that
    woke the process, i.e. ``fired = yield Wait(e1, e2)``.

    A ``timeout`` (integer time units) may be supplied; if it elapses before
    any event fires, the command evaluates to :data:`TIMEOUT`. This
    extension is used by the RTOS model's *immediate* preemption mode.
    """

    __slots__ = ("events", "timeout")

    tag = "wait"
    op = 1

    def __init__(self, *events, timeout=None):
        if not events and timeout is None:
            raise ValueError("Wait() needs at least one event or a timeout")
        if timeout is not None:
            timeout = int(timeout)
            if timeout < 0:
                raise ValueError(f"negative timeout: {timeout}")
        self.events = events
        self.timeout = timeout

    def __repr__(self):
        names = ", ".join(repr(e) for e in self.events)
        if self.timeout is not None:
            return f"Wait({names}, timeout={self.timeout})"
        return f"Wait({names})"


class Notify(Command):
    """Notify events (SpecC ``notify``); the process continues immediately.

    Delivery follows delta-cycle semantics, see
    :meth:`repro.kernel.events.Event.notify`.
    """

    __slots__ = ("events",)

    tag = "notify"
    op = 2

    def __init__(self, *events):
        if not events:
            raise ValueError("Notify() needs at least one event")
        self.events = events

    def __repr__(self):
        return f"Notify({', '.join(repr(e) for e in self.events)})"


class Now(Command):
    """Read the current simulated time; never blocks.

    Evaluates to the integer timestamp: ``t = yield Now()``. Lets
    sim-agnostic library code (channel timeout loops, instrumentation)
    observe time without holding a simulator reference; the reusable
    singleton :data:`NOW` avoids per-query allocation.
    """

    __slots__ = ()

    tag = "now"
    op = 3

    def __repr__(self):
        return "Now()"


#: Reusable ``Now()`` — query the simulation clock without allocating.
NOW = Now()


class Par(Command):
    """Fork child processes and block until all of them terminate.

    Children may be generators, :class:`~repro.kernel.behavior.Behavior`
    instances (their ``main()`` is used) or ``(name, generator)`` tuples.
    This is SpecC's ``par { ... }`` composition.
    """

    __slots__ = ("children",)

    tag = "par"
    op = 4

    def __init__(self, *children):
        if not children:
            raise ValueError("Par() needs at least one child")
        self.children = children

    def __repr__(self):
        return f"Par(<{len(self.children)} children>)"


class Fork(Command):
    """Spawn an independent child process; evaluates to its Process handle.

    Unlike :class:`Par` the caller does not block. Combine with
    :class:`Join` for explicit fork/join control.
    """

    __slots__ = ("child", "name")

    tag = "fork"
    op = 5

    def __init__(self, child, name=None):
        self.child = child
        self.name = name

    def __repr__(self):
        return f"Fork({self.name or self.child!r})"


class Join(Command):
    """Block until the given :class:`~repro.kernel.process.Process` ends."""

    __slots__ = ("process",)

    tag = "join"
    op = 6

    def __init__(self, process):
        self.process = process

    def __repr__(self):
        return f"Join({self.process!r})"


#: number of distinct opcodes — the fast backend sizes its handler
#: array with this
N_OPS = 7
