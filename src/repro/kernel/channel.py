"""Channel base class (SpecC ``channel``).

Channels encapsulate communication and synchronization between behaviors.
A channel method that can block is a generator that the calling behavior
delegates to with ``yield from`` — exactly mirroring how SpecC channel
methods execute in the caller's thread of control.

Concrete channels live in :mod:`repro.channels`; this module only defines
the common base and naming.
"""

import itertools

_channel_ids = itertools.count()


class Channel:
    """Base class for all channels.

    Channels built from SLDL events (the specification-model flavor) keep
    their events in ``self.events`` so the refinement tool can enumerate
    and remap them onto RTOS events (paper Figure 7).

    Channels can be *observed*: ``attach_metrics(registry)`` (overridden
    by the concrete channels in :mod:`repro.channels`) registers
    occupancy/throughput instruments in a
    :class:`~repro.obs.metrics.MetricsRegistry`. The ``_obs`` class
    attribute is the detached default, so un-instrumented channels pay
    one attribute load and a ``None`` compare per operation.
    """

    #: instrument bundle; None while no registry is attached
    _obs = None
    #: armed FaultInjector; None = fault-free channel (same guard)
    _faults = None

    def __init__(self, name=None):
        self.name = name or f"{type(self).__name__.lower()}{next(_channel_ids)}"

    def attach_metrics(self, registry):
        """Register this channel's instruments in ``registry``.

        The base channel has nothing to measure; concrete channels
        override this and return their instrument bundle.
        """
        return None

    def attach_faults(self, injector):
        """Arm a :class:`~repro.faults.inject.FaultInjector` on this
        channel: its ``stuck_channel`` / ``slow_channel`` specs gate the
        channel's blocking operations. Returns the injector."""
        self._faults = injector
        return injector

    def detach_faults(self):
        """Disarm fault injection on this channel."""
        self._faults = None

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"
