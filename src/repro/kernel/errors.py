"""Exception hierarchy of the SLDL kernel."""


class KernelError(Exception):
    """Base class for all kernel-level errors."""


class SimulationError(KernelError):
    """An error occurred inside a simulated process.

    Wraps the original exception so the failing process can be identified.
    """

    def __init__(self, process_name, original):
        super().__init__(f"process {process_name!r} raised {original!r}")
        self.process_name = process_name
        self.original = original


class DeadlockError(KernelError):
    """Simulation ended with processes still blocked and no pending events."""

    def __init__(self, blocked):
        names = ", ".join(sorted(p.name for p in blocked))
        super().__init__(f"deadlock: processes still blocked: {names}")
        self.blocked = tuple(blocked)


class UnboundPortError(KernelError):
    """A behavior accessed a port that was never bound to a channel."""
