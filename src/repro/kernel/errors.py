"""Exception hierarchy of the SLDL kernel."""


class KernelError(Exception):
    """Base class for all kernel-level errors."""


class SimulationError(KernelError):
    """An error occurred inside a simulated process.

    Wraps the original exception so the failing process can be identified.
    """

    def __init__(self, process_name, original):
        super().__init__(f"process {process_name!r} raised {original!r}")
        self.process_name = process_name
        self.original = original


def _blocked_on(process):
    """Human-readable description of what ``process`` is blocked on."""
    events = getattr(process, "waiting_events", ())
    if events:
        names = ", ".join(sorted(e.name for e in events))
        label = "events" if len(events) > 1 else "event"
        return f"waiting on {label} [{names}]"
    pending = getattr(process, "pending_children", 0)
    if pending:
        return f"waiting on {pending} unfinished par child(ren)"
    return "blocked (no waited event recorded)"


class DeadlockError(KernelError):
    """Simulation ended with processes still blocked and no pending events.

    The message names every blocked process and what it is waiting on
    (event names carry the owning channel's name for channel waits), so
    a deadlock report alone usually pinpoints the cycle.
    """

    def __init__(self, blocked):
        blocked = tuple(blocked)
        details = "; ".join(
            f"{p.name!r} {_blocked_on(p)}"
            for p in sorted(blocked, key=lambda p: p.name)
        )
        count = len(blocked)
        plural = "es" if count != 1 else ""
        super().__init__(
            f"deadlock: {count} process{plural} still blocked: {details}"
        )
        self.blocked = blocked


class UnboundPortError(KernelError):
    """A behavior accessed a port that was never bound to a channel."""
