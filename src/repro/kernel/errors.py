"""Exception hierarchy of the SLDL kernel."""


class KernelError(Exception):
    """Base class for all kernel-level errors."""


class SimulationError(KernelError):
    """An error occurred inside a simulated process.

    Wraps the original exception so the failing process can be identified.
    """

    def __init__(self, process_name, original):
        super().__init__(f"process {process_name!r} raised {original!r}")
        self.process_name = process_name
        self.original = original


def _blocked_on(process):
    """Human-readable description of what ``process`` is blocked on."""
    events = getattr(process, "waiting_events", ())
    if events:
        names = ", ".join(sorted(e.name for e in events))
        label = "events" if len(events) > 1 else "event"
        return f"waiting on {label} [{names}]"
    pending = getattr(process, "pending_children", 0)
    if pending:
        return f"waiting on {pending} unfinished par child(ren)"
    return "blocked (no waited event recorded)"


#: decision-path steps shown in full before the message truncates to
#: the most recent ones (exploration paths can run to thousands)
_PATH_SHOWN = 10


def _format_decision_path(path):
    """Render an oracle decision trail for the deadlock message."""
    path = tuple(path)
    if len(path) <= _PATH_SHOWN:
        steps = " -> ".join(path)
    else:
        shown = " -> ".join(path[-_PATH_SHOWN:])
        steps = f"... {len(path) - _PATH_SHOWN} earlier -> {shown}"
    return f" [decision path: {steps}]"


class DeadlockError(KernelError):
    """Simulation ended with processes still blocked and no pending events.

    The message names every blocked process and what it is waiting on
    (event names carry the owning channel's name for channel waits), so
    a deadlock report alone usually pinpoints the cycle.

    When the simulation ran under an installed
    :class:`~repro.kernel.oracle.ScheduleOracle` — e.g. mid-exploration
    in :mod:`repro.explore` — ``decision_path`` carries the oracle's
    decision trail (``"kind:label"`` per decision) that reached the
    deadlock, and the message appends it, so a violation is diagnosable
    from the exception alone without re-running the schedule.
    """

    def __init__(self, blocked, decision_path=None):
        blocked = tuple(blocked)
        details = "; ".join(
            f"{p.name!r} {_blocked_on(p)}"
            for p in sorted(blocked, key=lambda p: p.name)
        )
        count = len(blocked)
        plural = "es" if count != 1 else ""
        message = (
            f"deadlock: {count} process{plural} still blocked: {details}"
        )
        self.decision_path = tuple(decision_path or ())
        if self.decision_path:
            message += _format_decision_path(self.decision_path)
        super().__init__(message)
        self.blocked = blocked


class UnboundPortError(KernelError):
    """A behavior accessed a port that was never bound to a channel."""
