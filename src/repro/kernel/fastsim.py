"""The fast kernel backend: flattened dispatch over a timer wheel.

:class:`FastSimulator` is the throughput engine behind
``Simulator(backend="fast")`` (see :mod:`repro.kernel.backend`). It is a
drop-in subclass of the reference :class:`~repro.kernel.simulator.Simulator`
— same semantics, same trace output (the golden suite runs byte-identical
over both backends), same public API — rebuilt around three hot-path
ideas (DESIGN.md "Performance notes, round two"):

* **Calendar-bucket timer wheel** — the reference heap pays one
  ``heappush``/``heappop`` per timer; the wheel
  (:class:`~repro.kernel.waitcore.TimerWheel`) hashes timers into
  per-instant buckets (O(1) push and cancel) and fires a whole instant
  as one bucket detach, which is where periodic tasksets spend their
  time (every task of a timestep re-arms for the same few deadlines).
* **Flattened dispatch** — command classes carry a dense integer ``op``
  (:mod:`repro.kernel.commands`); the stepping loop reads it with one
  class-attribute load and branches directly, with the three dominant
  commands (``WaitFor``, ``Wait``, ``Notify``) plus the ``Now`` clock
  read inlined into the loop body — no dict hash, no handler call, no
  ``send_value`` round trip for values produced by the kernel itself.
  The cold commands (``Par``/``Fork``/``Join``) fall through to an
  int-indexed handler array resolved once at engine construction.
* **Merged advance/fire loop** — the run loop peeks the wheel, advances
  time and drains due buckets inline (the reference pays two method
  calls plus per-timer heap pops per timestep), with every loop-carried
  object bound to a local.

What the fast engine may never change is the *observable* contract:
fire order (time-ascending, insertion-ordered within an instant), delta
semantics, wake order, stats counters, error behavior. Equivalence is
enforced by the backend-parametrized golden and delta suites and the
timer-wheel property tests.
"""

from heapq import heappush

from repro.kernel.commands import N_OPS, TIMEOUT
from repro.kernel.errors import DeadlockError, KernelError, SimulationError
from repro.kernel.process import ProcessState
from repro.kernel.simulator import Simulator
from repro.kernel.waitcore import (
    Timer,
    TimerWheel,
    WaitQueue,
    _Bucket,
    select_pending,
)

_READY = ProcessState.READY
_RUNNING = ProcessState.RUNNING
_TIMED = ProcessState.TIMED
_WAITING = ProcessState.WAITING
_TERMINATED = ProcessState.TERMINATED

# the inlined opcodes (must match repro.kernel.commands)
_OP_WAITFOR = 0
_OP_WAIT = 1
_OP_NOTIFY = 2
_OP_NOW = 3


class FastSimulator(Simulator):
    """Throughput-tuned engine; semantics identical to the reference.

    Construct via ``Simulator(backend="fast")`` (or set
    ``REPRO_KERNEL_BACKEND=fast``); constructing :class:`FastSimulator`
    directly is equivalent.

    ``enable_profiling()`` works here too, by design: it installs the
    instance-level ``_step`` shadow (the profiled stepping twin shared
    with the reference engine), so a profiled fast run temporarily
    pays reference-dispatch cost per step — identical results, full
    wall-clock attribution — and ``disable_profiling()`` drops the
    shadow to restore the flattened hot loop.
    """

    backend = "fast"

    def __init__(self, trace=None, delta_limit=100_000, backend=None):
        super().__init__(trace, delta_limit)
        #: wheel replaces the reference heap (same TimerQueue API)
        self._timers = TimerWheel()
        # opcode -> bound handler, for the cold commands; the hot ones
        # never index this (they are inlined in _step)
        handlers = [None] * N_OPS
        for op, method in (
            (0, self._execute_waitfor),
            (1, self._execute_wait),
            (2, self._execute_notify),
            (3, self._execute_now),
            (4, self._execute_par),
            (5, self._execute_fork),
            (6, self._execute_join),
        ):
            handlers[op] = method
        self._handlers = handlers

    # ------------------------------------------------------------------
    # stepping (flattened)
    # ------------------------------------------------------------------

    def _step(self, process):
        """Resume ``process`` and execute commands until it blocks.

        Control flow mirrors ``Simulator._step`` exactly; the dispatch
        is flattened (``command.op`` + direct branches) and the hot
        commands are inlined. ``now`` and the delta stamp are loop
        invariants within one step (time only advances when no process
        is runnable), so both are bound once.
        """
        self._current = process
        process.state = _RUNNING
        value = process.send_value
        process.send_value = None
        send = process.gen.send
        handlers = self._handlers
        timers = self._timers
        buckets = timers.buckets
        times = timers.times
        now = self.now
        stamp = self._stamp
        oracle = self.oracle
        steps = 0
        notifications = 0
        try:
            while True:
                steps += 1
                try:
                    command = send(value)
                except StopIteration:
                    self._terminate(process)
                    return
                value = None
                try:
                    op = command.op
                except AttributeError:
                    raise KernelError(
                        f"process {process.name!r} yielded a "
                        f"non-command: {command!r}"
                    ) from None
                if op == _OP_WAITFOR:
                    process.state = _TIMED
                    time = now + command.delay
                    # inlined TimerWheel.schedule_resume + push
                    timer = process.timer_cache
                    if timer is not None:
                        process.timer_cache = None
                        timer.time = time
                        timer.value = None
                        timer.cancelled = False
                    else:
                        timer = Timer(time, process=process)
                    bucket = buckets.get(time)
                    if bucket is None:
                        buckets[time] = bucket = _Bucket(time, timer)
                        heappush(times, time)
                    else:
                        bucket.live += 1
                        bucket.timers.append(timer)
                    timer.bucket = bucket
                    process.timer = timer
                    return
                elif op == _OP_NOTIFY:
                    events = command.events
                    if len(events) == 1:
                        # inlined Event._notify + _wake_from_event: mark
                        # pending, detach the waiter queue wholesale,
                        # wake every waiter into the next delta
                        notifications += 1
                        event = events[0]
                        event.notify_count += 1
                        event._pending_stamp = stamp
                        waiters = event._waiters
                        if waiters:
                            event._waiters = WaitQueue()
                            nd_append = self._next_delta.append
                            for waiter in waiters.values():
                                # inlined _clear_waits; the notifying
                                # event's queue was already detached by
                                # the swap above, so only the *other*
                                # events of a wait-any set need removal
                                wevents = waiter.waiting_events
                                if wevents:
                                    if len(wevents) > 1:
                                        for other in wevents:
                                            if other is not event:
                                                other._remove_waiter(waiter)
                                    waiter.waiting_events = ()
                                wtimer = waiter.timer
                                if wtimer is not None:
                                    waiter.timer = None
                                    timers.cancel(wtimer)
                                waiter.state = _READY
                                waiter.send_value = event
                                nd_append(waiter)
                    else:
                        notifications += len(events)
                        for event in events:
                            event._notify(self)
                elif op == _OP_WAIT:
                    events = command.events
                    consumed = process.consumed_stamps
                    if len(events) == 1:
                        # inlined select_pending single-event fast path
                        event = events[0]
                        if (
                            event._pending_stamp is stamp
                            and consumed.get(event.uid) is not stamp
                        ):
                            consumed[event.uid] = stamp
                            value = event
                            continue
                    elif events:
                        if oracle is None:
                            fired = select_pending(events, stamp, consumed)
                        else:
                            fired = self._select_pending_choice(
                                process, events, oracle
                            )
                        if fired is not None:
                            value = fired
                            continue
                    timeout = command.timeout
                    if timeout == 0:
                        value = TIMEOUT
                        continue
                    process.state = _WAITING
                    process.waiting_events = events
                    for event in events:
                        event._waiters[process.uid] = process
                    if timeout is not None:
                        process.state = _TIMED
                        process.timer = timers.schedule_resume(
                            process, now + timeout, TIMEOUT
                        )
                    return
                elif op == _OP_NOW:
                    value = now
                else:
                    # cold commands (Par/Fork/Join) via the handler array
                    if op is None:
                        raise KernelError(
                            f"process {process.name!r} yielded a "
                            f"non-command: {command!r}"
                        )
                    if handlers[op](process, command):
                        return
                    value = process.send_value
                    process.send_value = None
        except SimulationError:
            raise
        except Exception as exc:  # surface model bugs with context
            self._terminate(process)
            raise SimulationError(process.name, exc) from exc
        finally:
            process.step_count += steps
            self._n_steps += steps
            if notifications:
                self._n_notifications += notifications
            self._current = None

    # ------------------------------------------------------------------
    # run loop (merged advance/fire)
    # ------------------------------------------------------------------

    def run(self, until=None, check_deadlock=False):
        """Execute the simulation (see :meth:`Simulator.run`).

        Identical contract; the timer peek/advance/fire sequence is
        merged into the loop body and operates on the wheel's buckets
        directly.
        """
        self._started = True
        deltas_this_step = 0
        step = self._step
        timers = self._timers
        buckets = timers.buckets
        oracle = self.oracle
        while True:
            run_queue = self._run_queue
            if run_queue:
                if oracle is not None:
                    self._drain_delta_choices(oracle)
                else:
                    # drain the current delta; spawned/timer-woken
                    # processes append to this same list and run within
                    # the delta
                    i = 0
                    while i < len(run_queue):
                        process = run_queue[i]
                        i += 1
                        if process.state is not _TERMINATED:
                            step(process)
                    del run_queue[:]
            if self._next_delta:
                self.delta += 1
                self._stamp = (self.now, self.delta)
                self._n_deltas += 1
                deltas_this_step += 1
                if deltas_this_step > self._delta_limit:
                    raise KernelError(
                        f"delta limit exceeded at t={self.now} "
                        "(zero-delay notification loop?)"
                    )
                self._run_queue, self._next_delta = (
                    self._next_delta,
                    self._run_queue,
                )
                continue
            # peek the wheel: once per timestep, so the liveness scan
            # (lazy Timer.cancel support) stays out of the hot loop
            next_time = timers.next_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                self._stamp = (until, self.delta)
                return
            self.now = next_time
            # the delta counter is monotonic across the whole run (never
            # reset) so (time, delta) stamps of event notifications are
            # globally unique — a zero-delay re-entry at the same time
            # must not match a stale pending stamp
            self.delta += 1
            self._stamp = (next_time, self.delta)
            deltas_this_step = 0
            self._n_timesteps += 1
            if oracle is not None:
                # armed: fire order becomes a decision point (the
                # backend-generic oracle path over pop_due_live)
                self._fire_timers_choices(next_time, oracle)
                continue
            # merged _fire_timers: detach the instant's bucket wholesale
            # and deliver in insertion order; re-pop because a callback
            # may schedule new same-instant timers into a fresh bucket
            run_append = run_queue.append
            fires = 0
            bucket = buckets.pop(next_time, None)
            while bucket is not None:
                for timer in bucket.timers:
                    if timer.cancelled:
                        if timers.dead:
                            timers.dead -= 1
                        continue
                    timer.bucket = None
                    fires += 1
                    process = timer.process
                    if process is not None:
                        if process.state is _TERMINATED:
                            continue
                        value = timer.value
                        process.timer = None
                        # recycle for the process's next timed wait
                        if process.timer_cache is None:
                            timer.value = None
                            process.timer_cache = timer
                        # inlined _clear_waits (timer already detached;
                        # only a timed wait-any leaves events to clear)
                        wevents = process.waiting_events
                        if wevents:
                            for event in wevents:
                                event._remove_waiter(process)
                            process.waiting_events = ()
                        process.state = _READY
                        process.send_value = value
                        run_append(process)
                    else:
                        timer.callback()
                bucket = buckets.pop(next_time, None)
            self._n_timer_fires += fires
        if until is not None and self.now < until:
            self.now = until
            self._stamp = (until, self.delta)
        if check_deadlock:
            blocked = self.blocked_processes()
            if blocked:
                raise DeadlockError(
                    blocked,
                    decision_path=oracle.trail if oracle is not None
                    else None,
                )

    # ------------------------------------------------------------------
    # timer plumbing (wheel-backed twins of the reference internals)
    # ------------------------------------------------------------------

    def _fire_timers(self, time):
        """Compat twin of the reference method (the fast run loop
        inlines this); fires every due timer of ``time`` in order."""
        timers = self._timers
        buckets = timers.buckets
        run_append = self._run_queue.append
        fires = 0
        bucket = buckets.pop(time, None)
        while bucket is not None:
            for timer in bucket.timers:
                if timer.cancelled:
                    if timers.dead:
                        timers.dead -= 1
                    continue
                timer.bucket = None
                fires += 1
                process = timer.process
                if process is not None:
                    if process.state is _TERMINATED:
                        continue
                    value = timer.value
                    process.timer = None
                    if process.timer_cache is None:
                        timer.value = None
                        process.timer_cache = timer
                    process._clear_waits()
                    process.state = _READY
                    process.send_value = value
                    run_append(process)
                else:
                    timer.callback()
            bucket = buckets.pop(time, None)
        self._n_timer_fires += fires
