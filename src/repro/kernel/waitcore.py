"""The wait core — one blocking engine for every layer of the stack.

Historically the repo had three parallel wait implementations: the
kernel's ``Wait``/``WaitFor`` execution, the RTOS model's
``event_wait``/``time_wait`` handling, and the channel sync backends.
This module is the single home of the mechanisms they all share:

* :class:`WaitQueue` — an insertion-ordered registry of blocked waiters
  (kernel processes on SLDL events, RTOS tasks on RTOS events) with
  FIFO wake order and O(1) detach;
* :class:`Timer` / :class:`TimerQueue` — timed waits: a heap of
  ``(time, seq, Timer)`` tuples with lazy cancellation, bounded-garbage
  compaction and per-waiter timer recycling (the kernel's ``WaitFor``
  loop stays allocation-free in steady state);
* :func:`select_pending` — wait-any selection against delta-stamped
  pending notifications (the SpecC "event pends for the rest of the
  current delta" rule).

The kernel (:mod:`repro.kernel.simulator`, :mod:`repro.kernel.events`)
and the RTOS OS services (:mod:`repro.rtos.eventmgr`) both build their
blocking on these pieces; the ``TIMEOUT`` sentinel of
:mod:`repro.kernel.commands` is the one timeout marker used everywhere.

Hot-path note: :meth:`TimerQueue.heap` is deliberately public — the
simulator's timer-firing loop iterates it in place (popping due
entries) instead of going through per-entry method calls.
"""

import heapq

from repro.kernel.commands import TIMEOUT  # noqa: F401  (re-export: the
# wait core owns the timeout protocol; layers import TIMEOUT from here
# or from commands interchangeably)

#: compact the timer heap only when it holds at least this many entries
#: (tiny heaps are cheaper to drain lazily than to rebuild)
_COMPACT_MIN = 64


class Timer:
    """One timer entry. Cancellation is lazy; the heap holds
    ``(time, seq, timer)`` tuples so ordering never calls back into
    Python-level comparison.

    A timer either resumes a process (``process`` is set; ``value`` is
    sent into its generator) or runs a ``callback``. Fired resume timers
    are recycled through ``process.timer_cache``.
    """

    __slots__ = ("time", "process", "value", "callback", "cancelled")

    def __init__(self, time, process=None, value=None, callback=None):
        self.time = time
        self.process = process
        self.value = value
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        """Cancel this timer (lazy: the heap entry is dropped later)."""
        self.cancelled = True


class TimerQueue:
    """Heap of pending :class:`Timer` entries with lazy cancellation.

    Entries are ``(time, seq, Timer)`` tuples so heap comparisons run at
    C speed; ``seq`` makes ordering stable (insertion order within one
    instant) and unique. Cancelled entries stay in the heap until they
    reach the top or until they outnumber the live ones, at which point
    the heap is compacted (bounded garbage in long runs).
    """

    __slots__ = ("heap", "seq", "dead")

    def __init__(self):
        #: the underlying heap — the simulator's firing loop consumes
        #: due entries from it directly
        self.heap = []
        self.seq = 0
        #: cancelled entries still sitting in the heap
        self.dead = 0

    def push(self, time, timer):
        """Insert ``timer`` keyed at ``time``."""
        self.seq += 1
        heapq.heappush(self.heap, (time, self.seq, timer))

    def schedule_callback(self, time, callback):
        """Schedule ``callback()`` to run at ``time``; returns the Timer."""
        timer = Timer(time, callback=callback)
        self.push(time, timer)
        return timer

    def schedule_resume(self, process, time, value):
        """Schedule a timer that resumes ``process`` with ``value``.

        Recycles the process's last fired :class:`Timer` when available,
        so a waiter looping on timed waits allocates no timer objects in
        steady state.
        """
        timer = process.timer_cache
        if timer is not None:
            process.timer_cache = None
            timer.time = time
            timer.value = value
            timer.cancelled = False
        else:
            timer = Timer(time, process=process, value=value)
        self.push(time, timer)
        return timer

    def cancel(self, timer):
        """Cancel ``timer``; compacts the heap when cancelled entries
        outnumber live ones (lazy cancellation must not let dead timers
        accumulate unboundedly in long runs)."""
        timer.cancelled = True
        self.dead = dead = self.dead + 1
        heap = self.heap
        if dead >= _COMPACT_MIN and dead * 2 > len(heap):
            alive = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(alive)
            self.heap = alive
            self.dead = 0

    def next_time(self):
        """Earliest pending fire time, or None; drains cancelled tops."""
        heap = self.heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            if self.dead:
                self.dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def __len__(self):
        return len(self.heap)

    def __bool__(self):
        return bool(self.heap)


class WaitQueue(dict):
    """Insertion-ordered registry of blocked waiters.

    A thin dict keyed by the waiter's ``uid`` (kernel processes and RTOS
    tasks both carry one): insertion order gives FIFO wakeups, uid
    keying gives O(1) detach — every wake of a wait-any set removes the
    waiter from all other queues of the set. Supports the list-style
    accessors (``in``, ``remove``, iteration over waiters) the RTOS
    event queues historically exposed.
    """

    __slots__ = ()

    def add(self, waiter):
        self[waiter.uid] = waiter

    #: list-style alias (RTOS event queues were plain lists before)
    append = add

    def discard(self, waiter):
        """Detach ``waiter`` if enrolled (no-op otherwise)."""
        self.pop(waiter.uid, None)

    #: list-style alias; unlike list.remove, absent waiters are ignored
    remove = discard

    def pop_all(self):
        """Detach and return all waiters in FIFO order (``()`` if none)."""
        if not self:
            return ()
        waiters = list(self.values())
        self.clear()
        return waiters

    def __contains__(self, waiter):
        return dict.__contains__(self, getattr(waiter, "uid", waiter))

    def __iter__(self):
        return iter(list(self.values()))


def select_pending(events, stamp, consumed):
    """Wait-any selection: first event with an unconsumed pending notify.

    ``stamp`` is the simulator's shared ``(time, delta)`` identity object
    and ``consumed`` the waiter's ``event uid -> stamp`` map; an event
    satisfies the wait when its notification pends in the current delta
    and this waiter has not already consumed that notification (each
    notification satisfies at most one wait per waiter — prevents
    livelock when a waiter re-waits within the delta). The consumed map
    is updated for the returned event.
    """
    if len(events) == 1:
        # single-event fast path: no multi-event scan
        event = events[0]
        if (
            event._pending_stamp is stamp
            and consumed.get(event.uid) is not stamp
        ):
            consumed[event.uid] = stamp
            return event
        return None
    for event in events:
        if (
            event._pending_stamp is stamp
            and consumed.get(event.uid) is not stamp
        ):
            consumed[event.uid] = stamp
            return event
    return None


def detach_waiter(waiter, events):
    """Detach ``waiter`` from every wait queue of ``events``.

    Shared by the kernel's wakeup path and the RTOS event manager: a
    waiter blocked on a wait-any set must leave all queues of the set
    atomically when any one source wakes it.
    """
    for event in events:
        event._remove_waiter(waiter)
