"""The wait core — one blocking engine for every layer of the stack.

Historically the repo had three parallel wait implementations: the
kernel's ``Wait``/``WaitFor`` execution, the RTOS model's
``event_wait``/``time_wait`` handling, and the channel sync backends.
This module is the single home of the mechanisms they all share:

* :class:`WaitQueue` — an insertion-ordered registry of blocked waiters
  (kernel processes on SLDL events, RTOS tasks on RTOS events) with
  FIFO wake order and O(1) detach;
* :class:`Timer` / :class:`TimerQueue` — timed waits: a heap of
  ``(time, seq, Timer)`` tuples with lazy cancellation, bounded-garbage
  compaction and per-waiter timer recycling (the kernel's ``WaitFor``
  loop stays allocation-free in steady state);
* :func:`select_pending` — wait-any selection against delta-stamped
  pending notifications (the SpecC "event pends for the rest of the
  current delta" rule).

The kernel (:mod:`repro.kernel.simulator`, :mod:`repro.kernel.events`)
and the RTOS OS services (:mod:`repro.rtos.eventmgr`) both build their
blocking on these pieces; the ``TIMEOUT`` sentinel of
:mod:`repro.kernel.commands` is the one timeout marker used everywhere.

Hot-path note: :meth:`TimerQueue.heap` is deliberately public — the
simulator's timer-firing loop iterates it in place (popping due
entries) instead of going through per-entry method calls.
"""

import heapq

from repro.kernel.commands import TIMEOUT  # noqa: F401  (re-export: the
# wait core owns the timeout protocol; layers import TIMEOUT from here
# or from commands interchangeably)

#: compact the timer heap only when it holds at least this many entries
#: (tiny heaps are cheaper to drain lazily than to rebuild)
_COMPACT_MIN = 64


class Timer:
    """One timer entry. Cancellation is lazy; the heap holds
    ``(time, seq, timer)`` tuples so ordering never calls back into
    Python-level comparison.

    A timer either resumes a process (``process`` is set; ``value`` is
    sent into its generator) or runs a ``callback``. Fired resume timers
    are recycled through ``process.timer_cache``.

    ``bucket`` is used only by the fast backend's :class:`TimerWheel`
    (the calendar bucket currently holding this timer, for O(1)
    cancellation); the heap :class:`TimerQueue` leaves it ``None``.

    ``label`` is an optional stable identifier used when same-instant
    timer firing becomes a decision point (see
    :mod:`repro.kernel.oracle`); :func:`timer_label` derives one from
    the process/callback when none was given.
    """

    __slots__ = ("time", "process", "value", "callback", "cancelled",
                 "bucket", "label")

    def __init__(self, time, process=None, value=None, callback=None,
                 label=None):
        self.time = time
        self.process = process
        self.value = value
        self.callback = callback
        self.cancelled = False
        self.bucket = None
        self.label = label

    def cancel(self):
        """Cancel this timer (lazy: the heap entry is dropped later).

        When the timer sits in a wheel bucket, the bucket's live count
        is maintained through the backref — so the wheel's earliest-time
        peek can trust ``bucket.live`` instead of scanning timers."""
        if self.cancelled:
            return
        self.cancelled = True
        bucket = self.bucket
        if bucket is not None:
            bucket.live -= 1


class TimerQueue:
    """Heap of pending :class:`Timer` entries with lazy cancellation.

    Entries are ``(time, seq, Timer)`` tuples so heap comparisons run at
    C speed; ``seq`` makes ordering stable (insertion order within one
    instant) and unique. Cancelled entries stay in the heap until they
    reach the top or until they outnumber the live ones, at which point
    the heap is compacted (bounded garbage in long runs).
    """

    __slots__ = ("heap", "seq", "dead")

    def __init__(self):
        #: the underlying heap — the simulator's firing loop consumes
        #: due entries from it directly
        self.heap = []
        self.seq = 0
        #: cancelled entries still sitting in the heap
        self.dead = 0

    def push(self, time, timer):
        """Insert ``timer`` keyed at ``time``."""
        self.seq += 1
        heapq.heappush(self.heap, (time, self.seq, timer))

    def schedule_callback(self, time, callback, label=None):
        """Schedule ``callback()`` to run at ``time``; returns the Timer."""
        timer = Timer(time, callback=callback, label=label)
        self.push(time, timer)
        return timer

    def schedule_resume(self, process, time, value):
        """Schedule a timer that resumes ``process`` with ``value``.

        Recycles the process's last fired :class:`Timer` when available,
        so a waiter looping on timed waits allocates no timer objects in
        steady state.
        """
        timer = process.timer_cache
        if timer is not None:
            process.timer_cache = None
            timer.time = time
            timer.value = value
            timer.cancelled = False
        else:
            timer = Timer(time, process=process, value=value)
        self.push(time, timer)
        return timer

    def pop_due_live(self, time):
        """Detach and return the live timers due at ``time``, in fire
        order (insertion order within the instant).

        The oracle-armed firing path uses this instead of the in-place
        heap loop: it needs the whole same-instant cohort up front to
        offer the fire order as a decision point. Cancelled entries are
        dropped (with the ``dead`` count maintained) exactly as the
        in-place loop would.
        """
        heap = self.heap
        live = []
        while heap and (heap[0][2].cancelled or heap[0][0] == time):
            timer = heapq.heappop(heap)[2]
            if timer.cancelled:
                if self.dead:
                    self.dead -= 1
                continue
            live.append(timer)
        return live

    def cancel(self, timer):
        """Cancel ``timer``; compacts the heap when cancelled entries
        outnumber live ones (lazy cancellation must not let dead timers
        accumulate unboundedly in long runs)."""
        timer.cancelled = True
        self.dead = dead = self.dead + 1
        heap = self.heap
        if dead >= _COMPACT_MIN and dead * 2 > len(heap):
            alive = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(alive)
            self.heap = alive
            self.dead = 0

    def next_time(self):
        """Earliest pending fire time, or None; drains cancelled tops."""
        heap = self.heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            if self.dead:
                self.dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def __len__(self):
        return len(self.heap)

    def __bool__(self):
        return bool(self.heap)


class _Bucket:
    """One calendar bucket of a :class:`TimerWheel`: every timer pending
    at one exact instant, in insertion order.

    ``live`` counts the non-cancelled timers; when it reaches zero the
    wheel drops the bucket, so cancelled timers never outlive their
    instant (the wheel's equivalent of the heap queue's compaction).
    """

    __slots__ = ("time", "live", "timers")

    def __init__(self, time, timer):
        self.time = time
        self.live = 1
        self.timers = [timer]


class TimerWheel:
    """Calendar-bucket implementation of the :class:`TimerQueue` API.

    The fast backend's timer engine (selected by
    ``Simulator(backend="fast")``; see :mod:`repro.kernel.backend`). The
    dense, short-horizon timers of periodic tasksets cluster on few
    distinct instants — every ``waitfor`` of one timestep lands on the
    same deadline — so timers are hashed into per-instant *buckets*
    (``push`` and ``cancel`` are O(1) dict-and-list operations, with no
    per-timer heap churn), while the far, sparse instants ride a small
    overflow heap that holds each *distinct* time once. Firing an
    instant hands back the whole bucket in insertion order: one dict pop
    instead of one ``heappop`` per timer.

    Observational equivalence with :class:`TimerQueue` (same fire order:
    time-ascending, insertion-ordered within an instant; same lazy
    cancellation semantics) is pinned by the property suite in
    ``tests/property/test_timerwheel_properties.py``.
    """

    __slots__ = ("buckets", "times", "dead")

    def __init__(self):
        #: time -> :class:`_Bucket` of every timer pending at that time
        self.buckets = {}
        #: heap of distinct pending times; may hold stale entries for
        #: times whose bucket was dropped (skipped lazily)
        self.times = []
        #: cancelled timers not yet collected (diagnostics, like
        #: :attr:`TimerQueue.dead`)
        self.dead = 0

    def push(self, time, timer):
        """Insert ``timer`` keyed at ``time``."""
        bucket = self.buckets.get(time)
        if bucket is None:
            self.buckets[time] = bucket = _Bucket(time, timer)
            heapq.heappush(self.times, time)
        else:
            bucket.live += 1
            bucket.timers.append(timer)
        timer.bucket = bucket

    def schedule_callback(self, time, callback, label=None):
        """Schedule ``callback()`` to run at ``time``; returns the Timer."""
        timer = Timer(time, callback=callback, label=label)
        self.push(time, timer)
        return timer

    def schedule_resume(self, process, time, value):
        """Schedule a timer that resumes ``process`` with ``value``
        (same recycling contract as :meth:`TimerQueue.schedule_resume`)."""
        timer = process.timer_cache
        if timer is not None:
            process.timer_cache = None
            timer.time = time
            timer.value = value
            timer.cancelled = False
        else:
            timer = Timer(time, process=process, value=value)
        self.push(time, timer)
        return timer

    def cancel(self, timer):
        """Cancel ``timer``: O(1). The timer stays in its bucket (skipped
        at fire time); a bucket with no live timers left is dropped at
        once, its heap entry skipped lazily by :meth:`next_time`."""
        if timer.cancelled:
            return
        self.dead += 1
        bucket = timer.bucket
        timer.cancel()  # flags it and decrements bucket.live via backref
        if bucket is None:
            return
        timer.bucket = None
        if bucket.live == 0:
            buckets = self.buckets
            if buckets.get(bucket.time) is bucket:
                del buckets[bucket.time]
                self.dead -= len(bucket.timers)

    def pop_due(self, time):
        """Detach and return the bucket content for ``time`` (or None).

        The fast run loop calls this repeatedly at one instant: a
        callback fired from the first bucket may schedule a new
        same-instant timer, which lands in a fresh bucket.
        """
        bucket = self.buckets.pop(time, None)
        if bucket is None:
            return None
        return bucket.timers

    def pop_due_live(self, time):
        """Detach and return the live timers due at ``time``, in fire
        order (same contract as :meth:`TimerQueue.pop_due_live`)."""
        live = []
        bucket = self.buckets.pop(time, None)
        if bucket is not None:
            for timer in bucket.timers:
                if timer.cancelled:
                    if self.dead:
                        self.dead -= 1
                    continue
                timer.bucket = None
                live.append(timer)
        return live

    def next_time(self):
        """Earliest pending fire time, or None.

        Skips stale heap times (bucket fired or dropped) and buckets
        with no live timer left — :meth:`Timer.cancel` maintains
        ``bucket.live`` through its backref, so both direct and
        wheel-level cancellation keep this an O(1) check per entry: an
        all-cancelled instant must never advance simulated time.
        """
        times = self.times
        buckets = self.buckets
        while times:
            time = times[0]
            bucket = buckets.get(time)
            if bucket is not None:
                if bucket.live > 0:
                    return time
                # every timer at this instant is cancelled: drop the
                # bucket (the wheel's compaction) and fall through to
                # popping its stale heap entry
                del buckets[time]
                if self.dead:
                    self.dead = max(0, self.dead - len(bucket.timers))
            heapq.heappop(times)
        return None

    def __len__(self):
        return sum(bucket.live for bucket in self.buckets.values())

    def __bool__(self):
        return bool(self.buckets)


class WaitQueue(dict):
    """Insertion-ordered registry of blocked waiters.

    A thin dict keyed by the waiter's ``uid`` (kernel processes and RTOS
    tasks both carry one): insertion order gives FIFO wakeups, uid
    keying gives O(1) detach — every wake of a wait-any set removes the
    waiter from all other queues of the set. Supports the list-style
    accessors (``in``, ``remove``, iteration over waiters) the RTOS
    event queues historically exposed.
    """

    __slots__ = ()

    def add(self, waiter):
        self[waiter.uid] = waiter

    #: list-style alias (RTOS event queues were plain lists before)
    append = add

    def discard(self, waiter):
        """Detach ``waiter`` if enrolled (no-op otherwise)."""
        self.pop(waiter.uid, None)

    #: list-style alias; unlike list.remove, absent waiters are ignored
    remove = discard

    def pop_all(self):
        """Detach and return all waiters in FIFO order (``()`` if none).

        The dominant wake shape is a single waiter (every channel
        rendezvous, every dispatch event): that case detaches via
        ``popitem`` and returns a 1-tuple — no intermediate list. Only
        multi-waiter wakes pay the one unavoidable copy (the dict must
        be emptied before the caller re-enrolls waiters).
        """
        if not self:
            return ()
        if len(self) == 1:
            return (self.popitem()[1],)
        waiters = list(self.values())
        self.clear()
        return waiters

    def __contains__(self, waiter):
        return dict.__contains__(self, getattr(waiter, "uid", waiter))

    def __iter__(self):
        # a direct view iterator: no per-iteration list copy. Callers
        # that wake (and thereby detach) waiters mid-scan must use
        # pop_all() — mutation during iteration raises RuntimeError
        # instead of silently scanning a stale snapshot.
        return iter(dict.values(self))


def select_pending(events, stamp, consumed):
    """Wait-any selection: first event with an unconsumed pending notify.

    ``stamp`` is the simulator's shared ``(time, delta)`` identity object
    and ``consumed`` the waiter's ``event uid -> stamp`` map; an event
    satisfies the wait when its notification pends in the current delta
    and this waiter has not already consumed that notification (each
    notification satisfies at most one wait per waiter — prevents
    livelock when a waiter re-waits within the delta). The consumed map
    is updated for the returned event.
    """
    if len(events) == 1:
        # single-event fast path: no multi-event scan
        event = events[0]
        if (
            event._pending_stamp is stamp
            and consumed.get(event.uid) is not stamp
        ):
            consumed[event.uid] = stamp
            return event
        return None
    for event in events:
        if (
            event._pending_stamp is stamp
            and consumed.get(event.uid) is not stamp
        ):
            consumed[event.uid] = stamp
            return event
    return None


def pending_candidates(events, stamp, consumed):
    """Every event of ``events`` whose notification pends unconsumed.

    The wait-any *decision point* companion of :func:`select_pending`:
    instead of committing to the first pending event (argument order),
    it returns the full candidate list so an installed
    :class:`~repro.kernel.oracle.ScheduleOracle` can choose. The caller
    marks the chosen event's stamp consumed.
    """
    return [
        event for event in events
        if event._pending_stamp is stamp
        and consumed.get(event.uid) is not stamp
    ]


def timer_label(timer):
    """Stable human-readable identity of a timer, for decision points.

    Resume timers are named after their process; callback timers carry
    an explicit ``label`` (layers that arm callbacks pass one) or fall
    back to the callback's qualified name.
    """
    if timer.label is not None:
        return timer.label
    process = timer.process
    if process is not None:
        return process.name
    callback = timer.callback
    return getattr(callback, "__qualname__", None) or repr(callback)


def detach_waiter(waiter, events):
    """Detach ``waiter`` from every wait queue of ``events``.

    Shared by the kernel's wakeup path and the RTOS event manager: a
    waiter blocked on a wait-any set must leave all queues of the set
    atomically when any one source wakes it.
    """
    for event in events:
        event._remove_waiter(waiter)
