#!/usr/bin/env python
"""The paper's running example (Figures 3 and 8), end to end.

Runs the unscheduled specification model and the automatically refined
architecture model of the B1/B2/B3 system and prints both Figure-8
traces plus the t1..t7 instants.

Run:  python examples/fig3_example.py
"""

from repro.analysis import render_gantt
from repro.apps.fig3 import run_architecture, run_unscheduled


def show(result, title, actors):
    times = result.times()
    print(title)
    print("  " + "  ".join(f"{k}={times[k]}" for k in sorted(times)))
    print(render_gantt(result.trace, actors=actors, width=66,
                       markers={"t4": times["t4"]}))
    print()


def main():
    unsched = run_unscheduled()
    show(unsched, "Figure 8(a) — unscheduled model (B2 and B3 in "
                  "parallel):", ["B1", "B3", "B2"])

    arch = run_architecture()
    show(arch, "Figure 8(b) — architecture model (priority scheduling, "
               "Task_B3 high):", ["Task_PE", "B3", "B2"])

    print("the paper's key observation:")
    print(f"  interrupt at t4 = {arch.times()['t4']} wakes Task_B3, but "
          "the switch is deferred")
    print("  to the end of Task_B2's current delay step (t4' = 500) — "
          "the accuracy of")
    print("  preemption is bounded by the delay-model granularity.")
    print()
    print(f"architecture context switches: {arch.context_switches}, "
          f"interrupts: {arch.os.metrics.interrupts}")

    imm = run_architecture(preemption="immediate")
    b3 = [s for s in imm.trace.segments("B3") if s[2] > s[1] and s[1] >= 450]
    print(f"with the immediate-preemption extension the switch happens "
          f"at t = {b3[0][1]} instead.")


if __name__ == "__main__":
    main()
