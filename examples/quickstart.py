#!/usr/bin/env python
"""Quickstart: model a small multi-tasking system with the RTOS model.

Builds one processing element with a priority-scheduled RTOS, three
tasks (one periodic sensor task, a worker, a logger connected through a
queue) and an external interrupt, then prints the schedule.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_gantt
from repro.channels import RTOSQueue, RTOSSemaphore
from repro.kernel import Simulator, WaitFor
from repro.platform import InterruptController, IrqLine
from repro.rtos import APERIODIC, PERIODIC, RTOSModel


def main():
    sim = Simulator()
    os_ = RTOSModel(sim, sched="priority", name="cpu.os")

    queue = RTOSQueue(os_, capacity=4, name="work-queue")
    irq_sem = RTOSSemaphore(os_, 0, name="irq-sem")

    # --- tasks ---------------------------------------------------------

    def sensor_body():
        """Periodic: sample every 1 ms (100 us of work), enqueue."""
        for sample in range(8):
            yield from os_.time_wait(100_000)
            yield from queue.send(sample)
            yield from os_.task_endcycle()

    def worker_body():
        """Crunch queued samples (300 us each)."""
        for _ in range(8):
            sample = yield from queue.recv()
            yield from os_.time_wait(300_000)
            sim.trace.record(sim.now, "user", "worker", f"done-{sample}")

    def alarm_body():
        """Sporadic: released by the external interrupt."""
        yield from irq_sem.acquire()
        yield from os_.time_wait(50_000)
        sim.trace.record(sim.now, "user", "alarm", "handled")

    sensor = os_.task_create("sensor", PERIODIC, 1_000_000, 100_000,
                             priority=2)
    worker = os_.task_create("worker", APERIODIC, 0, 0, priority=5)
    alarm = os_.task_create("alarm", APERIODIC, 0, 0, priority=1)
    sim.spawn(os_.task_body(sensor, sensor_body()), name="sensor")
    sim.spawn(os_.task_body(worker, worker_body()), name="worker")
    sim.spawn(os_.task_body(alarm, alarm_body()), name="alarm")

    # --- an interrupt at t = 3.25 ms ------------------------------------

    line = IrqLine(sim, "ext-irq")
    pic = InterruptController(sim, "cpu.pic")

    def isr():
        yield from irq_sem.release()
        os_.interrupt_return()

    pic.register(line, isr)
    sim.schedule_at(3_250_000, line.raise_irq)

    # --- boot and run ----------------------------------------------------

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run()

    print("schedule (one row per task, # = running):")
    print(render_gantt(sim.trace, actors=["alarm", "sensor", "worker"],
                       width=70))
    print()
    print(f"simulated time : {sim.now / 1e6:.2f} ms")
    print(f"context switches: {os_.metrics.context_switches}")
    print(f"preemptions     : {os_.metrics.preemptions}")
    print(f"CPU utilization : {os_.metrics.utilization(sim.now):.1%}")
    print(f"sensor responses: {sensor.stats.response_times}")


if __name__ == "__main__":
    main()
