#!/usr/bin/env python
"""The vocoder case study through the whole design flow (Table 1).

Specification model -> architecture model (RTOS model) ->
implementation model (generated code + custom RTOS kernel on the ISS),
printing the regenerated Table 1 and per-frame transcoding delays.

Run:  python examples/vocoder_design_flow.py
"""

from repro.apps.vocoder.table1 import format_table1, generate_table1


def main():
    n_frames = 8
    print(f"running all three vocoder models ({n_frames} frames)...")
    rows, runs = generate_table1(n_frames=n_frames)
    print()
    print(format_table1(rows))
    print()
    print("paper's Table 1 for reference: LoC 13,475 / 15,552 / 79,096;")
    print("execution time 24.0 s / 24.4 s / 5 h; transcoding delay "
          "9.7 / 12.5 / 11.7 ms")
    print()
    for key in ("spec", "arch", "impl"):
        run = runs[key]
        delays = ", ".join(f"{d / 1e6:.2f}" for d in run.delays_ns)
        print(f"{run.model:<15} per-frame delay (ms): {delays}")
    spec = runs["spec"]
    if spec.snrs_db:
        mean_snr = sum(spec.snrs_db) / len(spec.snrs_db)
        print()
        print(f"codec quality (functional models): mean segmental SNR "
              f"{mean_snr:.1f} dB")
    impl = runs["impl"]
    print(f"implementation model: {impl.extra['instructions']} "
          f"instructions, {impl.extra['cycles']} cycles, "
          f"{impl.extra['program_loc']} lines of generated assembly")


if __name__ == "__main__":
    main()
