#!/usr/bin/env python
"""Engine-control ECU: sporadic + periodic hard real time.

An injection task released by the crank-shaft interrupt (whose rate
follows an RPM profile), a 10 ms control loop, and background
diagnostics share one ECU. The RTOS model answers the early design
questions: does injection meet its crank-angle deadline across the RPM
range, and what does a wrong priority assignment cost?

Run:  python examples/engine_control.py
"""

from repro.apps.engine import MS, EngineConfig, run_engine


def describe(tag, result):
    worst = result.worst_injection_latency / MS
    print(f"{tag:<34} worst injection latency {worst:6.2f} ms, "
          f"misses {result.injection_deadline_misses:>2}/"
          f"{result.crank_events}, "
          f"ctx switches {result.extra['metrics']['context_switches']}")


def main():
    print("RPM profile: 1500 -> 4500 -> 3000 (100 ms each); injection "
          "deadline = 30% of crank period\n")
    describe("correct priorities (inj > ctl)", run_engine())
    describe("wrong priorities (ctl > inj)",
             run_engine(priorities=(5, 1, 9)))
    describe("immediate preemption",
             run_engine(EngineConfig(preemption="immediate")))
    coarse = EngineConfig(control_granularity=3 * MS)
    describe("coarse control timing (3 ms)", run_engine(coarse))
    print()
    print("the wrong assignment misses deadlines at high RPM; coarser")
    print("delay annotations inflate the observed latency by up to one")
    print("step — the granularity/accuracy trade-off of Section 4.3.")


if __name__ == "__main__":
    main()
