#!/usr/bin/env python
"""A heterogeneous two-PE architecture model.

A controller PE dispatches work to a DSP PE over a shared bus with
interrupt-driven drivers (the Figure-3 communication structure in both
directions). Each PE carries its own RTOS model instance with its own
scheduling policy — "for each PE in the system a RTOS model
corresponding to the selected scheduling strategy is ... instantiated
in the PE" (paper, Section 3).

Prints per-PE schedule reports and writes a VCD waveform of the system
schedule to multi_pe.vcd.

Run:  python examples/multi_pe_system.py
"""

from repro.analysis import render_gantt, schedule_report, write_vcd
from repro.channels import RTOSSemaphore
from repro.platform import Architecture, BusLink, InterruptDriver, IrqLine


def main():
    arch = Architecture(name="two-pe")
    sim = arch.sim
    bus = arch.add_bus("bus", width=4, cycle_time=10)
    ctrl = arch.add_pe("ctrl", sched="priority")
    dsp = arch.add_pe("dsp", sched="rr")

    to_dsp_line = IrqLine(sim, "to-dsp")
    to_ctrl_line = IrqLine(sim, "to-ctrl")
    to_dsp = BusLink(sim, bus, to_dsp_line, name="to-dsp", priority=1)
    to_ctrl = BusLink(sim, bus, to_ctrl_line, name="to-ctrl", priority=2)
    dsp_rx = InterruptDriver(
        to_dsp, RTOSSemaphore(dsp.os, 0, "dsp-rx"), os_model=dsp.os
    )
    ctrl_rx = InterruptDriver(
        to_ctrl, RTOSSemaphore(ctrl.os, 0, "ctrl-rx"), os_model=ctrl.os
    )
    dsp.add_driver(dsp_rx, to_dsp_line)
    ctrl.add_driver(ctrl_rx, to_ctrl_line)

    n_jobs = 4

    def ctrl_main():
        for job in range(n_jobs):
            yield from ctrl.os.time_wait(800)  # prepare job
            yield from to_dsp.send({"job": job, "size": 1000 * (job + 1)},
                                   nbytes=8, master="ctrl")
            reply = yield from ctrl_rx.recv()
            sim.trace.record(sim.now, "user", "ctrl-main",
                             f"job-{reply['job']}-done")

    def ctrl_housekeeping():
        for _ in range(6):
            yield from ctrl.os.time_wait(700)

    def dsp_main():
        for _ in range(n_jobs):
            job = yield from dsp_rx.recv()
            yield from dsp.os.time_wait(job["size"])  # crunch
            yield from to_ctrl.send({"job": job["job"]}, nbytes=4,
                                    master="dsp")

    def dsp_filter():
        # equal-priority peer: round-robin shares the DSP
        for _ in range(10):
            yield from dsp.os.time_wait(500)

    ctrl.add_task("ctrl-main", ctrl_main(), priority=1)
    ctrl.add_task("ctrl-hk", ctrl_housekeeping(), priority=5)
    dsp.add_task("dsp-main", dsp_main(), priority=3)
    dsp.add_task("dsp-filter", dsp_filter(), priority=3)

    arch.run()

    print(render_gantt(
        sim.trace,
        actors=["ctrl-main", "ctrl-hk", "dsp-main", "dsp-filter"],
        width=70,
    ))
    print()
    print(schedule_report(ctrl.os, sim, title="controller PE (priority)"))
    print()
    print(schedule_report(dsp.os, sim, title="DSP PE (round-robin)"))
    print()
    print(f"bus: {bus.transfer_count} transfers, "
          f"{bus.busy_time} time units occupied")
    path = write_vcd(sim.trace, "multi_pe.vcd")
    print(f"waveform written to {path} (open with any VCD viewer)")


if __name__ == "__main__":
    main()
