#!/usr/bin/env python
"""Design-space exploration: scheduling policies and priority inversion.

Part 1 runs one periodic task set under every scheduling policy of the
RTOS model and tabulates deadline misses / response times — the early
exploration the paper's flow is built for.

Part 2 demonstrates priority inversion with a shared resource and how
the priority-inheritance mutex bounds it.

Run:  python examples/scheduler_comparison.py
"""

from repro.channels import RTOSMutex
from repro.kernel import Simulator, WaitFor
from repro.rtos import APERIODIC, PERIODIC, RTOSModel

TASK_SET = (("t1", 400_000, 100_000), ("t2", 500_000, 100_000),
            ("t3", 750_000, 370_000))


def run_policy(policy, horizon=6_000_000):
    sim = Simulator()
    sim.trace.enabled = False
    os_ = RTOSModel(sim, sched=policy)
    tasks = []
    for index, (name, period, exec_time) in enumerate(TASK_SET):
        task = os_.task_create(name, PERIODIC, period, exec_time,
                               priority=index + 1)
        tasks.append(task)

        def body(task=task, exec_time=exec_time):
            while True:
                remaining = exec_time
                while remaining > 0:
                    step = min(10_000, remaining)
                    yield from os_.time_wait(step)
                    remaining -= step
                yield from os_.task_endcycle()

        sim.spawn(os_.task_body(task, body()), name=task.name)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot())
    sim.run(until=horizon)
    return os_, tasks


def priority_inversion(inheritance):
    sim = Simulator()
    os_ = RTOSModel(sim)
    mtx = RTOSMutex(os_, name="resource", priority_inheritance=inheritance)
    evt = os_.event_new()
    finish = {}

    def low_body():
        yield from mtx.lock()
        for _ in range(10):
            yield from os_.time_wait(10_000)
        yield from mtx.unlock()

    def medium_body():
        yield from os_.event_wait(evt)
        for _ in range(20):
            yield from os_.time_wait(10_000)

    def high_body():
        yield from os_.event_wait(evt)
        yield from mtx.lock()
        yield from os_.time_wait(10_000)
        yield from mtx.unlock()
        finish["high"] = sim.now

    for name, prio, body in (("high", 1, high_body), ("medium", 5, medium_body),
                             ("low", 9, low_body)):
        task = os_.task_create(name, APERIODIC, 0, 0, priority=prio)
        sim.spawn(os_.task_body(task, body()), name=name)

    def isr():
        yield WaitFor(30_000)
        yield from os_.event_notify(evt)
        os_.interrupt_return()

    sim.spawn(isr(), name="isr")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot())
    sim.run()
    return finish["high"]


def main():
    print("Part 1 — scheduling policies on a U=0.94 periodic set")
    print(f"{'policy':<14}{'misses':>8}{'switches':>10}"
          f"{'worst t3 response (us)':>24}")
    for policy in ("priority", "priority_np", "rr", "fifo", "edf", "rms"):
        os_, tasks = run_policy(policy)
        worst = tasks[2].stats.worst_response or 0
        print(f"{policy:<14}{os_.metrics.deadline_misses:>8}"
              f"{os_.metrics.context_switches:>10}{worst / 1000:>24.0f}")
    print()
    print("Part 2 — priority inversion on a shared resource")
    without = priority_inversion(False)
    with_pi = priority_inversion(True)
    print(f"high task completion without inheritance: {without / 1000:.0f} us")
    print(f"high task completion with inheritance   : {with_pi / 1000:.0f} us")
    print("priority inheritance bounds the inversion to the length of "
          "low's critical section.")


if __name__ == "__main__":
    main()
