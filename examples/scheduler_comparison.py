#!/usr/bin/env python
"""Design-space exploration: scheduling policies and priority inversion.

Part 1 runs one periodic task set under every scheduling policy of the
RTOS model and tabulates deadline misses / response times — the early
exploration the paper's flow is built for. The sweep is declared and
executed with the experiment farm (``repro.farm``): on a multi-core
host the policies run in parallel worker processes; on a single-core
host the farm falls back to in-process serial execution.

Part 2 demonstrates priority inversion with a shared resource and how
the priority-inheritance mutex bounds it.

Run:  python examples/scheduler_comparison.py
"""

from repro.channels import RTOSMutex
from repro.farm import SweepSpec, run_sweep
from repro.farm.workloads import DEFAULT_TASK_SET
from repro.kernel import Simulator, WaitFor
from repro.rtos import APERIODIC, RTOSModel

TASK_SET = DEFAULT_TASK_SET
POLICIES = ("priority", "priority_np", "rr", "fifo", "edf", "rms")


def policy_sweep():
    spec = SweepSpec(
        "repro.farm.workloads:periodic_taskset_run"
    ).axis("policy", list(POLICIES))
    return run_sweep(spec, cache=None)


def priority_inversion(inheritance):
    sim = Simulator()
    os_ = RTOSModel(sim)
    mtx = RTOSMutex(os_, name="resource", priority_inheritance=inheritance)
    evt = os_.event_new()
    finish = {}

    def low_body():
        yield from mtx.lock()
        for _ in range(10):
            yield from os_.time_wait(10_000)
        yield from mtx.unlock()

    def medium_body():
        yield from os_.event_wait(evt)
        for _ in range(20):
            yield from os_.time_wait(10_000)

    def high_body():
        yield from os_.event_wait(evt)
        yield from mtx.lock()
        yield from os_.time_wait(10_000)
        yield from mtx.unlock()
        finish["high"] = sim.now

    for name, prio, body in (("high", 1, high_body), ("medium", 5, medium_body),
                             ("low", 9, low_body)):
        task = os_.task_create(name, APERIODIC, 0, 0, priority=prio)
        sim.spawn(os_.task_body(task, body()), name=name)

    def isr():
        yield WaitFor(30_000)
        yield from os_.event_notify(evt)
        os_.interrupt_return()

    sim.spawn(isr(), name="isr")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot())
    sim.run()
    return finish["high"]


def main():
    print("Part 1 — scheduling policies on a U=0.94 periodic set")
    result = policy_sweep()
    print(f"{'policy':<14}{'misses':>8}{'switches':>10}"
          f"{'worst t3 response (us)':>24}")
    for metrics in result.values():
        worst = metrics["worst_response"]["t3"] or 0
        print(f"{metrics['policy']:<14}{metrics['misses']:>8}"
              f"{metrics['switches']:>10}{worst / 1000:>24.0f}")
    print(f"(farm: {result.summary()})")
    print()
    print("Part 2 — priority inversion on a shared resource")
    without = priority_inversion(False)
    with_pi = priority_inversion(True)
    print(f"high task completion without inheritance: {without / 1000:.0f} us")
    print(f"high task completion with inheritance   : {with_pi / 1000:.0f} us")
    print("priority inheritance bounds the inversion to the length of "
          "low's critical section.")


if __name__ == "__main__":
    main()
