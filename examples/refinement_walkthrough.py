#!/usr/bin/env python
"""Walkthrough of the paper's refinement steps (Section 4.2, Figs 5-7).

Takes one specification behavior and refines it into the architecture
model twice — manually, step by step like the paper's figures, and
automatically with the refinement tool — showing both produce the same
schedule.

Run:  python examples/refinement_walkthrough.py
"""

from repro.channels import Queue
from repro.kernel import Par, Simulator, WaitFor
from repro.refinement import (
    DynamicSchedulingRefinement,
    RefinementSpec,
    par_tasks,
    refine_channel,
    task_frame,
)
from repro.rtos import APERIODIC, RTOSModel


def spec_behaviors(sim, q, log):
    """The specification model: producer || consumer over channel c1."""

    def producer():
        for i in range(3):
            yield WaitFor(400)  # computation, d = 400
            yield from q.send(i)

    def consumer():
        for _ in range(3):
            item = yield from q.recv()
            yield WaitFor(250)
            log.append((item, sim.now))

    return producer, consumer


def run_specification():
    sim, log = Simulator(), []
    q = Queue(capacity=1, name="c1")
    producer, consumer = spec_behaviors(sim, q, log)

    def top():
        yield Par(producer(), consumer())

    sim.spawn(top(), name="top")
    sim.run()
    return log


def run_manual_refinement():
    """Figures 5-7 by hand: task_create/activate/terminate frames,
    waitfor -> time_wait, channel refinement."""
    sim, log = Simulator(), []
    os_ = RTOSModel(sim)
    q = refine_channel(Queue(capacity=1, name="c1"), os_)  # Figure 7

    def producer_body():  # Figure 5: body uses RTOS time modeling
        for i in range(3):
            yield from os_.time_wait(400)
            yield from q.send(i)

    def consumer_body():
        for _ in range(3):
            item = yield from q.recv()
            yield from os_.time_wait(250)
            log.append((item, sim.now))

    prod = os_.task_create("producer", APERIODIC, 0, 0, priority=2)
    cons = os_.task_create("consumer", APERIODIC, 0, 0, priority=1)
    parent = os_.task_create("Task_PE", APERIODIC, 0, 0, priority=0)

    def parent_body():  # Figure 6: dynamic fork/join of child tasks
        yield from par_tasks(
            os_, (prod, producer_body()), (cons, consumer_body())
        )

    sim.spawn(task_frame(os_, parent, parent_body()), name="Task_PE")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run()
    return log


def run_automatic_refinement():
    """The same specification generators, refined by the tool."""
    sim, log = Simulator(), []
    os_ = RTOSModel(sim)
    q = Queue(capacity=1, name="c1")  # stays a specification channel!
    producer, consumer = spec_behaviors(sim, q, log)

    def top():
        yield Par(producer(), consumer())

    ref = DynamicSchedulingRefinement(
        os_,
        RefinementSpec(priorities={
            "Task_PE": 0, "Task_PE.child0": 2, "Task_PE.child1": 1,
        }),
    )
    wrapped, _ = ref.refine_task(top(), name="Task_PE")
    sim.spawn(wrapped, name="Task_PE")

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot(), name="boot")
    sim.run()
    return log


def main():
    spec = run_specification()
    manual = run_manual_refinement()
    auto = run_automatic_refinement()
    print("specification model (parallel) :", spec)
    print("manual refinement   (Figs 5-7) :", manual)
    print("automatic refinement (tool)    :", auto)
    assert manual == auto, "both refinement paths must agree"
    print()
    print("both refinement paths produce the identical serialized "
          "schedule;")
    print("the specification overlaps producer/consumer delays, the "
          "refined")
    print("models accumulate them (single CPU under the RTOS model).")


if __name__ == "__main__":
    main()
