"""Unit tests for the analytic schedulability checker.

Bound functions are pinned against hand-computed values from the
periodic resource model (Shin & Lee); the component/system checks are
exercised in both verdict directions, including the conservative
truncation path.
"""

import pytest

from repro.analysis.schedulability import (
    ComponentSpec,
    PESpec,
    SystemSpec,
    TaskSpec,
    bdr_interface,
    check_component,
    check_system,
    dbf,
    sbf_bdr,
    sbf_full,
    sbf_periodic,
)


# ---------------------------------------------------------------------------
# spec validation
# ---------------------------------------------------------------------------


def test_task_spec_validation():
    with pytest.raises(ValueError):
        TaskSpec("t", period=0, wcet=10)
    with pytest.raises(ValueError):
        TaskSpec("t", period=100, wcet=0)
    with pytest.raises(ValueError):
        TaskSpec("t", period=100, wcet=10, deadline=200)  # D > T
    task = TaskSpec("t", period=100, wcet=10)
    assert task.deadline == 100  # implicit deadline
    assert task.utilization == 0.1


def test_task_spec_speed_scaling():
    task = TaskSpec("t", period=100, wcet=10)
    assert task.scaled(1.0) is task
    assert task.scaled(2.0).wcet == 5
    assert task.scaled(4.0).wcet == 3  # ceil(10/4)
    assert task.scaled(2.0).period == 100


def test_component_spec_validation():
    with pytest.raises(ValueError):
        ComponentSpec("c", budget=10)  # bounded needs a period
    with pytest.raises(ValueError):
        ComponentSpec("c", budget=200, period=100)
    with pytest.raises(ValueError):
        ComponentSpec("c", budget=10, period=100, policy="lottery")
    background = ComponentSpec("bg")
    assert not background.bounded
    assert background.server_utilization == 0.0
    server = ComponentSpec("s", budget=25, period=100)
    assert server.bounded and server.server_utilization == 0.25


def test_pe_spec_validation():
    with pytest.raises(ValueError):
        PESpec("pe", top="fifo")
    with pytest.raises(ValueError):
        PESpec("pe", speed=0)


# ---------------------------------------------------------------------------
# bound functions
# ---------------------------------------------------------------------------


def test_sbf_periodic_hand_computed():
    # Θ=3, Π=10: blackout 2(Π−Θ)=14, then 3 per period, as late as possible
    assert sbf_periodic(3, 10, 0) == 0
    assert sbf_periodic(3, 10, 14) == 0
    assert sbf_periodic(3, 10, 15) == 1
    assert sbf_periodic(3, 10, 17) == 3
    assert sbf_periodic(3, 10, 20) == 3  # plateau until the next window
    assert sbf_periodic(3, 10, 24) == 3
    assert sbf_periodic(3, 10, 27) == 6
    # one full extra period adds exactly one budget
    assert sbf_periodic(3, 10, 37) == sbf_periodic(3, 10, 27) + 3


def test_sbf_degenerate_full_server():
    # budget == period: the server owns the CPU
    assert sbf_periodic(10, 10, 7) == 7
    assert sbf_full(7) == 7
    assert sbf_full(-3) == 0


def test_sbf_monotone_and_bounded_by_full():
    for t in range(0, 100):
        assert sbf_periodic(3, 10, t) <= sbf_periodic(3, 10, t + 1)
        assert sbf_periodic(3, 10, t) <= sbf_full(t)


def test_bdr_lower_bounds_periodic_sbf():
    alpha, delta = bdr_interface(3, 10)
    assert alpha == 0.3
    assert delta == 14
    for t in range(0, 200):
        assert sbf_bdr(alpha, delta, t) <= sbf_periodic(3, 10, t)


def test_dbf_hand_computed():
    tasks = [TaskSpec("a", period=10, wcet=2), TaskSpec("b", period=15, wcet=3)]
    assert dbf(tasks, 9) == 0       # nothing due yet
    assert dbf(tasks, 10) == 2      # a's first job
    assert dbf(tasks, 15) == 5      # + b's first job
    assert dbf(tasks, 30) == 2 * 3 + 3 * 2  # 3 a-jobs, 2 b-jobs
    # constrained deadline pulls demand earlier
    tight = [TaskSpec("a", period=10, wcet=2, deadline=5)]
    assert dbf(tight, 5) == 2
    assert dbf(tight, 14) == 2
    assert dbf(tight, 15) == 4


# ---------------------------------------------------------------------------
# component-level checks
# ---------------------------------------------------------------------------


def test_edf_component_schedulable_on_dedicated_core():
    comp = ComponentSpec("c", budget=100, period=100, policy="edf", tasks=(
        TaskSpec("a", period=100, wcet=40),
        TaskSpec("b", period=200, wcet=60),
    ))
    verdict = check_component(comp, supply=sbf_full)
    assert verdict.schedulable
    assert all(tv.schedulable and tv.guaranteed for tv in verdict.tasks)
    assert verdict.utilization == pytest.approx(0.7)


def test_edf_component_overload_marks_every_task():
    comp = ComponentSpec("c", budget=100, period=100, policy="edf", tasks=(
        TaskSpec("a", period=100, wcet=70),
        TaskSpec("b", period=100, wcet=60),
    ))
    verdict = check_component(comp, supply=sbf_full)
    assert not verdict.schedulable
    # under EDF overload is a taskset-wide property
    assert all(not tv.schedulable for tv in verdict.tasks)
    assert "dbf" in verdict.reason


def test_edf_component_respects_server_blackout():
    # demand fits a dedicated core but not a 50/100 server whose
    # worst-case blackout (100) swallows the deadline
    comp = ComponentSpec("c", budget=50, period=100, policy="edf", tasks=(
        TaskSpec("a", period=1000, wcet=40, deadline=90),
    ))
    assert check_component(comp, supply=sbf_full).schedulable
    assert not check_component(comp).schedulable
    # a relaxed deadline clears the blackout: sbf(190) = 50 >= 40
    relaxed = ComponentSpec("c", budget=50, period=100, policy="edf", tasks=(
        TaskSpec("a", period=1000, wcet=40, deadline=190),
    ))
    assert check_component(relaxed).schedulable


def test_fixed_priority_tda_orders_by_priority():
    comp = ComponentSpec("c", budget=100, period=100, policy="priority",
                         tasks=(
                             TaskSpec("lo", period=100, wcet=40, priority=2),
                             TaskSpec("hi", period=50, wcet=30, priority=1),
                         ))
    verdict = check_component(comp, supply=sbf_full)
    # hi: 30 <= 50 fits; lo: 40 + 2*30 = 100 <= 100 at t=100 fits
    assert verdict.schedulable
    # tighten lo's deadline below its finishing time and only lo fails
    comp2 = ComponentSpec("c", budget=100, period=100, policy="priority",
                          tasks=(
                              TaskSpec("lo", period=100, wcet=40, priority=2,
                                       deadline=90),
                              TaskSpec("hi", period=50, wcet=30, priority=1),
                          ))
    verdict2 = check_component(comp2, supply=sbf_full)
    assert not verdict2.schedulable
    by_name = {tv.task: tv for tv in verdict2.tasks}
    assert by_name["hi"].schedulable
    assert not by_name["lo"].schedulable


def test_rms_policy_uses_rate_monotonic_order():
    # same taskset, no explicit priorities: rms ranks by period
    comp = ComponentSpec("c", budget=100, period=100, policy="rms", tasks=(
        TaskSpec("slow", period=100, wcet=40),
        TaskSpec("fast", period=50, wcet=30),
    ))
    assert check_component(comp, supply=sbf_full).schedulable


def test_background_component_is_best_effort():
    comp = ComponentSpec("bg", tasks=(
        TaskSpec("a", period=100, wcet=99),
    ))
    verdict = check_component(comp)
    assert verdict.best_effort
    assert verdict.schedulable  # never blocks the system verdict
    assert all(not tv.guaranteed for tv in verdict.tasks)


def test_empty_component_trivially_schedulable():
    verdict = check_component(ComponentSpec("c", budget=10, period=100))
    assert verdict.schedulable and not verdict.best_effort


def test_truncated_hyperperiod_is_conservative():
    # coprime prime periods explode the hyperperiod past MAX_TEST_POINTS:
    # the verdict must be *unschedulable*, never a false guarantee
    comp = ComponentSpec("c", budget=100, period=100, policy="edf", tasks=(
        TaskSpec("a", period=49999, wcet=1),
        TaskSpec("b", period=50021, wcet=1),
    ))
    verdict = check_component(comp, supply=sbf_full)
    assert not verdict.schedulable
    assert "test points" in verdict.reason


# ---------------------------------------------------------------------------
# system-level checks
# ---------------------------------------------------------------------------


def _simple_system(budget_a=30, budget_b=40, top="priority"):
    return SystemSpec("sys", pes=(
        PESpec("pe0", top=top, components=(
            ComponentSpec("A", budget=budget_a, period=100, policy="edf",
                          priority=0, tasks=(
                              TaskSpec("a0", period=1000, wcet=80),
                          )),
            ComponentSpec("B", budget=budget_b, period=100, policy="edf",
                          priority=1, tasks=(
                              TaskSpec("b0", period=2000, wcet=100),
                          )),
        )),
    ))


def test_system_schedulable_end_to_end():
    verdict = check_system(_simple_system())
    assert verdict.schedulable
    assert set(verdict.guaranteed_tasks) == {"a0", "b0"}
    ok, reason = verdict.top_level["pe0"]
    assert ok
    assert verdict.task_verdict("a0").schedulable
    with pytest.raises(KeyError):
        verdict.task_verdict("missing")


def test_top_level_overload_cascades_to_components():
    # server utilization 0.7 + 0.7 > 1: the priority top level cannot
    # deliver B's budget, so B's (otherwise fine) taskset loses its
    # guarantee too
    verdict = check_system(_simple_system(budget_a=70, budget_b=70))
    assert not verdict.schedulable
    ok, reason = verdict.top_level["pe0"]
    assert not ok and "B" in reason
    b0 = verdict.task_verdict("b0")
    assert not b0.schedulable
    assert "top level" in b0.reason


def test_edf_top_level_uses_utilization_bound():
    assert check_system(_simple_system(top="edf")).schedulable
    verdict = check_system(_simple_system(60, 50, top="edf"))
    assert not verdict.schedulable
    ok, reason = verdict.top_level["pe0"]
    assert not ok and "utilization" in reason


def test_pe_speed_scales_demand():
    # a 30/100 server guarantees sbf(1000) = 270: wcet 280 overflows on
    # a unit core but halves to 140 on a 2x core
    spec = SystemSpec("sys", pes=(
        PESpec("pe0", speed=1.0, components=(
            ComponentSpec("A", budget=30, period=100, policy="edf", tasks=(
                TaskSpec("a0", period=1000, wcet=280),
            )),
        )),
    ))
    fast = SystemSpec("sys", pes=(
        PESpec("pe0", speed=2.0, components=spec.pes[0].components),
    ))
    assert not check_system(spec).schedulable
    assert check_system(fast).schedulable


def test_multi_pe_verdicts_are_independent():
    spec = SystemSpec("sys", pes=(
        PESpec("good", components=(
            ComponentSpec("A", budget=50, period=100, policy="edf", tasks=(
                TaskSpec("g0", period=1000, wcet=100),
            )),
        )),
        PESpec("bad", components=(
            ComponentSpec("Z", budget=10, period=100, policy="edf", tasks=(
                TaskSpec("z0", period=1000, wcet=500),
            )),
        )),
    ))
    verdict = check_system(spec)
    assert not verdict.schedulable
    assert verdict.task_verdict("g0").schedulable
    assert not verdict.task_verdict("z0").schedulable
    assert verdict.guaranteed_tasks == ["g0"]
