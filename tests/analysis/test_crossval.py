"""Cross-validation harness: simulator vs analytic checker.

Small hand-built specs exercise both directions of the contract fast;
the generated matrix is sampled (the full 20-config sweep runs in CI via
``python -m repro.analysis.crossval``).
"""

import json

from repro.analysis.crossval import (
    build_architecture,
    cross_validate,
    generate_matrix,
    main,
    run_matrix,
    simulate,
)
from repro.analysis.schedulability import (
    ComponentSpec,
    PESpec,
    SystemSpec,
    TaskSpec,
    check_system,
)


def _schedulable_spec():
    # 100 of work per 1000 through a 50/100 server: sbf(1000)=450
    return SystemSpec("ok", pes=(
        PESpec("pe0", top="priority", components=(
            ComponentSpec("A", budget=50, period=100, policy="edf",
                          priority=0, tasks=(
                              TaskSpec("t0", period=1000, wcet=100),
                          )),
        )),
    ))


def _overloaded_spec():
    # 500 of work per 1000 through a 20/100 server (supply 200/1000)
    return SystemSpec("over", pes=(
        PESpec("pe0", top="priority", components=(
            ComponentSpec("A", budget=20, period=100, policy="edf",
                          priority=0, tasks=(
                              TaskSpec("t0", period=1000, wcet=500),
                          )),
        )),
    ))


def test_build_architecture_mirrors_spec():
    spec = SystemSpec("sys", pes=(
        PESpec("pe0", top="edf", speed=2.0, components=(
            ComponentSpec("A", budget=50, period=100, priority=0, tasks=(
                TaskSpec("t0", period=1000, wcet=100),
                TaskSpec("t1", period=2000, wcet=100),
            )),
        )),
    ))
    arch = build_architecture(spec)
    pe = arch.pes["pe0"]
    comp = pe.component("A")
    assert comp.budget == 50 and comp.period == 100
    names = {task.name for task in pe.tasks}
    assert names == {"t0", "t1"}
    # the runtime scales WCETs by PE speed like the analysis does
    t0 = next(task for task in pe.tasks if task.name == "t0")
    assert t0.wcet == 50
    # tracing is disabled for throughput on generated sweeps
    assert not arch.sim.trace.enabled


def test_simulate_schedulable_spec_has_zero_misses():
    results = simulate(_schedulable_spec())
    row = results["t0"]
    assert row["misses"] == 0
    assert row["cycles"] > 0
    assert row["worst_response"] <= 1000
    comp = results["__components__"]["pe0.A"]
    assert comp["max_window_consumption"] <= comp["budget"]


def test_simulate_overloaded_spec_misses():
    results = simulate(_overloaded_spec())
    assert results["t0"]["misses"] > 0
    # budget enforcement held even under overload
    comp = results["__components__"]["pe0.A"]
    assert comp["max_window_consumption"] <= comp["budget"]
    assert comp["throttles"] > 0


def test_cross_validate_schedulable_direction():
    report = cross_validate(_schedulable_spec())
    assert report["analysis_schedulable"]
    assert report["guaranteed_tasks"] == ["t0"]
    assert report["simulated_misses"]["t0"] == 0
    assert report["missed_tasks"] == []
    assert report["consistent"]
    assert report["violations"] == []


def test_cross_validate_unschedulable_witness():
    verdict = check_system(_overloaded_spec())
    assert not verdict.schedulable
    report = cross_validate(_overloaded_spec())
    assert not report["analysis_schedulable"]
    # the miss is real but not a contract violation: the task was never
    # guaranteed
    assert report["missed_tasks"] == ["t0"]
    assert report["consistent"]


def test_generate_matrix_is_deterministic():
    a = generate_matrix(count=6, seed=11)
    b = generate_matrix(count=6, seed=11)
    assert a == b
    assert len(a) == 6
    assert generate_matrix(count=6, seed=12) != a
    # every generated spec analyzes without raising
    for spec in a:
        check_system(spec)


def test_run_matrix_contract_holds_on_sample():
    summary = run_matrix(count=6, seed=7)
    assert summary["count"] == 6
    assert summary["consistent"]
    assert summary["violations"] == []
    assert summary["schedulable"] + summary["unschedulable"] == 6
    assert len(summary["reports"]) == 6


def test_cli_reports_and_exits_clean(tmp_path, capsys):
    out = tmp_path / "report.json"
    status = main(["--count", "4", "--seed", "3", "--json", str(out)])
    assert status == 0
    captured = capsys.readouterr().out
    assert "4 configs" in captured
    assert "contract holds" in captured
    payload = json.loads(out.read_text())
    assert payload["count"] == 4
    assert payload["consistent"] is True
