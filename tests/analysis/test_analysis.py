"""Analysis package: trace queries, Gantt, validation, LoC, VCD."""

import pytest

from repro.analysis import (
    completion_time,
    exec_segments,
    exec_time_per_actor,
    exec_time_preserved,
    first_start,
    mark_time,
    overlap_exists,
    render_gantt,
    response_latencies,
    same_functional_marks,
    serialized,
)
from repro.analysis.loc import count_source_lines, module_loc
from repro.analysis.vcd import to_vcd
from repro.kernel import Trace


@pytest.fixture
def trace():
    t = Trace()
    t.segment("a", 0, 10)
    t.segment("b", 10, 30)
    t.segment("a", 30, 35)
    t.record(5, "user", "a", "hello")
    t.record(12, "irq", "bus", "raise")
    t.record(20, "user", "b", "served")
    return t


def test_exec_segments_merge():
    t = Trace()
    t.segment("a", 0, 10)
    t.segment("a", 10, 20)
    t.segment("a", 25, 30)
    merged = exec_segments(t, "a", merge=True)
    assert merged == [("a", 0, 20, "run"), ("a", 25, 30, "run")]


def test_exec_time_and_completion(trace):
    totals = exec_time_per_actor(trace)
    assert totals == {"a": 15, "b": 20}
    assert completion_time(trace, "a") == 35
    assert first_start(trace, "b") == 10
    assert completion_time(trace, "missing") is None


def test_mark_time_and_occurrence(trace):
    assert mark_time(trace, "hello") == 5
    with pytest.raises(ValueError):
        mark_time(trace, "hello", occurrence=1)


def test_response_latencies(trace):
    assert response_latencies(trace, "bus", "served") == [8]


def test_overlap_and_serialized(trace):
    assert not overlap_exists(trace, "a", "b")
    assert serialized(trace, ["a", "b"])
    trace.segment("c", 8, 12)
    assert overlap_exists(trace, "a", "c")
    assert not serialized(trace, ["a", "b", "c"])


def test_same_functional_marks():
    t1, t2 = Trace(), Trace()
    t1.record(1, "user", "x", "m1")
    t1.record(2, "user", "x", "m2")
    t2.record(10, "user", "x", "m1")
    t2.record(30, "user", "x", "m2")
    assert same_functional_marks(t1, t2)
    t2.record(40, "user", "x", "m3")
    assert not same_functional_marks(t1, t2)


def test_exec_time_preserved(trace):
    other = Trace()
    other.segment("a", 100, 115)
    other.segment("b", 115, 135)
    assert exec_time_preserved(trace, other, ["a", "b"])
    other.segment("b", 200, 201)
    assert not exec_time_preserved(trace, other, ["a", "b"])


def test_gantt_renders_rows(trace):
    art = render_gantt(trace, width=35)
    lines = art.splitlines()
    assert lines[0].startswith("a ")
    assert "#" in lines[0]
    assert "35" in lines[2]  # axis end


def test_gantt_empty():
    assert render_gantt(Trace()) == "(empty trace)"


def test_gantt_markers(trace):
    art = render_gantt(trace, width=35, markers={"t4": 12})
    assert "t4=12" in art
    assert "^" in art


def test_count_source_lines():
    text = "# comment\n\ncode = 1  # trailing\n; asm comment\n  more()\n"
    assert count_source_lines(text) == 2


def test_module_loc_positive():
    import repro.analysis.vcd as vcd_module

    assert module_loc(vcd_module) > 20


# ---------------------------------------------------------------------------
# VCD export
# ---------------------------------------------------------------------------


def test_vcd_structure(trace):
    doc = to_vcd(trace)
    assert "$timescale 1 ns $end" in doc
    assert "$var wire 1 ! a $end" in doc
    assert "$var wire 1 \" b $end" in doc
    assert "$enddefinitions $end" in doc
    # a rises at 0, falls at 10; b rises at 10, falls at 30
    assert "#0\n1!" in doc
    assert "#10\n0!\n1\"" in doc
    block_30 = doc.split("#30\n", 1)[1].split("#", 1)[0]
    assert "0\"" in block_30  # b falls at 30 (a also rises there)


def test_vcd_roundtrip_parse(trace):
    """Parse our own VCD back and check the toggle sequence."""
    doc = to_vcd(trace)
    time = None
    toggles = []
    for line in doc.splitlines():
        if line.startswith("#"):
            time = int(line[1:])
        elif time is not None and line and line[0] in "01":
            toggles.append((time, line[1:], int(line[0])))
    assert (0, "!", 1) in toggles
    assert (35, "!", 0) in toggles
    rises = [t for t, ident, v in toggles if ident == "!" and v == 1]
    falls = [t for t, ident, v in toggles if ident == "!" and v == 0]
    assert rises == [0, 30]
    assert falls == [10, 35]


def test_vcd_write(tmp_path, trace):
    from repro.analysis.vcd import write_vcd

    path = write_vcd(trace, tmp_path / "trace.vcd")
    assert path.read_text().startswith("$date")


def _toggles(doc):
    """(time, ident, value) triples from a VCD body, in emission order."""
    time = None
    toggles = []
    for line in doc.splitlines():
        if line.startswith("#"):
            time = int(line[1:])
        elif time is not None and line and line[0] in "01":
            toggles.append((time, line[1:], int(line[0])))
    return toggles


def test_vcd_zero_width_segment_never_sticks_high():
    """A zero-width segment must not emit edges (and must not leave the
    wire stuck high)."""
    t = Trace()
    t.segment("a", 5, 5)
    toggles = _toggles(to_vcd(t, actors=["a"]))
    assert toggles == []


def test_vcd_back_to_back_segments_stay_high():
    """Adjacent segments of one actor merge: no glitch at the boundary."""
    t = Trace()
    t.segment("a", 0, 5)
    t.segment("a", 5, 10)
    toggles = _toggles(to_vcd(t, actors=["a"]))
    assert toggles == [(0, "!", 1), (10, "!", 0)]


def test_vcd_falling_edges_before_rising_at_same_time():
    """At a handover instant the leaving wire falls before the entering
    wire rises, so no reader ever sees both high."""
    t = Trace()
    t.segment("a", 0, 10)
    t.segment("b", 10, 20)
    toggles = _toggles(to_vcd(t, actors=["a", "b"]))
    at_10 = [(ident, value) for time, ident, value in toggles if time == 10]
    assert at_10 == [("!", 0), ('"', 1)]


def test_vcd_zero_width_at_handover_instant():
    """A zero-width segment coinciding with a handover adds nothing."""
    t = Trace()
    t.segment("a", 0, 10)
    t.segment("c", 10, 10)
    t.segment("b", 10, 20)
    toggles = _toggles(to_vcd(t, actors=["a", "b", "c"]))
    assert [(time, value) for time, ident, value in toggles
            if ident == "#"] == []  # "c" (third ident) never toggles
    at_10 = [(ident, value) for time, ident, value in toggles if time == 10]
    assert at_10 == [("!", 0), ('"', 1)]


def test_vcd_overlapping_segments_single_pulse():
    """Overlapping segments of one actor form one continuous high."""
    t = Trace()
    t.segment("a", 0, 10)
    t.segment("a", 5, 15)
    toggles = _toggles(to_vcd(t, actors=["a"]))
    assert toggles == [(0, "!", 1), (15, "!", 0)]


def test_vcd_from_real_model():
    from repro.apps.fig3 import run_architecture

    result = run_architecture()
    doc = to_vcd(result.trace, actors=["Task_PE", "B2", "B3"])
    assert "Task_PE" in doc
    assert doc.count("#") > 5
