"""Schedule-report module."""

from repro.analysis import schedule_report, task_table
from tests.rtos.conftest import Harness


def build_run():
    bench = Harness()

    def worker(task):
        def _b():
            for _ in range(3):
                yield from bench.os.time_wait(100)

        return _b()

    bench.task("alpha", worker, priority=1)
    bench.task("beta", worker, priority=2)
    bench.run()
    return bench


def test_task_table_rows():
    bench = build_run()
    rows = task_table(bench.os)
    assert [r["task"] for r in rows] == ["alpha", "beta"]
    for row in rows:
        assert row["exec_time"] == 300
        assert row["state"] == "terminated"
        assert row["activations"] == 1
        assert row["type"] == "aperiodic"


def test_schedule_report_contents():
    bench = build_run()
    text = schedule_report(bench.os, bench.sim, title="my pe")
    assert "my pe" in text
    assert "FixedPriority" in text
    assert "CPU utilization     : 100.0%" in text
    assert "alpha" in text and "beta" in text
    assert "context switches    : 1" in text


def test_schedule_report_shows_overhead():
    from repro.kernel import Simulator, WaitFor
    from repro.rtos import APERIODIC, RTOSModel

    sim = Simulator()
    os_ = RTOSModel(sim, switch_overhead=10)

    def body():
        yield from os_.time_wait(50)

    for i in range(2):
        task = os_.task_create(f"t{i}", APERIODIC, 0, 0, priority=i)
        sim.spawn(os_.task_body(task, body()), name=task.name)

    def boot():
        yield WaitFor(0)
        os_.start()

    sim.spawn(boot())
    sim.run()
    text = schedule_report(os_, sim)
    assert "(overhead 10)" in text
