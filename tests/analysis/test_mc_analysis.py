"""Mixed-criticality certificates and their simulation cross-check.

AMC-rtb (fixed priority) and EDF-VD (dynamic priority) are *sufficient*
tests: certified ⇒ no HI-task deadline miss no matter when the mode
switch happens. The cross-validation harness drives every HI task at
its pessimistic budget and checks exactly that against the armed
:class:`~repro.rtos.mc.MCController` — plus the unprotected baseline,
which must demonstrably miss for at least one certified set (the
shielding witness).
"""

import pytest

from repro.analysis.crossval import (
    cross_validate_mc,
    generate_mc_matrix,
    run_mc_matrix,
    simulate_mc,
)
from repro.analysis.schedulability import (
    MCTaskSpec,
    check_amc_rtb,
    check_edf_vd,
)


def _classic_set():
    """A hand-sized AMC example: certified under drop degradation."""
    return [
        MCTaskSpec("lo1", period=100, wcet_lo=10, priority=1),
        MCTaskSpec("hi1", period=200, wcet_lo=30, wcet_hi=80,
                   criticality="HI", priority=2),
        MCTaskSpec("lo2", period=100, wcet_lo=10, priority=3),
    ]


# ----------------------------------------------------------------------
# MCTaskSpec validation
# ----------------------------------------------------------------------

def test_spec_defaults_and_utilization():
    lo = MCTaskSpec("t", period=100, wcet_lo=20)
    assert lo.wcet_hi == 20          # LO tasks get no HI allowance
    assert lo.deadline == 100
    assert lo.utilization("LO") == 0.2
    hi = MCTaskSpec("h", period=100, wcet_lo=20, wcet_hi=50,
                    criticality="HI")
    assert hi.is_hi
    assert hi.utilization("HI") == 0.5


@pytest.mark.parametrize("kwargs", [
    dict(period=0, wcet_lo=1),
    dict(period=10, wcet_lo=0),
    dict(period=10, wcet_lo=5, wcet_hi=3, criticality="HI"),
    dict(period=10, wcet_lo=1, criticality="MEDIUM"),
    dict(period=10, wcet_lo=1, deadline=20),
])
def test_spec_validation(kwargs):
    with pytest.raises(ValueError):
        MCTaskSpec("bad", **kwargs)


# ----------------------------------------------------------------------
# AMC-rtb
# ----------------------------------------------------------------------

def test_amc_rtb_certifies_the_classic_set():
    verdict = check_amc_rtb(_classic_set())
    assert verdict.schedulable
    hi = next(tv for tv in verdict.tasks if tv.task == "hi1")
    # LO-mode response: 30 + one lo1 release = 40
    assert hi.response_lo == 40
    # switch bound: 80 (HI budget) + carry-over lo1 interference
    assert hi.response_switch is not None
    assert hi.response_switch <= 200


def test_amc_rtb_rejects_overloaded_hi_mode():
    tasks = [
        MCTaskSpec("lo", period=100, wcet_lo=10, priority=1),
        MCTaskSpec("hi", period=100, wcet_lo=30, wcet_hi=120,
                   criticality="HI", priority=2),
    ]
    verdict = check_amc_rtb(tasks)
    assert not verdict.schedulable
    hi = next(tv for tv in verdict.tasks if tv.task == "hi")
    assert not hi.schedulable


def test_amc_rtb_lo_period_scale_is_more_pessimistic():
    """skip/elastic leave LO interference running at half rate — the
    policy-aware bound must never certify more than classical drop."""
    tasks = [
        MCTaskSpec("lo", period=50, wcet_lo=20, priority=1),
        MCTaskSpec("hi", period=200, wcet_lo=40, wcet_hi=110,
                   criticality="HI", priority=2),
    ]
    drop = check_amc_rtb(tasks, lo_period_scale=None)
    slowed = check_amc_rtb(tasks, lo_period_scale=2)
    assert drop.schedulable
    hi_drop = next(tv for tv in drop.tasks if tv.task == "hi")
    hi_slow = next(tv for tv in slowed.tasks if tv.task == "hi")
    if slowed.schedulable:
        assert hi_slow.response_switch >= hi_drop.response_switch
    else:
        assert not hi_slow.schedulable


def test_amc_rtb_requires_priorities():
    with pytest.raises(ValueError, match="priority"):
        check_amc_rtb([MCTaskSpec("t", period=10, wcet_lo=1)])
    with pytest.raises(ValueError, match="lo_period_scale"):
        check_amc_rtb(_classic_set(), lo_period_scale=0.5)


# ----------------------------------------------------------------------
# EDF-VD
# ----------------------------------------------------------------------

def test_edf_vd_plain_edf_when_total_fits():
    verdict = check_edf_vd(_classic_set())
    assert verdict.schedulable
    assert verdict.x_factor == 1.0   # U_LO^LO + U_HI^HI = 0.6 <= 1


def test_edf_vd_scales_virtual_deadlines():
    tasks = [
        MCTaskSpec("lo", period=10, wcet_lo=4, priority=1),
        MCTaskSpec("hi", period=10, wcet_lo=3, wcet_hi=7,
                   criticality="HI", priority=2),
    ]
    verdict = check_edf_vd(tasks)
    # U_LO^LO=.4, U_HI^LO=.3, U_HI^HI=.7: x = .3/.6 = .5 and
    # x*U_LO^LO + U_HI^HI = .9 <= 1, so EDF-VD certifies with x < 1
    assert verdict.schedulable
    assert 0 < verdict.x_factor < 1


def test_edf_vd_rejects_hi_overload():
    tasks = [
        MCTaskSpec("hi", period=10, wcet_lo=5, wcet_hi=11,
                   criticality="HI"),
    ]
    assert not check_edf_vd(tasks).schedulable


def test_edf_vd_rejects_lo_mode_overload():
    tasks = [
        MCTaskSpec("lo", period=10, wcet_lo=8),
        MCTaskSpec("hi", period=10, wcet_lo=3, wcet_hi=3,
                   criticality="HI"),
    ]
    assert not check_edf_vd(tasks).schedulable


# ----------------------------------------------------------------------
# cross-validation
# ----------------------------------------------------------------------

def test_simulate_mc_armed_vs_baseline():
    tasks = _classic_set()
    armed = simulate_mc(tasks)
    assert armed["__mc__"]["mode"] == "HI"
    assert armed["__mc__"]["mode_raises"] >= 1
    assert armed["hi1"]["misses"] == 0
    baseline = simulate_mc(tasks, with_mc=False)
    assert baseline["__mc__"]["mode"] is None
    assert baseline["__mc__"]["mode_raises"] == 0


@pytest.mark.parametrize("degrade", ["drop", "skip", "elastic"])
def test_certified_implies_no_hi_miss(degrade):
    row = cross_validate_mc(_classic_set(), degrade=degrade)
    assert row["consistent"], row["violations"]
    if row["certified_hi"]:
        assert all(
            row["mc_misses"][name] == 0 for name in row["certified_hi"]
        )


def test_mc_matrix_is_deterministic_and_consistent():
    first = generate_mc_matrix(count=6, seed=7)
    second = generate_mc_matrix(count=6, seed=7)
    assert [[t.name for t in s] for s in first] == \
        [[t.name for t in s] for s in second]
    report = run_mc_matrix(count=6, seed=7, degrade="drop")
    assert report["consistent"], report["violations"]
    assert report["certified"] >= 1
    # the witness: shielding (not slack) saves certified HI tasks
    assert report["shielded"] >= 1
    assert report["uncertified_with_misses"] >= 1
