"""Back-pressure behavior of refined channels under the RTOS model."""

from repro.channels import RTOSQueue
from tests.rtos.conftest import Harness


def test_full_queue_blocks_producer_until_drain():
    bench = Harness()
    q = RTOSQueue(bench.os, capacity=1, name="q")

    def producer(task):
        def _b():
            for i in range(3):
                yield from q.send(i)
                bench.mark("sent", i)

        return _b()

    def consumer(task):
        def _b():
            for _ in range(3):
                yield from bench.os.time_wait(100)
                item = yield from q.recv()
                bench.mark("got", item)

        return _b()

    bench.task("producer", producer, priority=1)
    bench.task("consumer", consumer, priority=2)
    bench.run()
    # producer sends 0 at t=0, then blocks; each recv frees one slot
    assert ("sent", 0, 0) in bench.log
    assert ("got", 0, 100) in bench.log
    assert ("sent", 1, 100) in bench.log
    assert ("got", 2, 300) in bench.log
    assert q.sent == q.received == 3


def test_priority_inverted_producer_consumer_still_progresses():
    """Low-priority consumer, high-priority producer with a bounded
    queue: blocking on the full queue yields the CPU so the consumer
    always runs — no livelock."""
    bench = Harness()
    q = RTOSQueue(bench.os, capacity=2, name="q")
    n = 10

    def producer(task):
        def _b():
            for i in range(n):
                yield from q.send(i)

        return _b()

    def consumer(task):
        def _b():
            for _ in range(n):
                item = yield from q.recv()
                yield from bench.os.time_wait(10)
                bench.mark(item)

        return _b()

    bench.task("producer", producer, priority=1)  # more urgent!
    bench.task("consumer", consumer, priority=9)
    bench.run()
    assert [e[0] for e in bench.log] == list(range(n))
    assert bench.sim.now == n * 10
