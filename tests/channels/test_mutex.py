"""Mutex ownership checks and priority-inheritance bookkeeping.

Regression tests for the shared ``MutexBase`` template:

* unlocking from a non-owner raises — ``RuntimeError`` in the spec
  flavor (label mismatch), :class:`~repro.rtos.errors.RTOSError` in the
  refined one (task identity mismatch);
* the inherited priority survives a second waiter raising the boost and
  locks released out of acquisition order: ``Task.base_priority`` is
  recorded once at the first boost, and every unlock recomputes the
  effective priority over the waiters of the PI locks still held.
"""

import pytest

from repro.channels import Mutex, RTOSMutex
from tests.rtos.conftest import Harness


def drain(gen):
    """Run an uncontended channel generator to completion outside a sim."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


# ----------------------------------------------------------------------
# spec flavor: who-label ownership
# ----------------------------------------------------------------------

def test_spec_unlock_label_mismatch_raises():
    mtx = Mutex(name="m")
    drain(mtx.lock(who="writer"))
    assert mtx.owner == "writer"
    with pytest.raises(RuntimeError) as err:
        next(mtx.unlock(who="reader"))
    assert "non-owner" in str(err.value)
    # the failed unlock must not have released the lock
    assert mtx.locked() and mtx.owner == "writer"
    drain(mtx.unlock(who="writer"))
    assert not mtx.locked()


def test_spec_anonymous_unlock_skips_label_check():
    """An unlabeled unlock cannot be identified, so it is trusted —
    matching the paper-level spec model where ownership is structural."""
    mtx = Mutex(name="m")
    drain(mtx.lock(who="writer"))
    drain(mtx.unlock())
    assert not mtx.locked()


def test_spec_labeled_unlock_of_anonymous_owner_allowed():
    mtx = Mutex(name="m")
    drain(mtx.lock())  # owner is the anonymous sentinel True
    drain(mtx.unlock(who="anyone"))
    assert not mtx.locked()


# ----------------------------------------------------------------------
# refined flavor: task-identity ownership
# ----------------------------------------------------------------------

def test_rtos_unlock_by_non_owner_task_raises():
    bench = Harness()
    mtx = RTOSMutex(bench.os, name="m")
    evt = bench.os.event_new("hold")

    def owner(task):
        yield from mtx.lock()
        yield from bench.os.event_wait(evt)  # hold the lock off-CPU

    def thief(task):
        yield from mtx.unlock()

    bench.task("owner", owner, priority=1)
    bench.task("thief", thief, priority=2)
    with pytest.raises(Exception) as err:
        bench.run()
    assert "non-owner" in str(err.value)
    assert "thief" in str(err.value)


def test_rtos_pi_second_waiter_raises_boost_base_recorded_once():
    """Two successive waiters boost the owner twice; the restore must go
    back to the owner's *original* priority, not the first boost."""
    bench = Harness()
    mtx = RTOSMutex(bench.os, name="m", priority_inheritance=True)
    evt1, evt2 = bench.os.event_new("w1"), bench.os.event_new("w2")
    snaps = []

    def low(task):
        yield from mtx.lock()
        for _ in range(6):
            yield from bench.os.time_wait(10)
            snaps.append((bench.sim.now, task.priority, task.base_priority))
        yield from mtx.unlock()
        snaps.append(("after", task.priority, task.base_priority))

    def waiter(evt):
        def _body(task):
            yield from bench.os.event_wait(evt)
            yield from mtx.lock()
            yield from mtx.unlock()
            bench.mark(task.name)

        return _body

    bench.task("low", low, priority=9)
    bench.task("w1", waiter(evt1), priority=5)
    bench.task("w2", waiter(evt2), priority=2)

    def isr(evt):
        def _gen():
            yield from bench.os.event_notify(evt)
            bench.os.interrupt_return()

        return _gen

    bench.isr_at(15, isr(evt1))  # w1 blocks on the lock at t=20
    bench.isr_at(35, isr(evt2))  # w2 raises the boost at t=40
    bench.run()
    assert snaps == [
        (10, 9, None),   # unboosted
        (20, 5, 9),      # first waiter: boosted, base recorded
        (30, 5, 9),
        (40, 2, 9),      # second waiter raises the boost, base unchanged
        (50, 2, 9),
        (60, 2, 9),
        ("after", 9, None),  # restored to the original, not to 5
    ]
    assert [e[0] for e in bench.log] == ["w2", "w1"]  # urgency order
    assert not mtx.locked()


def test_rtos_pi_out_of_order_release_keeps_boost_of_held_lock():
    """Releasing in acquisition order (not LIFO nesting order) must keep
    the boost owed to the still-held lock's waiter."""
    bench = Harness()
    m1 = RTOSMutex(bench.os, name="m1", priority_inheritance=True)
    m2 = RTOSMutex(bench.os, name="m2", priority_inheritance=True)
    evt_a, evt_b = bench.os.event_new("a"), bench.os.event_new("b")
    snaps = []

    def low(task):
        yield from m1.lock()
        yield from m2.lock()
        for _ in range(5):
            yield from bench.os.time_wait(10)
        yield from m1.unlock()  # acquisition order, not nesting order
        snaps.append(("rel-m1", task.priority, task.base_priority))
        yield from bench.os.time_wait(10)
        yield from m2.unlock()
        snaps.append(("rel-m2", task.priority, task.base_priority))

    def contender(evt, mtx):
        def _body(task):
            yield from bench.os.event_wait(evt)
            yield from mtx.lock()
            yield from mtx.unlock()
            bench.mark(task.name)

        return _body

    bench.task("low", low, priority=9)
    bench.task("wa", contender(evt_a, m1), priority=4)
    bench.task("wb", contender(evt_b, m2), priority=2)

    def isr(evt):
        def _gen():
            yield from bench.os.event_notify(evt)
            bench.os.interrupt_return()

        return _gen

    bench.isr_at(15, isr(evt_a))  # wa blocks on m1 -> boost to 4
    bench.isr_at(25, isr(evt_b))  # wb blocks on m2 -> boost to 2
    bench.run()
    assert snaps == [
        # m1's waiter (4) is released, but m2's waiter (2) still holds
        # a claim on us: stay boosted at 2, base kept
        ("rel-m1", 2, 9),
        ("rel-m2", 9, None),
    ]
    assert not m1.locked() and not m2.locked()
