"""Refined-flavor channels under the RTOS model (Figure 7 semantics)."""

from repro.channels import (
    RTOSHandshake,
    RTOSMailbox,
    RTOSMutex,
    RTOSQueue,
    RTOSSemaphore,
)
from tests.rtos.conftest import Harness


def test_rtos_semaphore_isr_release_wakes_task():
    """The Figure-3 pattern: ISR releases a semaphore the driver task
    blocks on."""
    bench = Harness()
    sem = RTOSSemaphore(bench.os, init=0, name="sem")

    def driver(task):
        def _b():
            yield from sem.acquire()
            bench.mark("driver-woke")
            yield from bench.os.time_wait(20)

        return _b()

    bench.task("driver", driver, priority=1)

    def isr():
        yield from sem.release()
        bench.os.interrupt_return()

    bench.isr_at(75, isr)
    bench.run()
    assert bench.log == [("driver-woke", 75)]
    assert bench.os.metrics.interrupts == 1


def test_rtos_queue_between_tasks():
    bench = Harness()
    q = RTOSQueue(bench.os, capacity=2, name="q")

    def producer(task):
        def _b():
            for i in range(4):
                yield from bench.os.time_wait(10)
                yield from q.send(i)

        return _b()

    def consumer(task):
        def _b():
            for _ in range(4):
                item = yield from q.recv()
                bench.mark("got", item)

        return _b()

    bench.task("consumer", consumer, priority=1)
    bench.task("producer", producer, priority=2)
    bench.run()
    assert [(e[0], e[1]) for e in bench.log] == [("got", i) for i in range(4)]
    assert q.sent == q.received == 4


def test_rtos_handshake_same_timestep_rendezvous():
    """Sender notifies before the receiver waits within one timestep;
    the same-timestep pending rule must preserve the rendezvous."""
    bench = Harness()
    hs = RTOSHandshake(bench.os, name="hs")

    def sender(task):
        def _b():
            yield from bench.os.time_wait(10)
            yield from hs.send("data")
            bench.mark("sent")

        return _b()

    def receiver(task):
        def _b():
            yield from bench.os.time_wait(10)
            item = yield from hs.recv()
            bench.mark("received", item)

        return _b()

    bench.task("sender", sender, priority=1)
    bench.task("receiver", receiver, priority=2)
    bench.run()
    assert ("received", "data", 20) in bench.log
    assert ("sent", 20) in bench.log


def test_rtos_mailbox_from_isr():
    bench = Harness()
    mb = RTOSMailbox(bench.os, name="mb")

    def worker(task):
        def _b():
            for _ in range(2):
                msg = yield from mb.collect()
                bench.mark("msg", msg)

        return _b()

    bench.task("worker", worker)

    def isr(payload):
        def _gen():
            yield from mb.post(payload)
            bench.os.interrupt_return()

        return _gen

    bench.isr_at(10, isr("a"))
    bench.isr_at(20, isr("b"))
    bench.run()
    assert bench.log == [("msg", "a", 10), ("msg", "b", 20)]


def priority_inversion_bench(priority_inheritance):
    """Classic Mars-Pathfinder shape: low locks, high blocks on the lock,
    medium starves low. Returns the completion time of the high task."""
    bench = Harness()
    mtx = RTOSMutex(bench.os, name="mtx",
                    priority_inheritance=priority_inheritance)

    def low(task):
        def _b():
            yield from mtx.lock()
            # hold the lock across many small steps so medium can starve
            # us (or not, under priority inheritance)
            for _ in range(10):
                yield from bench.os.time_wait(10)
            yield from mtx.unlock()
            yield from bench.os.time_wait(10)

        return _b()

    def medium(task):
        def _b():
            yield from bench.os.event_wait(evt)
            for _ in range(20):
                yield from bench.os.time_wait(10)
            bench.mark("medium-done")

        return _b()

    def high(task):
        def _b():
            yield from bench.os.event_wait(evt)
            yield from mtx.lock()
            yield from bench.os.time_wait(10)
            yield from mtx.unlock()
            bench.mark("high-done")

        return _b()

    evt = bench.os.event_new()
    bench.task("high", high, priority=1)
    bench.task("medium", medium, priority=5)
    bench.task("low", low, priority=9)

    def isr():
        # wake high and medium while low holds the lock
        yield from bench.os.event_notify(evt)
        bench.os.interrupt_return()

    bench.isr_at(30, isr)
    bench.run()
    done = {e[0]: e[-1] for e in bench.log}
    return done["high-done"]


def test_priority_inversion_without_inheritance():
    """Medium runs before low can release: high is delayed behind
    medium's entire execution."""
    assert priority_inversion_bench(False) > 250


def test_priority_inheritance_bounds_inversion():
    """With inheritance, low finishes its critical section at medium's
    expense; high completes much earlier."""
    t_pi = priority_inversion_bench(True)
    t_nopi = priority_inversion_bench(False)
    assert t_pi < t_nopi
    assert t_pi <= 120


def test_rtos_mutex_serializes_critical_sections():
    bench = Harness()
    mtx = RTOSMutex(bench.os, name="mtx")
    inside = []

    def worker(task):
        def _b():
            yield from mtx.lock()
            inside.append(task.name)
            assert len(inside) == 1
            yield from bench.os.time_wait(25)
            inside.remove(task.name)
            yield from mtx.unlock()

        return _b()

    for i in range(3):
        bench.task(f"w{i}", worker, priority=i + 1)
    bench.run()
    assert bench.sim.now == 75
    assert not mtx.locked()
