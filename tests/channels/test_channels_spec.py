"""Specification-flavor channels on the raw SLDL kernel."""

import pytest

from repro.kernel import Simulator, WaitFor
from repro.channels import Handshake, Mailbox, Mutex, Queue, Semaphore


@pytest.fixture
def sim():
    return Simulator()


def test_semaphore_initial_count(sim):
    sem = Semaphore(init=2)
    grabbed = []

    def taker():
        yield from sem.acquire()
        yield from sem.acquire()
        grabbed.append(sim.now)
        yield from sem.acquire()  # blocks: count exhausted
        grabbed.append(sim.now)

    def giver():
        yield WaitFor(50)
        yield from sem.release()

    sim.spawn(taker())
    sim.spawn(giver())
    sim.run()
    assert grabbed == [0, 50]
    assert sem.count == 0


def test_semaphore_contention_counts(sim):
    sem = Semaphore(init=0)

    def taker():
        yield from sem.acquire()

    def giver():
        yield WaitFor(10)
        yield from sem.release()

    sim.spawn(taker())
    sim.spawn(giver())
    sim.run()
    assert sem.contentions >= 1


def test_semaphore_try_acquire(sim):
    sem = Semaphore(init=1)
    assert sem.try_acquire()
    assert not sem.try_acquire()


def test_semaphore_negative_init_rejected():
    with pytest.raises(ValueError):
        Semaphore(init=-1)


def test_mutex_mutual_exclusion(sim):
    mtx = Mutex()
    active = []
    overlaps = []

    def worker(name):
        yield from mtx.lock(name)
        active.append(name)
        if len(active) > 1:
            overlaps.append(tuple(active))
        yield WaitFor(10)
        active.remove(name)
        yield from mtx.unlock(name)

    for i in range(3):
        sim.spawn(worker(f"w{i}"))
    sim.run()
    assert overlaps == []
    assert not mtx.locked()
    assert sim.now == 30  # strictly serialized critical sections


def test_mutex_unlock_unlocked_raises(sim):
    mtx = Mutex()

    def bad():
        yield from mtx.unlock()

    sim.spawn(bad())
    with pytest.raises(Exception) as err:
        sim.run()
    assert "unlocked" in str(err.value)


def test_queue_send_recv_in_order(sim):
    q = Queue(capacity=4)
    got = []

    def producer():
        for i in range(4):
            yield from q.send(i)
            yield WaitFor(5)

    def consumer():
        for _ in range(4):
            item = yield from q.recv()
            got.append((item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert [g[0] for g in got] == [0, 1, 2, 3]


def test_queue_blocks_when_full(sim):
    q = Queue(capacity=1)
    times = []

    def producer():
        yield from q.send("a")
        times.append(("sent-a", sim.now))
        yield from q.send("b")  # blocks until consumer drains
        times.append(("sent-b", sim.now))

    def consumer():
        yield WaitFor(100)
        item = yield from q.recv()
        times.append((f"got-{item}", sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("sent-a", 0) in times
    assert ("got-a", 100) in times
    assert ("sent-b", 100) in times


def test_queue_blocks_when_empty(sim):
    q = Queue(capacity=2)
    got = []

    def consumer():
        item = yield from q.recv()
        got.append((item, sim.now))

    def producer():
        yield WaitFor(42)
        yield from q.send("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [("x", 42)]


def test_queue_capacity_validation():
    with pytest.raises(ValueError):
        Queue(capacity=0)


def test_handshake_rendezvous_blocks_sender(sim):
    hs = Handshake()
    log = []

    def sender():
        yield from hs.send("msg")
        log.append(("send-done", sim.now))

    def receiver():
        yield WaitFor(30)
        item = yield from hs.recv()
        log.append((f"got-{item}", sim.now))

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert ("got-msg", 30) in log
    assert ("send-done", 30) in log  # sender blocked until consumption


def test_handshake_receiver_blocks_for_sender(sim):
    hs = Handshake()
    log = []

    def receiver():
        item = yield from hs.recv()
        log.append((item, sim.now))

    def sender():
        yield WaitFor(7)
        yield from hs.send(99)

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert log == [(99, 7)]
    assert hs.transfers == 1


def test_handshake_back_to_back_transfers(sim):
    hs = Handshake()
    got = []

    def sender():
        for i in range(3):
            yield from hs.send(i)

    def receiver():
        for _ in range(3):
            item = yield from hs.recv()
            got.append(item)

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got == [0, 1, 2]


def test_mailbox_post_never_blocks(sim):
    mb = Mailbox()

    def poster():
        for i in range(10):
            yield from mb.post(i)

    sim.spawn(poster())
    sim.run()
    assert len(mb) == 10
    assert mb.try_collect() == 0


def test_mailbox_collect_blocks_until_post(sim):
    mb = Mailbox()
    got = []

    def collector():
        msg = yield from mb.collect()
        got.append((msg, sim.now))

    def poster():
        yield WaitFor(15)
        yield from mb.post("hello")

    sim.spawn(collector())
    sim.spawn(poster())
    sim.run()
    assert got == [("hello", 15)]
    assert mb.try_collect() is None
