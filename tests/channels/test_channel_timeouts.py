"""Timed channel operations, in both flavors.

Every blocking channel operation accepts ``timeout=`` and resolves it
through the shared wait core, so the spec and refined flavors time out
at the same instants: a timed-out receive evaluates to the kernel's
:data:`~repro.kernel.commands.TIMEOUT` sentinel, a timed-out
send/acquire evaluates to ``False`` (and leaves the channel state
untouched — the handshake retracts an unconsumed offer).
"""

from repro.channels import (
    Handshake,
    Mailbox,
    Queue,
    RTOSQueue,
    RTOSSemaphore,
    Semaphore,
)
from repro.kernel import TIMEOUT, Par, Simulator, WaitFor
from tests.rtos.conftest import Harness


def run_spec(*procs):
    sim = Simulator()
    for i, p in enumerate(procs):
        sim.spawn(p, name=f"p{i}")
    sim.run()
    return sim


# ----------------------------------------------------------------------
# specification flavor
# ----------------------------------------------------------------------

def test_spec_semaphore_acquire_timeout():
    sem = Semaphore(0, name="s")
    log = []

    def taker():
        got = yield from sem.acquire(timeout=40)
        log.append(("first", got))
        got = yield from sem.acquire(timeout=40)
        log.append(("second", got))

    def giver():
        yield WaitFor(60)  # after the first deadline, before the second
        yield from sem.release()

    run_spec(taker(), giver())
    assert log == [("first", False), ("second", True)]
    assert sem.count == 0


def test_spec_semaphore_timeout_budget_spans_races():
    """A lost wakeup race re-waits on the remaining budget, not a fresh one."""
    sem = Semaphore(0, name="s")
    log = []

    def slow_taker():
        got = yield from sem.acquire(timeout=50)
        log.append((sem.count, got))

    def fast_taker():
        got = yield from sem.acquire()
        log.append(("fast", got))

    def giver():
        yield WaitFor(10)
        yield from sem.release()  # snatched by fast_taker (spawned first)

    sim = run_spec(fast_taker(), slow_taker(), giver())
    assert ("fast", True) in log
    assert (0, False) in log
    assert sim.now == 50  # not 10 + 50


def test_spec_queue_send_recv_timeouts():
    q = Queue(capacity=1, name="q")
    log = []

    def producer():
        ok = yield from q.send("a")
        log.append(("send-a", ok))
        ok = yield from q.send("b", timeout=30)  # full, nobody drains
        log.append(("send-b", ok))

    def consumer():
        yield WaitFor(100)
        item = yield from q.recv(timeout=10)
        log.append(("recv", item))
        item = yield from q.recv(timeout=10)
        log.append(("recv2", item is TIMEOUT))

    run_spec(producer(), consumer())
    assert log == [
        ("send-a", True),
        ("send-b", False),
        ("recv", "a"),
        ("recv2", True),
    ]
    assert q.sent == 1 and q.received == 1


def test_spec_mailbox_collect_timeout():
    box = Mailbox(name="m")
    log = []

    def collector():
        msg = yield from box.collect(timeout=20)
        log.append(("empty", msg is TIMEOUT))
        msg = yield from box.collect(timeout=20)
        log.append(("full", msg))

    def poster():
        yield WaitFor(25)
        yield from box.post("hello")

    run_spec(collector(), poster())
    assert log == [("empty", True), ("full", "hello")]


def test_spec_handshake_send_timeout_retracts_offer():
    hs = Handshake(name="hs")
    log = []

    def sender():
        ok = yield from hs.send("stale", timeout=30)
        log.append(("send", ok))

    def receiver():
        yield WaitFor(80)  # long after the sender gave up
        item = yield from hs.recv(timeout=5)
        log.append(("recv", item is TIMEOUT))

    run_spec(sender(), receiver())
    # the retracted offer must NOT be delivered to the late receiver
    assert log == [("send", False), ("recv", True)]
    assert hs.transfers == 0
    assert not hs._full


def test_spec_handshake_rendezvous_within_deadline():
    hs = Handshake(name="hs")
    log = []

    def sender():
        ok = yield from hs.send("fresh", timeout=30)
        log.append(("send", ok))

    def receiver():
        yield WaitFor(10)
        item = yield from hs.recv()
        log.append(("recv", item))

    run_spec(sender(), receiver())
    assert log == [("recv", "fresh"), ("send", True)]
    assert hs.transfers == 1


def test_spec_handshake_recv_timeout():
    hs = Handshake(name="hs")
    log = []

    def receiver():
        item = yield from hs.recv(timeout=15)
        log.append(item is TIMEOUT)

    run_spec(receiver())
    assert log == [True]


def test_spec_channels_inside_par():
    """Timed operations compose with par like the untimed ones."""
    q = Queue(capacity=1, name="q")
    log = []

    def producer():
        yield WaitFor(5)
        yield from q.send(1)

    def consumer():
        item = yield from q.recv(timeout=50)
        log.append(item)

    def top():
        yield Par(producer(), consumer())

    run_spec(top())
    assert log == [1]


# ----------------------------------------------------------------------
# refined flavor
# ----------------------------------------------------------------------

def test_rtos_semaphore_acquire_timeout():
    bench = Harness()
    sem = RTOSSemaphore(bench.os, init=0, name="sem")

    def driver(task):
        got = yield from sem.acquire(timeout=40)
        bench.mark("first", got)
        got = yield from sem.acquire(timeout=40)
        bench.mark("second", got)

    bench.task("driver", driver, priority=1)

    def isr():
        yield from sem.release()
        bench.os.interrupt_return()

    bench.isr_at(60, isr)
    bench.run()
    assert bench.log == [("first", False, 40), ("second", True, 60)]


def test_rtos_queue_timeouts_under_scheduling():
    # immediate preemption: the producer's timeout expiry preempts the
    # consumer's delay step right away (in the paper's step mode the
    # producer would observe the expiry only at the consumer's next
    # scheduling point, t=100 — Section 4.3 granularity)
    bench = Harness(preemption="immediate")
    q = RTOSQueue(bench.os, capacity=1, name="q")

    def producer(task):
        ok = yield from q.send("x")
        bench.mark("send", ok)
        ok = yield from q.send("y", timeout=25)
        bench.mark("send-full", ok)

    def consumer(task):
        yield from bench.os.time_wait(100)
        item = yield from q.recv(timeout=10)
        bench.mark("recv", item)

    bench.task("producer", producer, priority=1)
    bench.task("consumer", consumer, priority=2)
    bench.run()
    assert bench.log == [
        ("send", True, 0),
        ("send-full", False, 25),
        ("recv", "x", 100),
    ]


def test_rtos_driver_recv_timeout():
    """InterruptDriver.recv(timeout=) — driver-level communication
    deadline in the architecture model (Figure 3 structure)."""
    from repro.channels import RTOSMailbox  # noqa: F401  (import check)
    from repro.platform.driver import InterruptDriver

    bench = Harness()
    sem = RTOSSemaphore(bench.os, init=0, name="drv.sem")

    class _FakeLink:
        def __init__(self):
            self.pending = ["payload"]

        def take(self):
            return self.pending.pop(0)

    driver = InterruptDriver(_FakeLink(), sem, os_model=bench.os, name="drv")

    def consumer(task):
        data = yield from driver.recv(timeout=30)
        bench.mark("first", data is TIMEOUT)
        data = yield from driver.recv(timeout=100)
        bench.mark("second", data)

    bench.task("consumer", consumer, priority=1)

    def isr():
        yield from driver.isr()

    bench.isr_at(50, isr)
    bench.run()
    assert bench.log == [("first", True, 30), ("second", "payload", 50)]
    assert driver.received == 1
