"""Code generation and SLDL co-simulation of the ISS."""

import pytest

from repro.kernel import Simulator
from repro.platform import IrqLine
from repro.synthesis import (
    CodeGenerator,
    Compute,
    Copy,
    Halt,
    ISSProcessor,
    Loop,
    Mark,
    SemPost,
    SemWait,
    Sleep,
    TaskProgram,
)
from repro.synthesis.kernel_rt import ADDR_CTXSW


def run_tasks(tasks, timer_period=500, ext_sem=0, max_cycles=2_000_000):
    gen = CodeGenerator(timer_period=timer_period, ext_sem=ext_sem)
    iss, program = gen.build(tasks)
    iss.run(max_cycles=max_cycles)
    return iss, program


def marks(iss):
    return [v for _, v in iss.console]


def test_single_task_marks_and_halts():
    iss, program = run_tasks(
        [TaskProgram("main", 1, [Mark(11), Compute(100), Mark(12), Halt()])]
    )
    assert iss.halted
    assert marks(iss) == [11, 12]
    assert program.loc > 300  # kernel + app


def test_compute_duration_is_calibrated():
    iss, _ = run_tasks(
        [TaskProgram("main", 1, [Mark(1), Compute(3000), Mark(2), Halt()])],
        timer_period=100_000,  # no timer interference
    )
    (t1, _), (t2, _) = iss.console
    burn = t2 - t1
    assert abs(burn - 3000) <= 10  # within a few cycles of the target


def test_loop_repeats_body():
    iss, _ = run_tasks(
        [TaskProgram("main", 1, [Loop(4, [Mark(5)]), Halt()])]
    )
    assert marks(iss) == [5, 5, 5, 5]


def test_nested_loops():
    iss, _ = run_tasks(
        [TaskProgram("main", 1, [Loop(2, [Loop(3, [Mark(1)]), Mark(2)]), Halt()])]
    )
    assert marks(iss) == [1, 1, 1, 2, 1, 1, 1, 2]


def test_loop_nesting_limit():
    nested = Loop(1, [Loop(1, [Loop(1, [Loop(1, [Mark(0)])])])])
    with pytest.raises(ValueError):
        CodeGenerator().generate([TaskProgram("t", 1, [nested, Halt()])])


def test_copy_moves_data():
    gen = CodeGenerator()
    iss, program = gen.build(
        [TaskProgram("main", 1, [Copy(0x2000, 0x3000, 4), Halt()])]
    )
    for i in range(4):
        iss.memory[0x2000 + i] = 100 + i
    iss.run(max_cycles=100_000)
    assert [iss.memory[0x3000 + i] for i in range(4)] == [100, 101, 102, 103]


def test_producer_consumer_pipeline():
    """Two generated tasks synchronizing through kernel semaphores."""
    producer = TaskProgram(
        "prod", 5,
        [Loop(3, [Compute(500), Mark(100), SemPost(1)]),
         SemWait(2)],  # wait for consumer before exiting
    )
    consumer = TaskProgram(
        "cons", 1,
        [Loop(3, [SemWait(1), Compute(200), Mark(200)]),
         SemPost(2), Halt()],
    )
    iss, _ = run_tasks([consumer, producer])
    assert iss.halted
    sequence = marks(iss)
    assert sequence.count(100) == 3
    assert sequence.count(200) == 3
    # each production is followed by its consumption before the next
    assert sequence == [100, 200, 100, 200, 100, 200]
    assert iss.memory[ADDR_CTXSW] >= 6


def test_sleep_op():
    iss, _ = run_tasks(
        [TaskProgram("main", 1, [Mark(1), Sleep(2), Mark(2), Halt()])],
        timer_period=1000,
    )
    (t1, _), (t2, _) = iss.console
    assert t2 - t1 >= 2 * 1000  # slept at least two ticks


def test_unknown_op_rejected():
    with pytest.raises(TypeError):
        CodeGenerator().generate([TaskProgram("t", 1, [object()])])


# ---------------------------------------------------------------------------
# co-simulation
# ---------------------------------------------------------------------------


def test_iss_processor_advances_sldl_time():
    sim = Simulator()
    gen = CodeGenerator(timer_period=100_000)
    iss, _ = gen.build(
        [TaskProgram("main", 1, [Compute(1000), Mark(1), Halt()])]
    )
    cpu = ISSProcessor(sim, iss, clock_period=2, chunk=100)
    sim.run()
    assert cpu.halted
    # simulated time ~ cycles * clock_period (chunk rounding only)
    assert sim.now == iss.cycles * 2


def test_iss_processor_irq_bridge():
    """An SLDL-side interrupt reaches the core and unblocks a task."""
    sim = Simulator()
    gen = CodeGenerator(timer_period=1000, ext_sem=3)
    iss, _ = gen.build(
        [TaskProgram("main", 1, [SemWait(3), Mark(77), Halt()])]
    )
    cpu = ISSProcessor(sim, iss, clock_period=1, chunk=100)
    line = IrqLine(sim, "ext")
    cpu.connect_irq(line)
    sim.schedule_at(5000, line.raise_irq)
    sim.run(until=200_000)
    assert cpu.halted
    assert [v for _, v in iss.console] == [77]
    # the mark lands after the interrupt was raised (chunk-bounded skew)
    assert cpu.console_marks()[0][0] >= 5000
