"""Disassembler tests: listings and assembler round-trips."""

from repro.synthesis.assembler import assemble
from repro.synthesis.disasm import disassemble, format_instruction, listing
from repro.synthesis.iss import ISS


SOURCE = """
.org 0x100
_start:
    ldi r1, 5
    ldi sp, 0x800
loop:
    subi r1, r1, 1
    st r1, [sp - 2]
    ld r2, [sp - 2]
    bgt loop
    call helper
    halt
helper:
    ret
data:
    .word 42, 7
"""


def test_format_instruction_variants():
    assert format_instruction("nop", ()) == "nop"
    assert format_instruction("ldi", (1, 5)) == "ldi r1, 5"
    assert format_instruction("mov", (14, 15)) == "mov sp, lr"
    assert format_instruction("ld", (2, (14, -2))) == "ld r2, [sp - 2]"
    assert format_instruction("st", (2, (3, 0))) == "st r2, [r3]"
    assert format_instruction("jmp", (0x100,), {0x100: "loop"}) == "jmp loop"


def test_disassemble_recovers_labels_and_data():
    program = assemble(SOURCE)
    text = listing(program)
    assert "_start:" in text
    assert "loop:" in text
    assert "bgt loop" in text
    assert "call helper" in text
    assert ".word 42" in text


def test_roundtrip_reassembles_identically():
    """assemble(disassemble(assemble(src))) produces the same image."""
    program = assemble(SOURCE)
    rebuilt_src = "\n".join(
        text if text.endswith(":") else text
        for _, text in disassemble(program)
    )
    # pin the origin so addresses line up
    rebuilt = assemble(".org 0x100\n" + rebuilt_src)
    assert rebuilt.image == program.image


def test_roundtrip_executes_identically():
    program = assemble(SOURCE)
    rebuilt_src = ".org 0x100\n" + "\n".join(
        text for _, text in disassemble(program)
    )
    iss_a, iss_b = ISS(program), ISS(assemble(rebuilt_src))
    iss_a.run()
    iss_b.run()
    assert iss_a.regs == iss_b.regs
    assert iss_a.cycles == iss_b.cycles


def test_disassemble_generated_kernel():
    """The full generated vocoder program disassembles cleanly."""
    from repro.apps.vocoder import build_vocoder_program

    _, program = build_vocoder_program(n_frames=2)
    text = listing(program)
    assert "sys_entry:" in text
    assert "common_resched:" in text
    assert "iret" in text
    assert len(text.splitlines()) > 300


def test_disassemble_range():
    program = assemble(SOURCE)
    entries = disassemble(program, start=0x100, end=0x102)
    addresses = [a for a, _ in entries]
    assert set(addresses) == {0x100, 0x101}
