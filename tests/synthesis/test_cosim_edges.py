"""Co-simulation edge cases."""

from repro.kernel import Simulator
from repro.platform import IrqLine
from repro.synthesis import (
    CodeGenerator,
    Compute,
    Halt,
    ISSProcessor,
    Mark,
    SemWait,
    TaskProgram,
)


def build(ops, clock_period=1, chunk=200, timer_period=1_000_000):
    sim = Simulator()
    gen = CodeGenerator(timer_period=timer_period)
    iss, program = gen.build([TaskProgram("t", 1, ops)])
    cpu = ISSProcessor(sim, iss, clock_period=clock_period, chunk=chunk)
    return sim, iss, cpu


def test_chunk_of_one_cycle_is_exact():
    sim, iss, cpu = build([Compute(100), Mark(1), Halt()], chunk=1)
    sim.run()
    assert cpu.halted
    assert sim.now == iss.cycles


def test_console_marks_scaled_by_clock():
    sim, iss, cpu = build([Mark(5), Halt()], clock_period=7)
    sim.run()
    [(t, v)] = cpu.console_marks()
    assert v == 5
    assert t == [c for c, _ in iss.console][0] * 7


def test_halt_recorded_in_trace():
    sim, iss, cpu = build([Halt(3)])
    sim.run()
    halts = [r for r in sim.trace.by_category("user") if r.info == "halt"]
    assert halts
    assert halts[0].data["exit_code"] == 3


def test_task_without_halt_exits_and_idle_spins():
    """A task falling off its ops exits via the kernel; the idle task
    keeps the core busy — the co-simulation must not hang the SLDL."""
    sim, iss, cpu = build([Mark(1)], timer_period=500)
    sim.run(until=50_000)
    assert not cpu.halted  # idle loop runs forever
    assert [v for _, v in iss.console] == [1]
    assert sim.now == 50_000


def test_irq_bridge_stops_when_core_halts():
    sim, iss, cpu = build([SemWait(0), Mark(1), Halt()], timer_period=500)
    line = IrqLine(sim, "kick")
    cpu.connect_irq(line)
    sim.schedule_at(1000, line.raise_irq)
    sim.run(until=500_000)
    assert cpu.halted
    # a late raise after halt must not wedge the simulation
    line.raise_irq()
    sim.run(until=510_000)
    assert sim.now == 510_000
