"""ISS unit tests: arithmetic, control flow, stack, traps, devices."""

import pytest

from repro.synthesis.assembler import assemble
from repro.synthesis.iss import ISS, ISSError
from repro.synthesis import isa


def run(source, max_cycles=100_000, devices=None):
    iss = ISS(assemble(source), devices=devices)
    iss.run(max_cycles=max_cycles)
    return iss


def test_arithmetic_and_flags():
    iss = run(
        """
        _start:
            ldi r1, 7
            ldi r2, 5
            add r3, r1, r2
            sub r4, r2, r1
            mul r5, r1, r2
            div r6, r1, r2
            halt
        """
    )
    assert iss.regs[3] == 12
    assert isa.to_signed(iss.regs[4]) == -2
    assert iss.regs[5] == 35
    assert iss.regs[6] == 1


def test_division_truncates_toward_zero():
    iss = run(
        """
        _start:
            ldi r1, -7
            ldi r2, 2
            div r3, r1, r2
            halt
        """
    )
    assert isa.to_signed(iss.regs[3]) == -3


def test_division_by_zero_raises():
    with pytest.raises(ISSError):
        run(
            """
            _start:
                ldi r1, 1
                ldi r2, 0
                div r3, r1, r2
                halt
            """
        )


def test_loop_and_branches():
    iss = run(
        """
        ; sum 1..10 into r2
        _start:
            ldi r1, 10
            ldi r2, 0
        loop:
            add r2, r2, r1
            subi r1, r1, 1
            bgt loop
            halt
        """
    )
    assert iss.regs[2] == 55


def test_memory_load_store():
    iss = run(
        """
        .org 0x100
        _start:
            ldi r1, 0x300
            ldi r2, 42
            st r2, [r1 + 2]
            ld r3, [r1 + 2]
            halt
        """
    )
    assert iss.regs[3] == 42
    assert iss.memory[0x302] == 42


def test_stack_push_pop_and_calls():
    iss = run(
        """
        _start:
            ldi sp, 0x800
            ldi r1, 11
            push r1
            ldi r1, 0
            call double
            pop r3
            halt
        double:
            ld r2, [sp]       ; the return-address slot is below args
            pop r4            ; actually pops our arg? no - demonstrate
            push r4
            ret
        """
    )
    # call does not touch the stack (link register), so the pushed 11
    # is still on top and pop r3 retrieves it
    assert iss.regs[3] == 11


def test_cycle_costs_accumulate():
    iss = run(
        """
        _start:
            nop          ; 1
            mul r1, r1, r1 ; 2
            halt         ; 1
        """
    )
    assert iss.cycles == 4
    assert iss.instructions == 3


def test_console_and_halt_mmio():
    iss = run(
        """
        .equ CONSOLE, 0xFF02
        .equ HALTREG, 0xFF03
        _start:
            ldi r1, CONSOLE
            ldi r2, 123
            st r2, [r1]
            ldi r2, 7
            ldi r1, HALTREG
            st r2, [r1]
            nop            ; never executed
        """
    )
    assert [v for _, v in iss.console] == [123]
    assert iss.halted
    assert iss.exit_code == 7


def test_timer_interrupt_vector():
    iss = run(
        """
        .equ TIMER, 0xFF00
        .org 0x03
        .word timer_isr
        .org 0x100
        _start:
            ldi sp, 0x800
            ldi r5, 0
            ldi r1, TIMER
            ldi r2, 50
            st r2, [r1]      ; period 50 cycles
            ei
        spin:
            cmpi r5, 3
            blt spin
            halt
        timer_isr:
            addi r5, r5, 1
            iret
        """,
        max_cycles=2000,
    )
    assert iss.regs[5] == 3
    assert iss.halted


def test_syscall_trap_and_return():
    iss = run(
        """
        .org 0x02
        .word trap
        .org 0x100
        _start:
            ldi sp, 0x800
            ldi r2, 20
            syscall 9
            mov r6, r2
            halt
        trap:
            ; syscall number is placed in r1 by the core
            add r2, r2, r1   ; r2 = 20 + 9
            iret
        """
    )
    assert iss.regs[6] == 29
    assert iss.syscall_counts == {9: 1}


def test_interrupts_masked_until_ei():
    iss = run(
        """
        .org 0x04
        .word ext_isr
        .org 0x100
        _start:
            ldi sp, 0x800
            ldi r5, 0
            nop
            nop
            halt
        ext_isr:
            addi r5, r5, 1
            iret
        """
    )
    # IRQ raised before run; IE never set -> never serviced
    iss2 = ISS(assemble("_start: halt"))
    iss2.raise_irq(isa.IRQ_EXTERNAL)
    iss2.run()
    assert iss2.halted
    assert iss.regs[5] == 0


def test_external_interrupt_serviced_with_ei():
    prog = assemble(
        """
        .org 0x04
        .word ext_isr
        .org 0x100
        _start:
            ldi sp, 0x800
            ei
        spin:
            cmpi r5, 1
            blt spin
            halt
        ext_isr:
            ldi r5, 1
            iret
        """
    )
    iss = ISS(prog)
    iss.run(max_cycles=20)  # let it spin a little
    iss.raise_irq(isa.IRQ_EXTERNAL)
    iss.run(max_cycles=1000)
    assert iss.halted
    assert iss.regs[5] == 1


def test_unmapped_device_raises():
    with pytest.raises(ISSError):
        run(
            """
            _start:
                ldi r1, 0xFF80
                ld r2, [r1]
            """
        )


def test_pc_into_data_raises():
    with pytest.raises(ISSError):
        run(
            """
            _start:
                jmp data
            data:
                .word 99
            """
        )


def test_custom_device_read_write():
    class Latch:
        def __init__(self):
            self.value = 5

        def read(self, iss):
            return self.value

        def write(self, iss, value):
            self.value = value * 2

    latch = Latch()
    iss = run(
        """
        .equ DEV, 0xFF10
        _start:
            ldi r1, DEV
            ld r2, [r1]       ; 5
            st r2, [r1]       ; latch = 10
            ld r3, [r1]       ; 10
            halt
        """,
        devices={0xFF10: latch},
    )
    assert iss.regs[2] == 5
    assert iss.regs[3] == 10
