"""Assembler unit tests."""

import pytest

from repro.synthesis.assembler import AssemblerError, assemble
from repro.synthesis import isa


def test_simple_program_layout():
    prog = assemble(
        """
        .org 0x100
        _start:
            ldi r1, 5
            nop
        done:
            halt
        """
    )
    assert prog.entry == 0x100
    assert prog.symbols["_start"] == 0x100
    assert prog.symbols["done"] == 0x102
    assert prog.image[0x100] == ("ldi", (1, 5))
    assert prog.image[0x102] == ("halt", ())


def test_equ_and_symbol_immediates():
    prog = assemble(
        """
        .equ LIMIT, 0x10
        _start:
            ldi r2, LIMIT
            cmpi r2, -LIMIT
        """
    )
    assert prog.image[0x100] == ("ldi", (2, 16))
    assert prog.image[0x101] == ("cmpi", (2, -16))


def test_words_and_space():
    prog = assemble(
        """
        .org 0x200
        table:
            .word 1, 2, 3
        buffer:
            .space 2
        """
    )
    assert prog.symbols["table"] == 0x200
    assert prog.symbols["buffer"] == 0x203
    assert [prog.image[a] for a in range(0x200, 0x205)] == [1, 2, 3, 0, 0]


def test_word_forward_reference_to_label():
    prog = assemble(
        """
        vec:
            .word handler
        handler:
            halt
        """
    )
    assert prog.image[0x100] == prog.symbols["handler"]


def test_memory_operands():
    prog = assemble(
        """
        _start:
            ld r1, [r2 + 4]
            st r1, [sp - 1]
            ld r3, [r4]
        """
    )
    assert prog.image[0x100] == ("ld", (1, (2, 4)))
    assert prog.image[0x101] == ("st", (1, (isa.SP, -1)))
    assert prog.image[0x102] == ("ld", (3, (4, 0)))


def test_sp_lr_aliases():
    prog = assemble("mov sp, lr")
    assert prog.image[0x100] == ("mov", (isa.SP, isa.LR))


def test_branch_to_label():
    prog = assemble(
        """
        loop:
            nop
            jmp loop
        """
    )
    assert prog.image[0x101] == ("jmp", (0x100,))


def test_comments_and_blank_lines_ignored():
    prog = assemble(
        """
        ; full-line comment

        _start: nop  ; trailing comment
        """
    )
    assert prog.image[0x100] == ("nop", ())


@pytest.mark.parametrize(
    "source,fragment",
    [
        ("frob r1", "unknown opcode"),
        ("ldi r99, 1", "bad register"),
        ("ldi r1", "expects 2 operands"),
        ("ldi r1, nosuch", "undefined symbol"),
        ("x: nop\nx: nop", "duplicate label"),
        (".bogus 3", "unknown directive"),
        ("ld r1, [bad+1]", "bad memory operand"),
        (".equ ONLYNAME", ".equ needs"),
    ],
)
def test_errors(source, fragment):
    with pytest.raises(AssemblerError) as err:
        assemble(source)
    assert fragment in str(err.value)


def test_loc_counts_real_lines():
    prog = assemble(
        """
        ; comment only

        _start:
            nop
            halt
        """
    )
    assert prog.loc == 3  # label line + two instructions
